// E10 — Chunk-size ablation on the coalesced loop.
//
// The chunking-factor trade the paper's efficiency analysis describes: a
// chunk of c iterations amortizes one dispatch and one full index decode
// over c iterations, but coarsens load balance. This harness sweeps c over
// a 4096-iteration coalesced loop for uniform and irregular bodies and
// brackets the adaptive policies (GSS, factoring, TSS) against the best
// fixed chunk.
//
// Shape claims: completion(c) is U-shaped — dominated by dispatch overhead
// at c=1 and by imbalance at c=N/P — and the adaptive policies sit within a
// few percent of the best fixed chunk without tuning.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e10_chunk_sweep", argc, argv);

  const i64 total = 4096;
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{64, 64}).value();
  const std::size_t procs = 16;

  sim::CostModel costs;
  costs.dispatch = 25;
  costs.recovery_division = 3;
  costs.recovery_increment = 1;

  const std::pair<const char*, sim::Workload> profiles[] = {
      {"uniform(40)", sim::Workload::constant(total, 40)},
      {"bimodal(20|400)",
       sim::Workload::from_model(support::WorkModel::kBimodal, total, 20, 400,
                                 21)},
  };

  for (const auto& [name, work] : profiles) {
    support::Table table(support::format(
        "E10: chunk-size sweep, 64x64 coalesced loop, P=%zu, sigma=25, %s",
        procs, name));
    table.header({"chunk c", "dispatches", "completion", "utilization %"});

    i64 best_fixed = INT64_MAX;
    for (i64 c : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      const auto r = sim::simulate_coalesced_dynamic(
          space, procs, {sim::SimSchedule::kChunked, c}, costs, work);
      best_fixed = std::min(best_fixed, r.completion);
      table.cell(c)
          .cell(r.dispatch_ops)
          .cell(r.completion)
          .cell(r.utilization() * 100.0, 1)
          .end_row();
      reporter.record("fixed_chunk")
          .field("extents", "64x64")
          .field("P", procs)
          .field("profile", name)
          .field("chunk", c)
          .field("dispatch_ops", r.dispatch_ops)
          .field("completion", r.completion)
          .field("utilization", r.utilization());
    }
    const std::pair<const char*, sim::SimScheduleParams> adaptive[] = {
        {"gss", {sim::SimSchedule::kGuided, 1}},
        {"factoring", {sim::SimSchedule::kFactoring, 1}},
        {"tss", {sim::SimSchedule::kTrapezoid, 1}},
    };
    for (const auto& [aname, params] : adaptive) {
      const auto r =
          sim::simulate_coalesced_dynamic(space, procs, params, costs, work);
      table.cell(aname)
          .cell(r.dispatch_ops)
          .cell(r.completion)
          .cell(r.utilization() * 100.0, 1)
          .end_row();
      reporter.record("adaptive")
          .field("extents", "64x64")
          .field("P", procs)
          .field("profile", name)
          .field("schedule", aname)
          .field("dispatch_ops", r.dispatch_ops)
          .field("completion", r.completion)
          .field("utilization", r.utilization());
    }
    table.print();
    std::printf("best fixed-chunk completion: %lld\n\n",
                static_cast<long long>(best_fixed));
  }
  return 0;
}
