// E11 — Combining-network ablation: what if fetch&add serializes?
//
// The paper's machine context (Cedar/RP3-class) supports combining, so
// concurrent fetch&adds on the coalesced loop's single counter do not
// serialize. This ablation removes combining (the counter becomes a serial
// resource, as on a bus-based machine with a lock) and measures how each
// schedule degrades with P.
//
// Shape claims: unit self-scheduling collapses under serialization once
// P * sigma exceeds the mean body time (the counter saturates); chunked and
// guided scheduling barely notice (their dispatch rate is 1/c of unit); so
// coalescing remains effective WITHOUT combining provided chunks amortize
// the counter — the library's answer to the "combining network dependence"
// question.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e11_serialized_dispatch", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{128, 32}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 30);

  for (bool serialized : {false, true}) {
    sim::CostModel costs;
    costs.dispatch = 12;
    costs.serialized_dispatch = serialized;

    support::Table table(support::format(
        "E11: 128x32 coalesced loop, body=30u, sigma=12, dispatch %s",
        serialized ? "SERIALIZED (no combining)" : "combining (parallel)"));
    table.header({"P", "self(1) speedup", "chunk(16) speedup",
                  "gss speedup", "self utilization %"});

    for (std::size_t p : {4u, 8u, 16u, 32u, 64u}) {
      const auto self = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kSelf, 1}, costs, work);
      const auto chunk = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kChunked, 16}, costs, work);
      const auto gss = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kGuided, 1}, costs, work);
      table.cell(static_cast<std::int64_t>(p))
          .cell(self.speedup(costs), 2)
          .cell(chunk.speedup(costs), 2)
          .cell(gss.speedup(costs), 2)
          .cell(self.utilization() * 100.0, 1)
          .end_row();
      reporter.record("speedup")
          .field("extents", "128x32")
          .field("P", p)
          .field("serialized", serialized ? "yes" : "no")
          .field("self", self.speedup(costs))
          .field("chunk16", chunk.speedup(costs))
          .field("gss", gss.speedup(costs));
    }
    table.print();
  }

  std::printf(
      "note: with serialization, self(1) saturates near (body+overhead)/"
      "sigma processors; chunked/guided amortize the counter and keep "
      "scaling.\n");
  return 0;
}
