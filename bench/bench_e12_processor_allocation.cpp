// E12 — Processor allocation: factored grids vs the coalesced 1-D space.
//
// Allocating P processors to an m-deep nest without coalescing requires
// factoring P across the levels; the best factorization still idles
// processors whenever the factors do not divide the extents, and awkward P
// (primes, P > some extent) have no good factorization at all. The
// coalesced loop's allocation is ceil(N/P) for every P.
//
// Shape claims: coalesced efficiency >= best-grid efficiency for every
// (shape, P), with the gap largest at prime P and on skewed shapes.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"
#include "index/grid.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e12_processor_allocation", argc, argv);

  struct Shape {
    const char* name;
    std::vector<i64> extents;
  };
  const Shape shapes[] = {
      {"10x10", {10, 10}},
      {"100x4", {100, 4}},
      {"12x12x12", {12, 12, 12}},
      {"30x7", {30, 7}},
  };

  for (const auto& shape : shapes) {
    support::Table table(support::format(
        "E12: processor allocation, %s nest", shape.name));
    table.header({"P", "best grid", "grid max load", "coalesced max load",
                  "grid eff %", "coalesced eff %"});
    for (i64 p : {4, 6, 7, 8, 12, 13, 16, 24, 32, 37, 64}) {
      const auto grid = index::best_grid(shape.extents, p);
      std::string grid_str;
      for (std::size_t k = 0; k < grid.grid.size(); ++k) {
        if (k > 0) grid_str += "x";
        grid_str += std::to_string(grid.grid[k]);
      }
      table.cell(p)
          .cell(grid_str)
          .cell(grid.max_load)
          .cell(index::coalesced_max_load(shape.extents, p))
          .cell(grid.efficiency * 100.0, 1)
          .cell(index::coalesced_efficiency(shape.extents, p) * 100.0, 1)
          .end_row();
      reporter.record("allocation")
          .field("extents", bench::Reporter::shape_string(shape.extents))
          .field("P", p)
          .field("grid", grid_str)
          .field("grid_efficiency", grid.efficiency)
          .field("coalesced_efficiency",
                 index::coalesced_efficiency(shape.extents, p));
    }
    table.print();
  }
  return 0;
}
