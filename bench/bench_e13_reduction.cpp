// E13 — Executing recognized reductions: serial, atomic accumulator, and
// per-worker partials.
//
// Reduction recognition (analysis/reduction.hpp) proves a loop parallelizable
// *given* an associative folding strategy; this harness prices the
// strategies. Simulator model:
//   serial            — N * (body + loop overhead) on one processor;
//   atomic            — every iteration performs one serialized operation on
//                       the shared accumulator (modeled as a serialized
//                       dispatch of that cost);
//   partials + chunks — per-worker accumulators, chunked dispatch, one
//                       combine per worker after the join.
// Plus a real-machine measurement of run_sum (partials) vs a CAS accumulator.
//
// Shape claims: atomic saturates once P*atomic_cost exceeds the body time;
// partials scale like a plain DOALL; the combine cost (P adds) is noise.
#include <atomic>
#include <chrono>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e13_reduction", argc, argv);

  const i64 n = 4096;
  const auto space = index::CoalescedSpace::create(std::vector<i64>{n}).value();
  const sim::Workload work = sim::Workload::constant(n, 20);
  const i64 atomic_cost = 8;

  support::Table table(
      "E13: reduction strategies (sim), N=4096, body=20u, atomic=8u");
  table.header({"P", "serial", "atomic accum", "partials chunk(32)",
                "partials GSS", "atomic util %"});

  sim::CostModel serial_costs;
  serial_costs.dispatch = 0;
  serial_costs.fork = 0;
  serial_costs.barrier = 0;
  const i64 serial_time = sim::serial_time(work, serial_costs);

  for (std::size_t p : {2u, 4u, 8u, 16u, 32u}) {
    // Atomic accumulator: serialized per-iteration op of atomic_cost.
    sim::CostModel atomic_costs;
    atomic_costs.dispatch = atomic_cost;
    atomic_costs.serialized_dispatch = true;
    atomic_costs.recovery_division = 0;
    atomic_costs.recovery_increment = 0;
    const auto atomic = sim::simulate_coalesced_dynamic(
        space, p, {sim::SimSchedule::kSelf, 1}, atomic_costs, work);

    // Per-worker partials: ordinary chunked dispatch; combining adds one
    // pass of P adds after the barrier.
    sim::CostModel partial_costs;
    partial_costs.dispatch = 5;
    partial_costs.recovery_division = 0;
    partial_costs.recovery_increment = 0;
    auto with_combine = [&](sim::SimResult r) {
      r.completion += static_cast<i64>(p);  // fold P partials
      return r;
    };
    const auto chunk = with_combine(sim::simulate_coalesced_dynamic(
        space, p, {sim::SimSchedule::kChunked, 32}, partial_costs, work));
    const auto gss = with_combine(sim::simulate_coalesced_dynamic(
        space, p, {sim::SimSchedule::kGuided, 1}, partial_costs, work));

    table.cell(static_cast<std::int64_t>(p))
        .cell(serial_time)
        .cell(atomic.completion)
        .cell(chunk.completion)
        .cell(gss.completion)
        .cell(atomic.utilization() * 100.0, 1)
        .end_row();
    reporter.record("strategy")
        .field("extents", "4096")
        .field("P", p)
        .field("serial", serial_time)
        .field("atomic", atomic.completion)
        .field("partials_chunk32", chunk.completion)
        .field("partials_gss", gss.completion);
  }
  table.print();

  // Real machine: run_sum (partials) vs a CAS accumulator.
  runtime::ThreadPool pool(4);
  const i64 real_n = 1 << 18;
  auto body = [](i64 j) {
    return 1.0 / static_cast<double>(j);
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto partials = runtime::run_sum(
      pool, real_n, body, {.schedule = {runtime::Schedule::kChunked, 1024}});
  const auto t1 = std::chrono::steady_clock::now();

  std::atomic<double> cas_sum{0.0};
  runtime::run(pool, real_n,
               [&](i64 j) {
                 const double v = body(j);
                 double seen = cas_sum.load(std::memory_order_relaxed);
                 while (!cas_sum.compare_exchange_weak(
                     seen, seen + v, std::memory_order_relaxed)) {
                 }
               },
               {.schedule = {runtime::Schedule::kChunked, 1024}});
  const auto t2 = std::chrono::steady_clock::now();

  const double partials_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double cas_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  std::printf(
      "\nreal machine (N=%lld, 4 workers): partials %.2f ms, CAS "
      "accumulator %.2f ms (%.1fx), results agree to %.1e\n",
      static_cast<long long>(real_n), partials_ms, cas_ms,
      cas_ms / partials_ms, std::abs(partials.value - cas_sum.load()));
  reporter.record("real_machine")
      .field("extents", std::to_string(real_n))
      .field("P", std::size_t{4})
      .field("partials_ms", partials_ms)
      .field("cas_ms", cas_ms);
  return 0;
}
