// E14 — Overhead scaling with nest depth m at fixed iteration count.
//
// The same N = 4096 iterations shaped as nests of depth 1..6. Nested
// multi-counter scheduling pays Σ_k Π_{j<=k} N_j dispatches (grows with m);
// nested fork-join pays Π_{k<m} N_k parallel-loop initiations (explodes
// with m); the coalesced loop pays the same single counter at every depth,
// its only depth-dependent cost being ~2 recovery divisions per level —
// paid once per CHUNK under chunked execution.
//
// Shape claims: coalesced completion is flat in m (chunked) or mildly
// linear (unit self-scheduling); both nested baselines degrade with m, the
// fork-join one catastrophically.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e14_depth_scaling", argc, argv);

  struct Shape {
    const char* name;
    std::vector<i64> extents;
  };
  const Shape shapes[] = {
      {"4096 (m=1)", {4096}},
      {"64x64 (m=2)", {64, 64}},
      {"16x16x16 (m=3)", {16, 16, 16}},
      {"8x8x8x8 (m=4)", {8, 8, 8, 8}},
      {"4x4x4x4x4 (m=5)", {4, 4, 4, 4, 4}},
      {"4x4x4x4x2x2 (m=6)", {4, 4, 4, 4, 2, 2}},
  };

  sim::CostModel costs;
  costs.dispatch = 10;
  costs.recovery_division = 3;
  costs.recovery_increment = 1;
  const std::size_t procs = 16;

  support::Table table(support::format(
      "E14: overhead vs nest depth, N=4096, body=30u, P=%zu, sigma=10",
      procs));
  table.header({"shape", "coalesced chunk(32)", "coalesced self(1)",
                "nested multi-counter", "nested fork-join",
                "fj fork/joins"});

  for (const auto& shape : shapes) {
    const auto space = index::CoalescedSpace::create(shape.extents).value();
    const sim::Workload work = sim::Workload::constant(space.total(), 30);

    const auto chunk = sim::simulate_coalesced_dynamic(
        space, procs, {sim::SimSchedule::kChunked, 32}, costs, work);
    const auto self = sim::simulate_coalesced_dynamic(
        space, procs, {sim::SimSchedule::kSelf, 1}, costs, work);
    const auto multi =
        sim::simulate_nested_multicounter(space, procs, costs, work);
    const auto forkjoin = sim::simulate_nested_forkjoin(
        space, procs, {sim::SimSchedule::kChunked, 8}, costs, work);

    table.cell(shape.name)
        .cell(chunk.completion)
        .cell(self.completion)
        .cell(multi.completion)
        .cell(forkjoin.completion)
        .cell(forkjoin.fork_joins)
        .end_row();
    reporter.record("depth")
        .field("extents", bench::Reporter::shape_string(shape.extents))
        .field("depth", shape.extents.size())
        .field("P", procs)
        .field("coalesced_chunk32", chunk.completion)
        .field("coalesced_self", self.completion)
        .field("nested_multicounter", multi.completion)
        .field("nested_forkjoin", forkjoin.completion)
        .field("fork_joins", forkjoin.fork_joins);
  }
  table.print();

  // The static counterpart: recovery divisions per iteration by depth and
  // style (what the coalesced loop pays for depth).
  support::Table divs("E14b: recovery divisions per coalesced iteration");
  divs.header({"depth", "paper form", "mixed radix", "incremental"});
  ir::SymbolTable symbols;
  const ir::VarId j = symbols.declare("j", ir::SymbolKind::kInduction);
  for (const auto& shape : shapes) {
    const auto space = index::CoalescedSpace::create(shape.extents).value();
    std::size_t paper = 0, mixed = 0;
    for (std::size_t level = 0; level < space.depth(); ++level) {
      paper += ir::division_count(transform::recovery_expression(
          space, level, j, transform::RecoveryStyle::kPaperClosedForm));
      mixed += ir::division_count(transform::recovery_expression(
          space, level, j, transform::RecoveryStyle::kMixedRadix));
    }
    divs.cell(static_cast<std::int64_t>(space.depth()))
        .cell(static_cast<std::uint64_t>(paper))
        .cell(static_cast<std::uint64_t>(mixed))
        .cell(std::uint64_t{0})
        .end_row();
  }
  divs.print();
  return 0;
}
