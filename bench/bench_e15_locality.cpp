// E15 — Locality ablation: what scheduling granularity costs in row
// switches.
//
// The simulator's locality model charges `row_switch` cycles whenever
// execution leaves an innermost row (chunk entry or intra-chunk row
// boundary). Unit self-scheduling lands every iteration on an arbitrary
// processor — one row switch per iteration in the worst case — while
// contiguous chunks amortize the penalty over the row length.
//
// Shape claims: at row_switch = 0 all dynamic schedules are within ~20%;
// as row_switch grows, unit self-scheduling degrades linearly while
// chunk(64) (= one row per dispatch) and GSS stay near flat; the crossover
// chunk size tracks the row length.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e15_locality", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{64, 64}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 25);
  const std::size_t procs = 16;

  for (i64 row_switch : {0, 20, 100}) {
    sim::CostModel costs;
    costs.dispatch = 8;
    costs.row_switch = row_switch;

    support::Table table(support::format(
        "E15: 64x64 coalesced loop, body=25u, P=%zu, sigma=8, "
        "row-switch=%lldu",
        procs, static_cast<long long>(row_switch)));
    table.header({"schedule", "completion", "vs row-switch-free",
                  "utilization %"});

    sim::CostModel free_costs = costs;
    free_costs.row_switch = 0;

    const std::pair<const char*, sim::SimScheduleParams> schedules[] = {
        {"self(1)", {sim::SimSchedule::kSelf, 1}},
        {"chunk(8)", {sim::SimSchedule::kChunked, 8}},
        {"chunk(64) = row", {sim::SimSchedule::kChunked, 64}},
        {"chunk(256)", {sim::SimSchedule::kChunked, 256}},
        {"gss", {sim::SimSchedule::kGuided, 1}},
    };
    for (const auto& [name, params] : schedules) {
      const auto with = sim::simulate_coalesced_dynamic(
          space, procs, params, costs, work);
      const auto without = sim::simulate_coalesced_dynamic(
          space, procs, params, free_costs, work);
      table.cell(name)
          .cell(with.completion)
          .cell(static_cast<double>(with.completion) /
                    static_cast<double>(without.completion),
                2)
          .cell(with.utilization() * 100.0, 1)
          .end_row();
      reporter.record("locality")
          .field("extents", "64x64")
          .field("P", procs)
          .field("row_switch", row_switch)
          .field("schedule", name)
          .field("completion", with.completion)
          .field("completion_switch_free", without.completion)
          .field("utilization", with.utilization());
    }
    table.print();
  }

  std::printf(
      "note: the runtime analogue is run() with LaunchOptions::tile_sizes, "
      "which dispatches whole rectangular tiles (one dispatch, contiguous "
      "rows).\n");
  return 0;
}
