// E15 — Locality ablation: what scheduling granularity costs in row
// switches.
//
// The simulator's locality model charges `row_switch` cycles whenever
// execution leaves an innermost row (chunk entry or intra-chunk row
// boundary). Unit self-scheduling lands every iteration on an arbitrary
// processor — one row switch per iteration in the worst case — while
// contiguous chunks amortize the penalty over the row length.
//
// Shape claims: at row_switch = 0 all dynamic schedules are within ~20%;
// as row_switch grows, unit self-scheduling degrades linearly while
// chunk(64) (= one row per dispatch) and GSS stay near flat; the crossover
// chunk size tracks the row length.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e15_locality", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{64, 64}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 25);
  const std::size_t procs = 16;

  for (i64 row_switch : {0, 20, 100}) {
    sim::CostModel costs;
    costs.dispatch = 8;
    costs.row_switch = row_switch;

    support::Table table(support::format(
        "E15: 64x64 coalesced loop, body=25u, P=%zu, sigma=8, "
        "row-switch=%lldu",
        procs, static_cast<long long>(row_switch)));
    table.header({"schedule", "completion", "vs row-switch-free",
                  "utilization %"});

    sim::CostModel free_costs = costs;
    free_costs.row_switch = 0;

    const std::pair<const char*, sim::SimScheduleParams> schedules[] = {
        {"self(1)", {sim::SimSchedule::kSelf, 1}},
        {"chunk(8)", {sim::SimSchedule::kChunked, 8}},
        {"chunk(64) = row", {sim::SimSchedule::kChunked, 64}},
        {"chunk(256)", {sim::SimSchedule::kChunked, 256}},
        {"gss", {sim::SimSchedule::kGuided, 1}},
    };
    for (const auto& [name, params] : schedules) {
      const auto with = sim::simulate_coalesced_dynamic(
          space, procs, params, costs, work);
      const auto without = sim::simulate_coalesced_dynamic(
          space, procs, params, free_costs, work);
      table.cell(name)
          .cell(with.completion)
          .cell(static_cast<double>(with.completion) /
                    static_cast<double>(without.completion),
                2)
          .cell(with.utilization() * 100.0, 1)
          .end_row();
      reporter.record("locality")
          .field("extents", "64x64")
          .field("P", procs)
          .field("row_switch", row_switch)
          .field("schedule", name)
          .field("completion", with.completion)
          .field("completion_switch_free", without.completion)
          .field("utilization", with.utilization());
    }
    table.print();
  }

  // ---- E20 analogues: the kernels bench_e20_contiguity times for real,
  // replayed through the simulator's row-switch model. An access walk with
  // inner contiguous run length L is the space {total/L, L}: the simulator
  // charges row_switch each time execution leaves a length-L row, which is
  // exactly what the locality permutation changes. "default" is the
  // written order (runs of 1), "locality" the permuted/tiled order.
  {
    sim::CostModel costs;
    costs.dispatch = 8;
    costs.row_switch = 100;

    struct Geometry {
      const char* name;
      std::vector<i64> default_extents;
      i64 default_chunk;
      std::vector<i64> locality_extents;
      i64 locality_chunk;
    };
    const Geometry geometries[] = {
        // stride-N inner walk -> stride-1 inner after the reversal
        {"transposed", {4096, 1}, 64, {64, 64}, 64},
        // stride-16 inner walk -> contiguous runs of 16 after the reversal
        {"strided16", {4096, 1}, 64, {256, 16}, 16},
        // naive transpose rows -> 8x64 tiles (one tile per dispatch)
        {"blocked", {4096, 1}, 64, {64, 64}, 512},
    };
    support::Table table(support::format(
        "E15: E20 kernel geometries, P=%zu, sigma=8, row-switch=100u",
        procs));
    table.header({"kernel", "default", "locality", "ratio"});
    for (const auto& g : geometries) {
      const auto run_geometry = [&](const std::vector<i64>& extents,
                                    i64 chunk) {
        const auto geo_space = index::CoalescedSpace::create(extents).value();
        return sim::simulate_coalesced_dynamic(
            geo_space, procs, {sim::SimSchedule::kChunked, chunk}, costs,
            sim::Workload::constant(geo_space.total(), 25));
      };
      const auto with_default = run_geometry(g.default_extents,
                                             g.default_chunk);
      const auto with_locality = run_geometry(g.locality_extents,
                                              g.locality_chunk);
      const double ratio = static_cast<double>(with_default.completion) /
                           static_cast<double>(with_locality.completion);
      table.cell(g.name)
          .cell(with_default.completion)
          .cell(with_locality.completion)
          .cell(ratio, 2)
          .end_row();
      reporter.record("e20_geometry")
          .field("kernel", g.name)
          .field("P", procs)
          .field("row_switch", i64{100})
          .field("default_completion", with_default.completion)
          .field("locality_completion", with_locality.completion)
          .field("ratio", ratio);
    }
    table.print();
  }

  std::printf(
      "note: the runtime analogue is run() with LaunchOptions::tile_sizes, "
      "which dispatches whole rectangular tiles (one dispatch, contiguous "
      "rows); bench_e20_contiguity measures the same three kernels on real "
      "arrays.\n");
  return 0;
}
