// E16 — Hot-path overhaul: measured before/after for the three runtime
// optimizations, each with the old path still callable.
//
//  (a) dispatch: variable-chunk dispatch under contention — the mutex
//      PolicyDispatcher (serialized allocation point) vs the wait-free
//      ChunkScheduleDispatcher (precomputed boundary table + one fetch&add
//      per dispatch). Reported per synchronized dispatch op, with the
//      precompute cost charged to the wait-free side (a fresh dispatcher is
//      built every drain).
//  (b) per-iteration overhead: the erased std::function entry point vs the
//      templated executor (runtime/executor.hpp) for an empty body — the
//      difference is pure runtime overhead per iteration.
//  (c) decode: full index recovery with Granlund–Montgomery multiply+shift
//      (decode_paper / decode_mixed_radix) vs the hardware-division
//      variants (*_hwdiv) on a depth-4 space.
//
// Every record carries a "ratio" field (old cost / new cost; > 1 means the
// overhaul wins). Flags: --json=FILE (bench_harness), --tiny (CI smoke
// sizes).
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;
using Clock = std::chrono::steady_clock;

/// Keeps `value` alive in a register without a memory barrier.
template <typename T>
inline void escape(T& value) {
  asm volatile("" : "+r"(value));
}

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

std::unique_ptr<index::ChunkPolicy> make_policy(runtime::Schedule kind,
                                                i64 total, i64 processors) {
  switch (kind) {
    case runtime::Schedule::kGuided:
      return std::make_unique<index::GuidedPolicy>(processors);
    case runtime::Schedule::kFactoring:
      return std::make_unique<index::FactoringPolicy>(processors);
    case runtime::Schedule::kTrapezoid:
      return std::make_unique<index::TrapezoidPolicy>(
          std::max<i64>(total, 1), processors);
    default:
      COALESCE_ASSERT_MSG(false, "not a policy schedule");
      return nullptr;
  }
}

struct DispatchCost {
  double ns_per_op = 0.0;       ///< mean latency of one successful next()
  double precompute_ns = 0.0;   ///< dispatcher construction, per round
  std::uint64_t ops = 0;
};

/// Builds `rounds` dispatchers (construction timed separately — that is
/// where the wait-free side pays its ChunkSchedule precompute) and drains
/// them in order with `threads` contending threads. Each thread timestamps
/// its own next() calls, so the reported figure is dispatch-op *latency* —
/// what a worker waits before it owns a chunk — and is robust against
/// scheduler noise outside the call (thread start, barrier spins), which
/// would otherwise dominate on small machines. Exhausted next() calls are
/// safe polls, so threads need no barrier between rounds: each moves on
/// when its dispatcher runs dry.
DispatchCost measure_dispatch(runtime::Schedule kind, i64 total,
                              unsigned threads, int rounds, bool serialized) {
  std::vector<std::unique_ptr<runtime::Dispatcher>> dispatchers;
  dispatchers.reserve(static_cast<std::size_t>(rounds));
  const auto build_start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    if (serialized) {
      dispatchers.push_back(runtime::PolicyDispatcher::create(
                                total, make_policy(kind, total, threads))
                                .value());
    } else {
      auto policy = make_policy(kind, total, static_cast<i64>(threads));
      dispatchers.push_back(std::make_unique<runtime::ChunkScheduleDispatcher>(
          index::ChunkSchedule::precompute(*policy, total)));
    }
  }
  const double build_ns = ns_since(build_start);

  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<double> thread_ns(threads, 0.0);
  std::vector<std::thread> crew;
  crew.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    crew.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      i64 sink = 0;
      double local_ns = 0.0;
      for (const auto& dispatcher : dispatchers) {
        while (true) {
          const auto t0 = Clock::now();
          const index::Chunk chunk = dispatcher->next();
          if (chunk.empty()) break;
          local_ns += ns_since(t0);
          sink += chunk.first;  // touch the result; no body work
        }
      }
      escape(sink);
      thread_ns[t] = local_ns;
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& th : crew) th.join();

  DispatchCost cost;
  for (const auto& dispatcher : dispatchers) {
    cost.ops += dispatcher->dispatch_ops();
  }
  double latency_ns = 0.0;
  for (const double ns : thread_ns) latency_ns += ns;
  cost.ns_per_op =
      cost.ops > 0 ? latency_ns / static_cast<double>(cost.ops) : 0.0;
  cost.precompute_ns = build_ns / rounds;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e16_hotpath", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  const unsigned threads = std::min(hw, 8u);  // >= 4 contenders

  // ---- (a) dispatch-op latency under contention ----------------------------
  {
    const i64 total = tiny ? (i64{1} << 12) : (i64{1} << 20);
    const int rounds = tiny ? 3 : 20;
    support::Table table(support::format(
        "E16a: dispatch under contention, N=%lld, %u threads, %d drains",
        static_cast<long long>(total), threads, rounds));
    table.header({"schedule", "mutex ns/op", "wait-free ns/op", "ratio",
                  "dispatch ops"});
    for (const runtime::Schedule kind :
         {runtime::Schedule::kGuided, runtime::Schedule::kFactoring,
          runtime::Schedule::kTrapezoid}) {
      const DispatchCost mutex_cost =
          measure_dispatch(kind, total, threads, rounds, /*serialized=*/true);
      const DispatchCost waitfree_cost =
          measure_dispatch(kind, total, threads, rounds, /*serialized=*/false);
      const double ratio = waitfree_cost.ns_per_op > 0.0
                               ? mutex_cost.ns_per_op / waitfree_cost.ns_per_op
                               : 0.0;
      table.cell(runtime::to_string(kind))
          .cell(mutex_cost.ns_per_op, 1)
          .cell(waitfree_cost.ns_per_op, 1)
          .cell(ratio, 2)
          .cell(static_cast<std::int64_t>(waitfree_cost.ops))
          .end_row();
      reporter.record("dispatch")
          .field("schedule", runtime::to_string(kind))
          .field("threads", threads)
          .field("total", total)
          .field("dispatch_ops", waitfree_cost.ops)
          .field("mutex_ns_per_op", mutex_cost.ns_per_op)
          .field("waitfree_ns_per_op", waitfree_cost.ns_per_op)
          .field("waitfree_precompute_ns", waitfree_cost.precompute_ns)
          .field("ratio", ratio);
    }
    table.print();
  }

  // ---- (b) per-iteration overhead: erased vs templated executor ------------
  {
    const i64 n = tiny ? (i64{1} << 15) : (i64{1} << 22);
    const int rounds = tiny ? 3 : 10;
    runtime::ThreadPool pool(threads);
    const runtime::ScheduleParams params{runtime::Schedule::kChunked, 1024};

    // The erased "before": every iteration is an indirect call through
    // std::function.
    const std::function<void(i64)> erased_body = [](i64 j) {
      escape(j);  // empty body; keep j observable
    };
    double erased_ns = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const auto start = Clock::now();
      (void)runtime::run(pool, n, erased_body, {.schedule = params});
      erased_ns += ns_since(start);
    }

    // The templated "after": overload resolution picks the executor
    // template; the body inlines into the scheduling loop.
    double inlined_ns = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const auto start = Clock::now();
      (void)runtime::run(pool, n, [](i64 j) { escape(j); },
                         {.schedule = params});
      inlined_ns += ns_since(start);
    }

    const double iters = static_cast<double>(n) * rounds;
    const double erased_per = erased_ns / iters;
    const double inlined_per = inlined_ns / iters;
    const double ratio = inlined_per > 0.0 ? erased_per / inlined_per : 0.0;
    support::Table table(support::format(
        "E16b: empty-body per-iteration overhead, N=%lld, chunk=1024",
        static_cast<long long>(n)));
    table.header({"variant", "ns/iter"});
    table.cell("std::function").cell(erased_per, 3).end_row();
    table.cell("templated").cell(inlined_per, 3).end_row();
    table.cell("ratio").cell(ratio, 2).end_row();
    table.print();
    reporter.record("per_iteration")
        .field("threads", threads)
        .field("total", n)
        .field("erased_ns_per_iter", erased_per)
        .field("inlined_ns_per_iter", inlined_per)
        .field("ratio", ratio);
  }

  // ---- (c) full-decode cost: magic multiply+shift vs hardware division -----
  {
    // Depth-4 with non-power-of-two extents, so the divisions are real.
    const auto space =
        index::CoalescedSpace::create(tiny ? std::vector<i64>{7, 5, 6, 4}
                                           : std::vector<i64>{23, 19, 17, 13})
            .value();
    const int rounds = tiny ? 20 : 200;
    std::vector<i64> out(space.depth());
    i64 sink = 0;

    struct Variant {
      const char* name;
      void (index::CoalescedSpace::*decode)(i64, std::span<i64>) const;
    };
    const Variant variants[] = {
        {"paper_magic", &index::CoalescedSpace::decode_paper},
        {"paper_hwdiv", &index::CoalescedSpace::decode_paper_hwdiv},
        {"mixed_magic", &index::CoalescedSpace::decode_mixed_radix},
        {"mixed_hwdiv", &index::CoalescedSpace::decode_mixed_radix_hwdiv},
    };
    double per_decode[4] = {};
    for (int v = 0; v < 4; ++v) {
      const auto start = Clock::now();
      for (int r = 0; r < rounds; ++r) {
        for (i64 j = 1; j <= space.total(); ++j) {
          (space.*variants[v].decode)(j, out);
          sink += out[0] + out[space.depth() - 1];
        }
      }
      per_decode[v] =
          ns_since(start) / (static_cast<double>(space.total()) * rounds);
    }
    escape(sink);

    const double paper_ratio =
        per_decode[0] > 0.0 ? per_decode[1] / per_decode[0] : 0.0;
    const double mixed_ratio =
        per_decode[2] > 0.0 ? per_decode[3] / per_decode[2] : 0.0;
    support::Table table(support::format(
        "E16c: full decode cost, depth-4 space N=%lld, %d sweeps",
        static_cast<long long>(space.total()), rounds));
    table.header({"decode", "hwdiv ns", "magic ns", "ratio"});
    table.cell("paper")
        .cell(per_decode[1], 2)
        .cell(per_decode[0], 2)
        .cell(paper_ratio, 2)
        .end_row();
    table.cell("mixed_radix")
        .cell(per_decode[3], 2)
        .cell(per_decode[2], 2)
        .cell(mixed_ratio, 2)
        .end_row();
    table.print();
    reporter.record("decode")
        .field("decode", "paper")
        .field("total", space.total())
        .field("hwdiv_ns_per_decode", per_decode[1])
        .field("magic_ns_per_decode", per_decode[0])
        .field("ratio", paper_ratio);
    reporter.record("decode")
        .field("decode", "mixed_radix")
        .field("total", space.total())
        .field("hwdiv_ns_per_decode", per_decode[3])
        .field("magic_ns_per_decode", per_decode[2])
        .field("ratio", mixed_ratio);
  }

  // ---- traced run: dispatch-latency histogram, wait-free vs mutex ----------
  {
    const i64 n = tiny ? (i64{1} << 12) : (i64{1} << 18);
    runtime::ThreadPool pool(threads);
    support::Table table("E16: traced dispatch latency (kDispatchLatencyNs)");
    table.header({"variant", "approx mean ns", "dispatch ops"});
    for (const bool serialized : {true, false}) {
      trace::Recorder recorder;
      recorder.install();
      runtime::ScheduleParams params{runtime::Schedule::kGuided};
      params.serialized = serialized;
      (void)runtime::run(pool, n, [](i64 j) { escape(j); },
                         {.schedule = params});
      recorder.uninstall();
      const auto hist =
          recorder.counters().snapshot(trace::Hist::kDispatchLatencyNs);
      const std::uint64_t ops =
          recorder.counters().total(trace::Counter::kDispatchOps);
      table.cell(serialized ? "mutex" : "wait-free")
          .cell(hist.approx_mean(), 1)
          .cell(static_cast<std::int64_t>(ops))
          .end_row();
      reporter.record("traced_dispatch")
          .field("variant", serialized ? "mutex" : "wait-free")
          .field("total", n)
          .field("dispatch_ops", ops)
          .field("approx_mean_latency_ns", hist.approx_mean());
    }
    table.print();
  }

  std::printf(
      "note: ratios are old/new (>1 means the hot-path overhaul wins): "
      "mutex vs wait-free dispatch, erased vs inlined body, hardware "
      "division vs magic multiply+shift.\n");
  return 0;
}
