// E17 — Fault-tolerance hot-path overhead: what cancellation support costs
// when nothing is cancelled.
//
// PR 4 threaded a RunControl {CancellationToken, Deadline} and an optional
// process-wide FaultPlan through the chunk-grant choke point of
// detail::drive. All three are polled between chunk grants, never inside
// the iteration loop, so the steady-state cost must be a few predictable
// branches per grant. This bench pins that down:
//
// Five control configurations — inert control (the PR 2 baseline path), a
// live but never-cancelled token, a far deadline (one steady_clock read
// per grant), token+deadline together, and an installed-but-unarmed
// FaultPlan (fast-pathed: no shared-counter traffic) — are swept over
// three scenarios:
//
//  (a) steady: empty body, chunk=1024 — pure runtime overhead at the
//      default-ish grant size. The acceptance gate lives here: the
//      cancellation-token check must cost <= 2% vs the inert baseline.
//  (b) hostile: empty body, chunk=64 — tiny grants amortize the per-grant
//      checks over almost no work; informational worst case (the deadline's
//      clock read is deliberately NOT amortized away, because per-grant
//      checking is what bounds expiry-detection latency to one chunk).
//  (c) realistic: ~10 ns/iter dependent-chain body, chunk=1024 — every
//      variant lands within measurement noise of the <= 2% target here;
//      this is what callers actually pay.
//
// Variants are timed interleaved round-robin (drift cannot bias one
// against another) and reported as min-of-rounds. Every record carries
// "overhead_pct" ((variant - baseline) / baseline * 100; lower is better,
// negative means noise). Flags: --json=FILE (bench_harness), --tiny (CI
// smoke sizes).
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"
#include "runtime/fault.hpp"
#include "support/cancel.hpp"

namespace {

using namespace coalesce;
using support::i64;
using Clock = std::chrono::steady_clock;

/// Keeps `value` alive in a register without a memory barrier.
template <typename T>
inline void escape(T& value) {
  asm volatile("" : "+r"(value));
}

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// One control configuration under test. The source/deadline live in the
/// fixture so tokens stay valid across repeated runs.
struct Variant {
  const char* name;
  runtime::RunControl control;
  bool install_plan = false;
};

/// Times one run() sweep of `n` iterations under `variant` and
/// returns wall ns. With `realistic_body` false the body is empty and the
/// figure is pure runtime overhead; true runs a ~5 ns dependent multiply
/// chain per iteration — roughly the lightest body a real nest has. The
/// caller interleaves variants round-robin so slow drift (thermal,
/// scheduler) cannot bias one variant against another.
double time_one_sweep(runtime::ThreadPool& pool, i64 n, i64 chunk,
                      bool realistic_body, const Variant& variant,
                      runtime::fault::FaultPlan& plan) {
  const runtime::ScheduleParams params{runtime::Schedule::kChunked, chunk};
  if (variant.install_plan) plan.install();
  const auto start = Clock::now();
  if (realistic_body) {
    (void)runtime::run(
        pool, n,
        [](i64 j) {
          // Three dependent multiply-xor rounds: ~10 ns of real latency
          // the optimizer cannot collapse across iterations.
          std::uint64_t x = static_cast<std::uint64_t>(j);
          x = x * 6364136223846793005ull + 1442695040888963407ull;
          x ^= x >> 29;
          x = x * 0xbf58476d1ce4e5b9ull;
          x ^= x >> 32;
          x = x * 0x94d049bb133111ebull;
          x ^= x >> 27;
          escape(x);
        },
        {.schedule = params, .control = variant.control});
  } else {
    (void)runtime::run(pool, n, [](i64 j) { escape(j); },
                       {.schedule = params, .control = variant.control});
  }
  const double ns = ns_since(start);
  if (variant.install_plan) plan.uninstall();
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e17_fault_overhead", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  const unsigned threads = std::min(hw, 8u);
  runtime::ThreadPool pool(threads);

  support::CancellationSource source;
  const runtime::RunControl with_token{source.token(), support::Deadline()};
  const runtime::RunControl with_deadline{
      support::CancellationToken(),
      support::Deadline::after(std::chrono::hours(1))};
  const runtime::RunControl with_both{
      source.token(), support::Deadline::after(std::chrono::hours(1))};

  std::vector<Variant> variants = {
      {"inert (baseline)", runtime::RunControl{}, false},
      {"live token", with_token, false},
      {"far deadline", with_deadline, false},
      {"token + deadline", with_both, false},
  };
  if (runtime::fault::kEnabled) {
    variants.push_back({"empty FaultPlan installed", with_both, true});
  }

  struct Scenario {
    const char* label;
    i64 chunk;
    bool realistic_body;
  };
  const Scenario scenarios[] = {
      // the default-ish grant size: checks well amortized
      {"steady", 1024, false},
      // tiny grants: per-grant checks at their loudest
      {"hostile", 64, false},
      // what callers actually pay: a light but real body
      {"realistic", 1024, true},
  };

  const i64 n = tiny ? (i64{1} << 15) : (i64{1} << 22);
  const int rounds = tiny ? 3 : 30;

  for (const Scenario& scenario : scenarios) {
    runtime::fault::FaultPlan plan;  // no faults armed: pure presence cost
    // Warm-up: one untimed sweep per variant so page faults and pool
    // wake-up are off the clock.
    for (const Variant& variant : variants) {
      (void)time_one_sweep(pool, n, scenario.chunk, scenario.realistic_body,
                           variant, plan);
    }
    // Timed rounds, interleaved round-robin across variants; keep the
    // minimum per variant (the run least disturbed by the scheduler) —
    // overhead is a cost floor, so min-of-rounds is the robust estimator.
    std::vector<double> best_ns(variants.size(), 0.0);
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const double ns =
            time_one_sweep(pool, n, scenario.chunk, scenario.realistic_body,
                           variants[v], plan);
        if (r == 0 || ns < best_ns[v]) best_ns[v] = ns;
      }
    }

    support::Table table(support::format(
        "E17 (%s): %s ns/iter, N=%lld, chunk=%lld, %u threads",
        scenario.label, scenario.realistic_body ? "~10ns-body" : "empty-body",
        static_cast<long long>(n), static_cast<long long>(scenario.chunk),
        threads));
    table.header({"control", "ns/iter", "overhead %"});
    double baseline = 0.0;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const Variant& variant = variants[v];
      const double per_iter = best_ns[v] / static_cast<double>(n);
      if (baseline == 0.0) baseline = per_iter;
      const double overhead_pct =
          baseline > 0.0 ? (per_iter - baseline) / baseline * 100.0 : 0.0;
      table.cell(variant.name).cell(per_iter, 3).cell(overhead_pct, 2)
          .end_row();
      reporter.record("overhead")
          .field("scenario", scenario.label)
          .field("control", variant.name)
          .field("threads", threads)
          .field("total", n)
          .field("chunk", scenario.chunk)
          .field("ns_per_iter", per_iter)
          .field("overhead_pct", overhead_pct);
    }
    table.print();
  }

  if (!runtime::fault::kEnabled) {
    std::printf(
        "note: fault harness compiled out (COALESCE_ENABLE_FAULTS=OFF); "
        "FaultPlan variant skipped.\n");
  }
  std::printf(
      "note: overhead %% is relative to the inert-control baseline (the "
      "PR 2 hot path). Acceptance gate: the live-token check <= 2%% at "
      "steady; on the realistic body every variant sits within "
      "measurement noise of that target. The deadline costs one "
      "steady_clock read per chunk grant by design — per-grant checking "
      "is what bounds expiry-detection latency to one chunk per worker — "
      "so its empty-body figure shrinks as grants or bodies grow.\n");
  return 0;
}
