// E18 — Region throughput: queued asynchronous submission vs back-to-back
// fork-join launches.
//
// The paper coalesces a nest so ONE loop's iterations self-schedule over
// the machine; a real program is a *sequence* of such regions. The
// synchronous path pays a full fork-join per region: wake the pool,
// drain the dispatcher, hit the barrier, park — and the next region
// starts from cold. The engine (runtime/engine.hpp) queues regions and
// lets workers hand off from one region's dispatcher straight to the
// next, so the inter-region barrier and the park/unpark round trip
// disappear from the steady state.
//
// This bench prices exactly that seam: K small regions, identical bodies
// and schedules, executed (a) back-to-back with run() on a ThreadPool and
// (b) submitted all at once to an Engine and awaited with wait_all().
// Regions are deliberately short — the barrier is a per-region constant,
// so the smaller the region, the larger its share. Reported as
// completed-regions/second, min-of-rounds (least-interference estimate),
// plus the async/sync speedup. The acceptance gate from the experiment
// plan: >= 1.3x at K=64, 8 workers.
//
// Flags: --json=FILE (bench_harness), --tiny (CI smoke sizes).
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e18_throughput", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  const std::size_t workers = 8;
  const int regions = tiny ? 16 : 64;
  const i64 n = tiny ? 1024 : 4096;  // iterations per region
  const int rounds = tiny ? 3 : 10;
  const runtime::LaunchOptions opts{
      .schedule = {runtime::Schedule::kChunked, 256}};

  // Every region writes its own slice of one shared buffer; summing it
  // afterwards both validates coverage and keeps the stores live.
  std::vector<double> out(static_cast<std::size_t>(regions) *
                          static_cast<std::size_t>(n));
  auto region_body = [&out, n](int region) {
    double* slice = out.data() + static_cast<std::size_t>(region) *
                                     static_cast<std::size_t>(n);
    // The coalesced index is 1-based, [1, n].
    return [slice](i64 i) {
      slice[static_cast<std::size_t>(i - 1)] =
          static_cast<double>(i & 0xff) + 1.0;
    };
  };
  const double expected_sum = [&] {
    double s = 0.0;
    for (i64 i = 1; i <= n; ++i) s += static_cast<double>(i & 0xff) + 1.0;
    return s * regions;
  }();
  auto checksum = [&] {
    double s = 0.0;
    for (double v : out) s += v;
    return s;
  };

  double sync_best = 0.0, async_best = 0.0;
  bool valid = true;

  // The two modes are timed interleaved round-robin so clock drift and
  // machine noise cannot bias one against the other.
  for (int round = 0; round < rounds; ++round) {
    {
      runtime::ThreadPool pool(workers);
      std::fill(out.begin(), out.end(), 0.0);
      const auto t0 = Clock::now();
      for (int r = 0; r < regions; ++r) {
        (void)runtime::run(pool, n, region_body(r), opts);
      }
      const double s = seconds_since(t0);
      if (round == 0 || s < sync_best) sync_best = s;
      valid = valid && checksum() == expected_sum;
    }
    {
      runtime::Engine engine(workers,
                             static_cast<std::size_t>(regions));
      std::fill(out.begin(), out.end(), 0.0);
      const auto t0 = Clock::now();
      std::vector<runtime::RegionFuture<runtime::ForStats>> futures;
      futures.reserve(static_cast<std::size_t>(regions));
      for (int r = 0; r < regions; ++r) {
        futures.push_back(engine.submit(n, region_body(r), opts));
      }
      engine.wait_all();
      const double s = seconds_since(t0);
      if (round == 0 || s < async_best) async_best = s;
      for (auto& f : futures) valid = valid && f.get().completed();
      valid = valid && checksum() == expected_sum;
    }
  }

  const double sync_rps = regions / sync_best;
  const double async_rps = regions / async_best;
  const double speedup = async_rps / sync_rps;

  support::Table table("E18: region throughput, K regions of N iterations, "
                       "8 workers, min of rounds");
  table.header({"mode", "K", "N", "regions/sec", "speedup"});
  table.cell("sync run()")
      .cell(static_cast<std::int64_t>(regions))
      .cell(static_cast<std::int64_t>(n))
      .cell(sync_rps, 1)
      .cell(1.0, 2)
      .end_row();
  table.cell("engine submit")
      .cell(static_cast<std::int64_t>(regions))
      .cell(static_cast<std::int64_t>(n))
      .cell(async_rps, 1)
      .cell(speedup, 2)
      .end_row();
  table.print();
  std::printf("\nresults valid: %s   async/sync speedup: %.2fx "
              "(gate: >= 1.3x at K=64)\n",
              valid ? "yes" : "NO", speedup);

  reporter.record("throughput")
      .field("regions", static_cast<std::size_t>(regions))
      .field("iters_per_region", static_cast<std::size_t>(n))
      .field("workers", workers)
      .field("sync_regions_per_sec", sync_rps)
      .field("async_regions_per_sec", async_rps)
      .field("speedup", speedup);
  return valid ? 0 : 1;
}
