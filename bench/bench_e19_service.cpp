// E19 — Service throughput and tail latency: the coalesced daemon under a
// multi-threaded load generator.
//
// The paper's machine runs one program; the service turns the runtime into
// a shared resource — many clients, one Engine, admission control at the
// front door. This bench prices that seam end to end: framed submission
// over a real socket, parse + verify + lint admission, analyze + coalesce,
// scheduling through the engine's bounded queue, and the framed reply.
//
// Two phases:
//   latency     T client threads x R requests each against a healthy
//               server (default queue). Reports req/s, regions/s, and
//               p50/p99/max latency per thread count. The default sweep
//               (1, 4, 8 threads x 128 requests) submits >= 1000 programs.
//   saturation  the same load against a server whose engine queue holds
//               only 2 regions. Overload must surface as Status::kShed
//               responses (counted and reported) while p99 stays bounded —
//               shedding at the edge, not unbounded queueing.
//
// Flags: --json=FILE (bench_harness), --tiny (CI smoke sizes).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "coalesce.hpp"

namespace {

using namespace coalesce;
using Clock = std::chrono::steady_clock;

// One parallel root, enough work per request that scheduling is visible
// but short enough that the sweep stays in benchmark territory.
const char* kProgram =
    "array A[64][32];\n"
    "doall i = 1, 64 {\n"
    "  doall j = 1, 32 {\n"
    "    A[i][j] = i * j + i - j;\n"
    "  }\n"
    "}\n";

struct LoadResult {
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double wall_s = 0;
  std::vector<double> latencies_ms;  // sorted on return
};

LoadResult drive(const service::Server& server, std::size_t threads,
                 std::size_t per_thread) {
  service::Request request;
  request.type = service::MessageType::kSubmit;
  request.submit.source = kProgram;

  LoadResult result;
  std::mutex mutex;
  std::atomic<std::size_t> ok{0}, shed{0}, errors{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      auto socket = support::connect_tcp("127.0.0.1", server.tcp_port());
      if (!socket.ok()) {
        errors += per_thread;
        return;
      }
      std::vector<double> local;
      local.reserve(per_thread);
      for (std::size_t r = 0; r < per_thread; ++r) {
        const auto s0 = Clock::now();
        auto reply = service::call(socket.value(), request);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - s0)
                .count();
        if (!reply.ok()) {
          ++errors;
          continue;
        }
        local.push_back(ms);
        switch (reply.value().status) {
          case service::Status::kOk: ++ok; break;
          case service::Status::kShed: ++shed; break;
          default: ++errors; break;
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      result.latencies_ms.insert(result.latencies_ms.end(), local.begin(),
                                 local.end());
    });
  }
  for (auto& w : workers) w.join();
  result.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  result.ok = ok;
  result.shed = shed;
  result.errors = errors;
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e19_service", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  const std::vector<std::size_t> thread_counts =
      tiny ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 4, 8};
  const std::size_t per_thread = tiny ? 8 : 128;

  // Phase 1: healthy server, latency sweep.
  {
    service::ServerOptions options;
    options.tcp = true;
    options.tcp_port = 0;
    options.engine_workers = tiny ? 2 : 4;
    auto server = service::Server::create(options);
    if (!server.ok()) {
      std::fprintf(stderr, "bench_e19: %s\n",
                   server.error().to_string().c_str());
      return 1;
    }
    server.value()->start();

    std::printf("# E19 latency: %zu requests/thread against a healthy "
                "server (%zu workers)\n",
                per_thread, server.value()->engine_workers());
    std::printf("%8s %9s %10s %12s %9s %9s %9s\n", "threads", "requests",
                "req/s", "regions/s", "p50 ms", "p99 ms", "max ms");
    for (const std::size_t threads : thread_counts) {
      const LoadResult r = drive(*server.value(), threads, per_thread);
      const double rps =
          r.wall_s > 0 ? static_cast<double>(r.ok + r.shed) / r.wall_s : 0;
      // One parallel root per accepted program: regions/s == accepted/s.
      const double regions_s =
          r.wall_s > 0 ? static_cast<double>(r.ok) / r.wall_s : 0;
      const double p50 = percentile(r.latencies_ms, 0.50);
      const double p99 = percentile(r.latencies_ms, 0.99);
      const double mx = r.latencies_ms.empty() ? 0 : r.latencies_ms.back();
      std::printf("%8zu %9zu %10.1f %12.1f %9.3f %9.3f %9.3f\n", threads,
                  threads * per_thread, rps, regions_s, p50, p99, mx);
      if (r.errors != 0) {
        std::fprintf(stderr, "bench_e19: %zu transport errors at T=%zu\n",
                     r.errors, threads);
        return 1;
      }
      reporter.record("latency")
          .field("threads", threads)
          .field("requests", threads * per_thread)
          .field("ok", r.ok)
          .field("shed", r.shed)
          .field("wall_s", r.wall_s)
          .field("rps", rps)
          .field("regions_per_sec", regions_s)
          .field("p50_ms", p50)
          .field("p99_ms", p99)
          .field("max_ms", mx);
    }
    server.value()->stop();
  }

  // Phase 2: saturation against a 2-slot engine queue. The interesting
  // number is the shed fraction: overload must be refused at the edge
  // (clients retry with backoff) instead of growing an unbounded queue.
  {
    service::ServerOptions options;
    options.tcp = true;
    options.tcp_port = 0;
    options.engine_workers = 1;
    options.queue_capacity = 2;
    options.tenant_quota = 1 << 20;  // quota out of the way; queue governs
    auto server = service::Server::create(options);
    if (!server.ok()) {
      std::fprintf(stderr, "bench_e19: %s\n",
                   server.error().to_string().c_str());
      return 1;
    }
    server.value()->start();

    const std::size_t threads = tiny ? 4 : 8;
    const LoadResult r = drive(*server.value(), threads, per_thread);
    const std::size_t total = r.ok + r.shed;
    const double shed_fraction =
        total > 0 ? static_cast<double>(r.shed) / static_cast<double>(total)
                  : 0;
    const double p99 = percentile(r.latencies_ms, 0.99);
    std::printf("\n# E19 saturation: %zu threads vs 1 worker, 2-slot "
                "queue\n",
                threads);
    std::printf("completed=%zu shed=%zu (%.1f%%) p99=%.3f ms\n", r.ok,
                r.shed, 100.0 * shed_fraction, p99);
    if (r.errors != 0) {
      std::fprintf(stderr, "bench_e19: %zu transport errors saturated\n",
                   r.errors);
      return 1;
    }
    reporter.record("saturation")
        .field("threads", threads)
        .field("requests", threads * per_thread)
        .field("ok", r.ok)
        .field("shed", r.shed)
        .field("shed_fraction", shed_fraction)
        .field("p50_ms", percentile(r.latencies_ms, 0.50))
        .field("p99_ms", p99);
    server.value()->stop();
  }
  return 0;
}
