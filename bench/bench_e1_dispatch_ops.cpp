// E1 — Synchronized dispatch operations: nested vs coalesced self-scheduling.
//
// Reconstructs the paper's core scheduling-traffic claim: self-scheduling an
// m-deep nest touches one counter per level per iteration (sum over levels of
// the level's instance count), while the coalesced loop touches ONE counter —
// once per chunk, so guided self-scheduling drives it to O(P log N).
//
// Shape claims verified here (see EXPERIMENTS.md):
//   * nested ops  = sum_k prod_{j<=k} N_j  > N  (grows with depth),
//   * coalesced self ops = N exactly,
//   * coalesced GSS ops  <<  N, near P*log(N/P).
#include <vector>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e1_dispatch_ops", argc, argv);

  struct Shape {
    const char* name;
    std::vector<i64> extents;
  };
  const Shape shapes[] = {
      {"10x10", {10, 10}},
      {"16x16", {16, 16}},
      {"100x100", {100, 100}},
      {"10x10x10", {10, 10, 10}},
      {"16x16x16", {16, 16, 16}},
      {"4x4x4x4", {4, 4, 4, 4}},
  };

  support::Table table(
      "E1: synchronized dispatch operations per nest execution");
  table.header({"shape", "P", "iterations", "nested(multi-counter)",
                "coalesced self(1)", "coalesced chunk(8)", "coalesced GSS",
                "nested/GSS"});

  const sim::CostModel costs;
  for (const auto& shape : shapes) {
    const auto space = index::CoalescedSpace::create(shape.extents).value();
    const sim::Workload work = sim::Workload::constant(space.total(), 10);
    for (std::size_t p : {4u, 8u, 16u, 32u}) {
      const auto nested =
          sim::simulate_nested_multicounter(space, p, costs, work);
      const auto self = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kSelf, 1}, costs, work);
      const auto chunked = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kChunked, 8}, costs, work);
      const auto gss = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kGuided, 1}, costs, work);
      table.cell(shape.name)
          .cell(static_cast<std::int64_t>(p))
          .cell(space.total())
          .cell(nested.dispatch_ops)
          .cell(self.dispatch_ops)
          .cell(chunked.dispatch_ops)
          .cell(gss.dispatch_ops)
          .cell(static_cast<double>(nested.dispatch_ops) /
                    static_cast<double>(gss.dispatch_ops),
                1)
          .end_row();
      reporter.record("dispatch_ops")
          .field("extents", bench::Reporter::shape_string(shape.extents))
          .field("P", p)
          .field("iterations", space.total())
          .field("nested_multicounter", nested.dispatch_ops)
          .field("coalesced_self", self.dispatch_ops)
          .field("coalesced_chunk8", chunked.dispatch_ops)
          .field("coalesced_gss", gss.dispatch_ops);
    }
  }
  table.print();
  return 0;
}
