// E20 — Locality-aware coalescing + cache-sharded dispatch, measured on
// real memory traffic (wall clock, not the simulator).
//
// Two claims under test:
//
//  (1) Axis permutation pays. For each kernel a model IR nest is built and
//      codegen::choose_permutation() decides the axis order from the
//      contiguity analysis; the bench then runs the *native* kernel both
//      ways — the nest's written order (default) and the chosen order plus
//      sharded dispatch (--locality) — over identical arrays. Kernels:
//        transposed  B(j,i) = 2*A(j,i)+1 walked i-outer (stride-N inner)
//        strided     B(m,k) = 2*A(m,k)+1 walked k-outer (stride-S inner)
//        blocked     true transpose B(i,j) = A(j,i), naive rows vs tiles
//                    sized from the cost model's tile hint (no hard gate:
//                    one axis is discontiguous in any order)
//      Gate (full size, >= 8 hardware threads): locality wins >= 1.3x on
//      transposed and strided.
//
//  (2) Sharded dispatch is free on uniform loads and wins under
//      contention. The same flat kernel is drained through the shared
//      FetchAddDispatcher and the per-cluster ShardedDispatcher at chunk
//      1024 (uniform) and chunk 1 (every grant contends on the counter).
//      Gate (same conditions): sharded <= 1.15x fetch&add time uniform,
//      and strictly no slower under contention.
//
// Exit code reflects correctness only — bit-exact checksums across
// variants and the cost model choosing the expected permutations; perf
// gates print PASS/FAIL verdicts (E17/E18 style) and fail the exit code
// only when they actually ran (full size on >= 8 hardware threads, so CI's
// --tiny smoke never flakes). Flags: --json=FILE, --tiny.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// Min-of-rounds wall clock for one configuration; the minimum is the run
/// least disturbed by the scheduler, the right statistic for a throughput
/// kernel.
template <typename Fn>
double min_wall_ns(int rounds, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double ns = ns_since(t0);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

/// Model nest for the transposed kernel: both references are A(j,i)-shaped,
/// so the written order (i outer) walks stride N and the cost model must
/// choose the reversal.
ir::LoopNest make_transposed_model(i64 n) {
  ir::NestBuilder b;
  const ir::VarId a = b.array("A", {n, n});
  const ir::VarId bb = b.array("B", {n, n});
  const ir::VarId i = b.begin_parallel_loop("i", 1, n);
  const ir::VarId j = b.begin_parallel_loop("j", 1, n);
  b.assign(b.element(bb, {j, i}), b.read(a, {j, i}));
  b.end_loop();
  b.end_loop();
  return b.build();
}

/// Model nest for the strided kernel: A is M x S and every reference is
/// A(m,k) under a k-outer walk, so the inner axis strides by S.
ir::LoopNest make_strided_model(i64 m, i64 s) {
  ir::NestBuilder b;
  const ir::VarId a = b.array("A", {m, s});
  const ir::VarId bb = b.array("B", {m, s});
  const ir::VarId k = b.begin_parallel_loop("k", 1, s);
  const ir::VarId mm = b.begin_parallel_loop("m", 1, m);
  b.assign(b.element(bb, {mm, k}), b.read(a, {mm, k}));
  b.end_loop();
  b.end_loop();
  return b.build();
}

std::string perm_string(const std::vector<std::size_t>& perm) {
  std::string out;
  for (std::size_t k = 0; k < perm.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(perm[k]);
  }
  return out.empty() ? "-" : out;
}

double checksum(const std::vector<double>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum;
}

struct KernelResult {
  double default_ns = 0.0;
  double locality_ns = 0.0;
  double speedup = 0.0;
  std::uint64_t steals = 0;
  bool bit_exact = false;
};

/// Runs a 2-axis kernel both ways on the pool. `body(flat, permuted)` maps
/// one coalesced index to its element under the given order. The locality
/// run uses the permuted mapping AND sharded dispatch — exactly what the
/// pipeline produces after permute_for_locality + coalesce.
template <typename Body>
KernelResult measure_kernel(runtime::ThreadPool& pool, i64 total, int rounds,
                            std::vector<double>& out, Body&& body) {
  KernelResult result;
  runtime::ScheduleParams chunked{runtime::Schedule::kChunked, 1024};
  result.default_ns = min_wall_ns(rounds, [&] {
    (void)runtime::run(pool, total,
                       [&](i64 flat) { body(flat - 1, false); },
                       {.schedule = chunked});
  });
  const double sum_default = checksum(out);

  std::uint64_t steals = 0;
  result.locality_ns = min_wall_ns(rounds, [&] {
    const auto stats = runtime::run(pool, total,
                                    [&](i64 flat) { body(flat - 1, true); },
                                    {.schedule = chunked, .locality = true});
    steals += stats.steals;
  });
  result.steals = steals;
  result.speedup =
      result.locality_ns > 0.0 ? result.default_ns / result.locality_ns : 0.0;
  // Same element-wise writes in a different order: contents must match
  // bit-exactly.
  result.bit_exact = checksum(out) == sum_default;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e20_contiguity", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = 8;  // sharded dispatch engages at >= 8
  const bool gates_armed = !tiny && hw >= 8;
  runtime::ThreadPool pool(workers);
  const int rounds = tiny ? 3 : 7;
  bool correct = true;
  bool gates_pass = true;

  // ---- cost-model decisions on the model nests -----------------------------
  const i64 n = tiny ? 128 : 1024;            // transposed: n x n doubles
  const i64 stride = 16;                      // strided: m x stride
  const i64 m = tiny ? (i64{1} << 10) : (i64{1} << 16);
  const auto transposed_choice =
      codegen::choose_permutation(make_transposed_model(n));
  const auto strided_choice =
      codegen::choose_permutation(make_strided_model(m, stride));
  {
    support::Table table("E20: cost-model permutation choices");
    table.header({"kernel", "perm", "cost before", "cost after", "tile hint"});
    for (const auto& [name, choice] :
         {std::pair{"transposed", &transposed_choice},
          std::pair{"strided", &strided_choice}}) {
      table.cell(name)
          .cell(perm_string(choice->perm))
          .cell(choice->cost_before, 3)
          .cell(choice->cost_after, 3)
          .cell(bench::Reporter::shape_string(choice->tile_hint))
          .end_row();
      reporter.record("choice")
          .field("kernel", name)
          .field("perm", perm_string(choice->perm))
          .field("cost_before", choice->cost_before)
          .field("cost_after", choice->cost_after)
          .field("tile_hint", bench::Reporter::shape_string(choice->tile_hint))
          .field("worthwhile", choice->worthwhile() ? 1 : 0);
    }
    table.print();
    // Both models walk their arrays transposed: the reversal is the only
    // correct answer, and it must clear the worthwhile bar.
    const std::vector<std::size_t> reversal{1, 0};
    if (transposed_choice.perm != reversal ||
        !transposed_choice.worthwhile() || strided_choice.perm != reversal ||
        !strided_choice.worthwhile()) {
      std::printf("E20: cost model chose the WRONG permutation\n");
      correct = false;
    }
  }

  // ---- (1) default order vs --locality on real arrays ----------------------
  {
    support::Table table(support::format(
        "E20: default vs locality wall clock, %zu workers, min of %d",
        workers, rounds));
    table.header({"kernel", "default ms", "locality ms", "speedup", "steals",
                  "bit-exact"});
    auto report_kernel = [&](const char* name, i64 total,
                             const KernelResult& r) {
      table.cell(name)
          .cell(r.default_ns / 1e6, 2)
          .cell(r.locality_ns / 1e6, 2)
          .cell(r.speedup, 2)
          .cell(static_cast<std::int64_t>(r.steals))
          .cell(r.bit_exact ? "yes" : "NO")
          .end_row();
      reporter.record("kernel")
          .field("kernel", name)
          .field("total", total)
          .field("workers", workers)
          .field("default_ns", r.default_ns)
          .field("locality_ns", r.locality_ns)
          .field("speedup", r.speedup)
          .field("steals", r.steals)
          .field("bit_exact", r.bit_exact ? 1 : 0);
      if (!r.bit_exact) correct = false;
    };

    // Transposed: idx -> (i,j) default, (j,i) under the chosen reversal;
    // the element A(j,i) is stride-N in j, stride-1 in i.
    {
      std::vector<double> a(static_cast<std::size_t>(n * n));
      std::vector<double> b(static_cast<std::size_t>(n * n), 0.0);
      for (std::size_t k = 0; k < a.size(); ++k) {
        a[k] = static_cast<double>(k % 1021);
      }
      const KernelResult r = measure_kernel(
          pool, n * n, rounds, b, [&](i64 flat, bool permuted) {
            const i64 outer = flat / n;
            const i64 inner = flat % n;
            const i64 i = permuted ? inner : outer;
            const i64 j = permuted ? outer : inner;
            b[static_cast<std::size_t>(j * n + i)] =
                2.0 * a[static_cast<std::size_t>(j * n + i)] + 1.0;
          });
      report_kernel("transposed", n * n, r);
      if (gates_armed && r.speedup < 1.3) gates_pass = false;
    }

    // Strided: A is m x stride; the default order walks k outermost so the
    // inner axis hops `stride` doubles per iteration.
    {
      std::vector<double> a(static_cast<std::size_t>(m * stride));
      std::vector<double> b(static_cast<std::size_t>(m * stride), 0.0);
      for (std::size_t k = 0; k < a.size(); ++k) {
        a[k] = static_cast<double>(k % 769);
      }
      const KernelResult r = measure_kernel(
          pool, m * stride, rounds, b, [&](i64 flat, bool permuted) {
            const i64 mm = permuted ? flat / stride : flat % m;
            const i64 k = permuted ? flat % stride : flat / m;
            b[static_cast<std::size_t>(mm * stride + k)] =
                2.0 * a[static_cast<std::size_t>(mm * stride + k)] + 1.0;
          });
      report_kernel("strided", m * stride, r);
      if (gates_armed && r.speedup < 1.3) gates_pass = false;
    }

    // Blocked: a true transpose B(i,j) = A(j,i) — one side is discontiguous
    // in every order, so tiling (sizes from the cost model's hint) is the
    // lever, not permutation. Informational: no hard gate.
    {
      const std::vector<std::int64_t>& hint = transposed_choice.tile_hint;
      const i64 tile_outer =
          hint.size() == 2 ? std::max<i64>(hint[0], 1) : 8;
      const i64 tile_inner =
          hint.size() == 2 ? std::max<i64>(hint[1], 1) : 64;
      std::vector<double> a(static_cast<std::size_t>(n * n));
      std::vector<double> b(static_cast<std::size_t>(n * n), 0.0);
      for (std::size_t k = 0; k < a.size(); ++k) {
        a[k] = static_cast<double>(k % 521);
      }
      runtime::ScheduleParams chunked{runtime::Schedule::kChunked, 1};
      // Naive: one coalesced index per row, columns walked inside.
      const double naive_ns = min_wall_ns(rounds, [&] {
        (void)runtime::run(pool, n,
                           [&](i64 row) {
                             const i64 i = row - 1;
                             for (i64 j = 0; j < n; ++j) {
                               b[static_cast<std::size_t>(i * n + j)] =
                                   a[static_cast<std::size_t>(j * n + i)];
                             }
                           },
                           {.schedule = chunked});
      });
      const double sum_naive = checksum(b);
      // Tiled: one coalesced index per (tile_outer x tile_inner) tile; both
      // arrays stay within tile_outer*tile_inner*8-byte windows.
      const i64 tiles_i = (n + tile_outer - 1) / tile_outer;
      const i64 tiles_j = (n + tile_inner - 1) / tile_inner;
      std::uint64_t steals = 0;
      const double tiled_ns = min_wall_ns(rounds, [&] {
        const auto stats = runtime::run(
            pool, tiles_i * tiles_j,
            [&](i64 flat) {
              const i64 t = flat - 1;
              const i64 i0 = (t / tiles_j) * tile_outer;
              const i64 j0 = (t % tiles_j) * tile_inner;
              const i64 i1 = std::min<i64>(i0 + tile_outer, n);
              const i64 j1 = std::min<i64>(j0 + tile_inner, n);
              for (i64 i = i0; i < i1; ++i) {
                for (i64 j = j0; j < j1; ++j) {
                  b[static_cast<std::size_t>(i * n + j)] =
                      a[static_cast<std::size_t>(j * n + i)];
                }
              }
            },
            {.schedule = chunked, .locality = true});
        steals += stats.steals;
      });
      KernelResult r;
      r.default_ns = naive_ns;
      r.locality_ns = tiled_ns;
      r.speedup = tiled_ns > 0.0 ? naive_ns / tiled_ns : 0.0;
      r.steals = steals;
      r.bit_exact = checksum(b) == sum_naive;
      report_kernel("blocked", n * n, r);
      std::printf("E20: blocked tile = %lldx%lld from the cost-model hint "
                  "(informational, no gate)\n",
                  static_cast<long long>(tile_outer),
                  static_cast<long long>(tile_inner));
    }
    table.print();
  }

  // ---- (2) FetchAddDispatcher vs ShardedDispatcher -------------------------
  {
    support::Table table(support::format(
        "E20: dispatcher wall clock, flat kernel, %zu workers, min of %d",
        workers, rounds));
    table.header({"load", "chunk", "fetch&add ms", "sharded ms", "ratio",
                  "steals"});
    struct Load {
      const char* name;
      i64 total;
      i64 chunk;
      double tolerance;  ///< sharded must be <= fetchadd * tolerance
    };
    const Load loads[] = {
        {"uniform", tiny ? (i64{1} << 14) : (i64{1} << 20), 1024, 1.15},
        {"contention", tiny ? (i64{1} << 12) : (i64{1} << 16), 1, 1.0},
    };
    for (const Load& load : loads) {
      std::vector<double> a(static_cast<std::size_t>(load.total));
      std::vector<double> b(static_cast<std::size_t>(load.total), 0.0);
      for (std::size_t k = 0; k < a.size(); ++k) {
        a[k] = static_cast<double>(k % 127);
      }
      auto body = [&](i64 flat) {
        const std::size_t k = static_cast<std::size_t>(flat - 1);
        b[k] = 2.0 * a[k] + 1.0;
      };
      runtime::ScheduleParams params{runtime::Schedule::kChunked, load.chunk};
      const double fetchadd_ns = min_wall_ns(rounds, [&] {
        (void)runtime::run(pool, load.total, body, {.schedule = params});
      });
      const double sum_fetchadd = checksum(b);
      runtime::ScheduleParams sharded = params;
      sharded.sharded = true;
      std::uint64_t steals = 0;
      const double sharded_ns = min_wall_ns(rounds, [&] {
        const auto stats =
            runtime::run(pool, load.total, body, {.schedule = sharded});
        steals += stats.steals;
      });
      if (checksum(b) != sum_fetchadd) correct = false;
      const double ratio =
          sharded_ns > 0.0 ? fetchadd_ns / sharded_ns : 0.0;
      table.cell(load.name)
          .cell(static_cast<std::int64_t>(load.chunk))
          .cell(fetchadd_ns / 1e6, 2)
          .cell(sharded_ns / 1e6, 2)
          .cell(ratio, 2)
          .cell(static_cast<std::int64_t>(steals))
          .end_row();
      reporter.record("dispatcher")
          .field("load", load.name)
          .field("total", load.total)
          .field("chunk", load.chunk)
          .field("workers", workers)
          .field("fetchadd_ns", fetchadd_ns)
          .field("sharded_ns", sharded_ns)
          .field("ratio", ratio)
          .field("steals", steals);
      if (gates_armed && sharded_ns > fetchadd_ns * load.tolerance) {
        gates_pass = false;
      }
    }
    table.print();
  }

  std::printf("\nresults bit-exact: %s   perf gates (locality >= 1.3x on "
              "transposed+strided; sharded <= 1.15x uniform, <= 1.0x "
              "contention): %s\n",
              correct ? "yes" : "NO",
              !gates_armed ? "skipped (needs full size + >= 8 hardware "
                             "threads)"
                           : (gates_pass ? "PASS" : "FAIL"));
  reporter.record("verdict")
      .field("correct", correct ? 1 : 0)
      .field("gates_armed", gates_armed ? 1 : 0)
      .field("gates_pass", gates_pass ? 1 : 0);
  return (correct && (!gates_armed || gates_pass)) ? 0 : 1;
}
