// E22 — JIT native backend vs the IR interpreter.
//
// The coalesced nest can be *executed* two ways: walking the IR per
// iteration (ir::Evaluator under runtime::execute_parallel) or compiling
// the band once into a native chunk kernel (codegen::JitCache) and driving
// that kernel with the same dispatchers. The interpreter pays a tree walk
// per body statement per point; the kernel pays it once, at compile time.
// This bench prices all three legs of that trade:
//
//   * interpreter wall time on a full-size matmul nest,
//   * JIT cold cost (prepare + emit + host-compiler + dlopen),
//   * JIT warm wall time (cache hit, kernel dispatch only),
//
// plus the cache-hit lookup latency, which is what every launch after the
// first actually pays. Acceptance gate (EXPERIMENTS.md E22): warm JIT
// >= 1.5x over the interpreter on the full-size workload; bit-exact
// results are a hard failure either way.
//
// Flags: --json=FILE (bench_harness), --tiny (CI smoke sizes; the perf
// gate is reported but not enforced). Exits 0 when no host C compiler is
// available — the same graceful degradation the runtime implements.
#include <chrono>
#include <cstring>

#include "bench_harness.hpp"
#include "coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e22_jit", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  if (!codegen::compiler_available()) {
    std::printf("E22: no host C compiler; JIT unavailable, nothing to "
                "measure (this is the runtime's fallback path, not an "
                "error)\n");
    reporter.record("skip").field("reason", "no host C compiler");
    return 0;
  }

  const i64 n = tiny ? 12 : 64;  // C(n,n) = A(n,n) * B(n,n)
  const int rounds = tiny ? 2 : 5;
  const std::size_t workers = 4;
  const ir::LoopNest nest = ir::make_matmul(n, n, n);
  const runtime::ScheduleParams schedule{runtime::Schedule::kChunked, 16};

  runtime::ThreadPool pool(workers);

  // Leg 1: the interpreter, best of rounds.
  double interp_best = 0.0;
  ir::ArrayStore interp_store(nest.symbols);
  for (int round = 0; round < rounds; ++round) {
    ir::ArrayStore store(nest.symbols);
    const auto t0 = Clock::now();
    const auto stats =
        runtime::execute_parallel(pool, nest, schedule, store);
    const double s = seconds_since(t0);
    if (!stats.ok() || !stats.value().completed()) {
      std::fprintf(stderr, "E22: interpreter run failed\n");
      return 1;
    }
    if (round == 0 || s < interp_best) interp_best = s;
    if (round == rounds - 1) interp_store = std::move(store);
  }

  // Leg 2: cold compile cost, measured on a private cache so the warm leg
  // below still sees a true first-compile through the default cache.
  const auto prepared = codegen::prepare(nest);
  if (!prepared.ok()) {
    std::fprintf(stderr, "E22: prepare failed: %s\n",
                 prepared.error().to_string().c_str());
    return 1;
  }
  codegen::JitCache private_cache;
  const auto cold_t0 = Clock::now();
  const auto cold = private_cache.get_or_compile(prepared.value());
  const double cold_seconds = seconds_since(cold_t0);
  if (!cold.ok()) {
    std::fprintf(stderr, "E22: compile failed: %s\n",
                 cold.error().to_string().c_str());
    return 1;
  }

  // Leg 3: warm JIT execution through the runtime path (default cache).
  runtime::LaunchOptions jit_opts;
  jit_opts.schedule = schedule;
  jit_opts.exec = runtime::ExecMode::kJit;
  double jit_best = 0.0;
  bool identical = true;
  {
    ir::ArrayStore warmup(nest.symbols);  // first call pays the compile
    if (!runtime::run(pool, nest, warmup, jit_opts).ok()) {
      std::fprintf(stderr, "E22: JIT warmup failed\n");
      return 1;
    }
  }
  for (int round = 0; round < rounds; ++round) {
    ir::ArrayStore store(nest.symbols);
    const auto t0 = Clock::now();
    const auto stats = runtime::run(pool, nest, store, jit_opts);
    const double s = seconds_since(t0);
    if (!stats.ok() || !stats.value().completed()) {
      std::fprintf(stderr, "E22: JIT run failed\n");
      return 1;
    }
    if (round == 0 || s < jit_best) jit_best = s;
    identical =
        identical && ir::ArrayStore::identical(interp_store, store);
  }

  // Cache-hit latency: what a warm launch pays before dispatch begins.
  const int lookups = 1000;
  const auto hit_t0 = Clock::now();
  for (int k = 0; k < lookups; ++k) {
    if (!private_cache.get_or_compile(prepared.value()).ok()) return 1;
  }
  const double hit_ns = seconds_since(hit_t0) * 1e9 / lookups;

  const double speedup = interp_best / jit_best;
  const auto jit_stats = codegen::default_jit_cache().stats();

  support::Table table("E22: JIT vs interpreter, matmul n^3, 4 workers, "
                       "best of rounds");
  table.header({"mode", "n", "wall ms", "speedup"});
  table.cell("interpreter")
      .cell(static_cast<std::int64_t>(n))
      .cell(interp_best * 1e3, 3)
      .cell(1.0, 2)
      .end_row();
  table.cell("jit cold (compile)")
      .cell(static_cast<std::int64_t>(n))
      .cell(cold_seconds * 1e3, 3)
      .cell(interp_best / cold_seconds, 2)
      .end_row();
  table.cell("jit warm")
      .cell(static_cast<std::int64_t>(n))
      .cell(jit_best * 1e3, 3)
      .cell(speedup, 2)
      .end_row();
  table.print();
  std::printf("\nbit-exact vs interpreter: %s   cache-hit lookup: %.0f ns"
              "   warm speedup: %.2fx (gate: >= 1.5x full size)\n",
              identical ? "yes" : "NO", hit_ns, speedup);
  std::printf("default cache: compiles=%llu hits=%llu failures=%llu\n",
              static_cast<unsigned long long>(jit_stats.compiles),
              static_cast<unsigned long long>(jit_stats.hits),
              static_cast<unsigned long long>(jit_stats.failures));

  reporter.record("jit")
      .field("n", n)
      .field("workers", workers)
      .field("interpreter_seconds", interp_best)
      .field("jit_cold_seconds", cold_seconds)
      .field("jit_warm_seconds", jit_best)
      .field("speedup", speedup)
      .field("cache_hit_ns", hit_ns)
      .field("bit_exact", identical ? 1 : 0);

  if (!identical) return 1;
  // The perf gate only binds at full size; --tiny is a smoke run.
  if (!tiny && speedup < 1.5) {
    std::fprintf(stderr, "E22: warm speedup %.2fx below the 1.5x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}