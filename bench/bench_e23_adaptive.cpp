// E23 — Adaptive scheduling (Schedule::kAuto) vs the static menu on a
// mixed region stream.
//
// The claim under test: when one process serves several recurring region
// shapes with different load profiles, no single static schedule is right
// for all of them — but the adaptive controller, which keys its choice on
// the region shape and trains on ForStats feedback, tracks the best static
// choice per shape without being told the mix.
//
// The stream interleaves three flat DOALL shapes, each with a distinct
// trip count (so each gets its own controller key):
//
//   uniform     equal work per iteration — big chunks win, dynamic
//               self-scheduling only adds dispatch traffic
//   triangular  work grows linearly with the index — one contiguous block
//               per worker is maximally imbalanced (~2x), tapering
//               schedules (guided/factoring/trapezoid) win
//   bursty      heavy work confined to alternating bands — coarse static
//               blocks strand whole bands on single workers
//
// Every candidate of the controller's own menu (AdaptiveController::
// candidate 0..4) is run as a fixed schedule for the whole stream; the
// fastest is "best-static", the slowest "worst-static". The adaptive run
// resolves every launch through Schedule::kAuto after a warm-up phase long
// enough for each key to explore the menu and settle.
//
// Gates (armed at full size on >= 8 hardware threads, E20-style — the
// --tiny CI smoke never arms them):
//   adaptive <= 1.10x best-static stream time
//   adaptive >= 1.3x faster than worst-static
// Correctness is always enforced: every policy's output arrays must be
// bit-exact against a sequential reference (DOALL bodies write disjoint
// elements, so any schedule must produce identical bits).
//
// Flags: --json=FILE, --tiny, --schedule=SPEC (extra fixed policy to run).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// One region shape in the stream: a flat DOALL of `total` iterations
/// whose per-iteration work is `cost(j)` inner spins.
struct Shape {
  const char* name;
  i64 total;
  i64 (*cost)(i64 j, i64 total);
};

/// Deterministic spin: the work the schedules fight over. Returns a value
/// derived from every spin so the optimizer cannot drop the loop and the
/// output stays schedule-independent.
double spin(i64 j, i64 spins) {
  double acc = static_cast<double>(j);
  for (i64 s = 0; s < spins; ++s) {
    acc = acc * 1.0000001 + static_cast<double>(s & 7);
  }
  return acc;
}

i64 uniform_cost(i64, i64) { return 64; }

i64 triangular_cost(i64 j, i64 total) {
  return 16 + (j * 128) / total;  // grows linearly to ~144 spins
}

i64 bursty_cost(i64 j, i64 total) {
  // Eight bands; alternating bands carry ~16x the work.
  const i64 band = (j - 1) / std::max<i64>(1, total / 8);
  return (band % 2 == 0) ? 128 : 8;
}

struct Policy {
  std::string name;
  bool adaptive = false;
  std::size_t candidate = 0;  ///< menu index when !adaptive && !has_params
  /// A --schedule= policy: fixed params for every shape instead of the
  /// shape-scaled candidate menu.
  bool has_params = false;
  runtime::ScheduleParams params{};
};

/// Runs the whole stream once under `policy`, writing each shape's output
/// into its slot of `out`. Returns wall ns for the pass.
double stream_pass(runtime::ThreadPool& pool,
                   const std::vector<Shape>& shapes, const Policy& policy,
                   int launches_per_shape,
                   std::vector<std::vector<double>>& out) {
  const auto t0 = Clock::now();
  for (int l = 0; l < launches_per_shape; ++l) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      const Shape& shape = shapes[s];
      std::vector<double>& sink = out[s];
      runtime::ScheduleParams params{runtime::Schedule::kAuto, 1};
      if (policy.has_params) {
        params = policy.params;
      } else if (!policy.adaptive) {
        params = runtime::AdaptiveController::candidate(
            policy.candidate, {runtime::Schedule::kChunked, 1}, shape.total,
            pool.concurrency());
      }
      (void)runtime::run(
          pool, shape.total,
          [&sink, &shape](i64 j) {
            sink[static_cast<std::size_t>(j - 1)] =
                spin(j, shape.cost(j, shape.total));
          },
          {.schedule = params});
    }
  }
  return ns_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("e23_adaptive", argc, argv);
  bool tiny = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tiny") == 0) tiny = true;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = hw > 0 ? hw : 1;
  runtime::ThreadPool pool(workers);

  const std::vector<Shape> shapes = {
      {"uniform", tiny ? i64{4096} : i64{1} << 16, uniform_cost},
      {"triangular", tiny ? i64{2048} : i64{1} << 15, triangular_cost},
      {"bursty", tiny ? i64{3072} : i64{3} << 14, bursty_cost},
  };
  const int launches_per_shape = 2;
  const int rounds = tiny ? 2 : 5;
  // Warm-up passes for the adaptive run: every key must hand out the full
  // menu (kCandidates x explore_trials = 10 launches) and settle before
  // the measured rounds; 6 passes x 2 launches = 12 covers it.
  const int warmup_passes = 6;

  // Sequential reference, computed once per shape.
  std::vector<std::vector<double>> reference;
  for (const Shape& shape : shapes) {
    std::vector<double> ref(static_cast<std::size_t>(shape.total), 0.0);
    for (i64 j = 1; j <= shape.total; ++j) {
      ref[static_cast<std::size_t>(j - 1)] = spin(j, shape.cost(j, shape.total));
    }
    reference.push_back(std::move(ref));
  }

  std::vector<Policy> policies;
  for (std::size_t c = 0; c < runtime::AdaptiveController::kCandidates;
       ++c) {
    const runtime::ScheduleParams sample =
        runtime::AdaptiveController::candidate(
            c, {runtime::Schedule::kChunked, 1}, shapes[0].total, workers);
    std::string name = runtime::to_string(sample.kind);
    if (sample.kind == runtime::Schedule::kChunked) {
      name += c == 0 ? ":block" : ":medium";
    }
    policies.push_back(Policy{name, false, c});
  }
  bool has_schedule_flag = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--schedule=", 11) == 0) {
      has_schedule_flag = true;
    }
  }
  if (has_schedule_flag) {
    const runtime::ScheduleParams extra = bench::schedule_flag(
        argc, argv, runtime::ScheduleParams{runtime::Schedule::kGuided, 1});
    if (extra.kind != runtime::Schedule::kAuto) {
      Policy policy;
      policy.name = std::string("flag:") + runtime::to_string(extra.kind);
      policy.has_params = true;
      policy.params = extra;
      policies.push_back(policy);
    }
  }
  policies.push_back(Policy{"adaptive", true, 0});

  runtime::AdaptiveController& controller = runtime::default_controller();
  const std::uint64_t hits_before = controller.hits();
  const std::uint64_t retunes_before = controller.retunes();

  support::Table table("E23: mixed-stream wall time per scheduling policy");
  table.header({"policy", "stream_ns", "bit_exact"});

  bool all_exact = true;
  double adaptive_ns = 0.0;
  double best_static_ns = 0.0;
  double worst_static_ns = 0.0;
  std::string best_static;
  std::string worst_static;

  std::vector<std::vector<double>> out;
  for (const Shape& shape : shapes) {
    out.emplace_back(static_cast<std::size_t>(shape.total), 0.0);
  }

  for (const Policy& policy : policies) {
    if (policy.adaptive) {
      for (int w = 0; w < warmup_passes; ++w) {
        (void)stream_pass(pool, shapes, policy, launches_per_shape, out);
      }
    }
    double best = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const double ns =
          stream_pass(pool, shapes, policy, launches_per_shape, out);
      if (r == 0 || ns < best) best = ns;
    }
    bool exact = true;
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      exact = exact && out[s] == reference[s];
    }
    all_exact = all_exact && exact;

    if (policy.adaptive) {
      adaptive_ns = best;
    } else if (best_static.empty() || best < best_static_ns) {
      best_static_ns = best;
      best_static = policy.name;
    }
    if (!policy.adaptive &&
        (worst_static.empty() || best > worst_static_ns)) {
      worst_static_ns = best;
      worst_static = policy.name;
    }

    table.cell(policy.name)
        .cell(best, 0)
        .cell(exact ? "yes" : "NO")
        .end_row();
    reporter.record("policy")
        .field("policy", policy.name)
        .field("workers", workers)
        .field("stream_ns", best)
        .field("bit_exact", exact ? 1 : 0);
  }
  table.print();

  const double vs_best =
      adaptive_ns > 0.0 ? best_static_ns / adaptive_ns : 0.0;
  const double vs_worst =
      adaptive_ns > 0.0 ? worst_static_ns / adaptive_ns : 0.0;
  std::fprintf(stderr,
               "E23: best-static=%s worst-static=%s adaptive/best=%.2fx "
               "worst/adaptive=%.2fx (hits=%llu retunes=%llu keys=%zu)\n",
               best_static.c_str(), worst_static.c_str(),
               vs_best > 0.0 ? 1.0 / vs_best : 0.0, vs_worst,
               static_cast<unsigned long long>(controller.hits() -
                                               hits_before),
               static_cast<unsigned long long>(controller.retunes() -
                                               retunes_before),
               controller.key_count());
  reporter.record("vs_best")
      .field("policy", "adaptive")
      .field("baseline", best_static)
      .field("ratio", vs_best);
  reporter.record("vs_worst")
      .field("policy", "adaptive")
      .field("baseline", worst_static)
      .field("ratio", vs_worst);

  // Perf gates, E20-style: armed only where the claim is stated — full
  // size, a machine with real parallelism — so CI's tiny smoke can't flake.
  const bool gates_armed = !tiny && hw >= 8;
  bool gates_pass = true;
  if (gates_armed) {
    const bool within_best = adaptive_ns <= best_static_ns * 1.10;
    const bool beats_worst = vs_worst >= 1.3;
    std::fprintf(stderr, "E23 gate: adaptive <= 1.10x best-static: %s\n",
                 within_best ? "PASS" : "FAIL");
    std::fprintf(stderr, "E23 gate: adaptive >= 1.3x worst-static: %s\n",
                 beats_worst ? "PASS" : "FAIL");
    gates_pass = within_best && beats_worst;
  } else {
    std::fprintf(stderr,
                 "E23 gate: skipped (%s)\n",
                 tiny ? "--tiny" : "fewer than 8 hardware threads");
  }
  reporter.record("verdict")
      .field("correct", all_exact ? 1 : 0)
      .field("gates_armed", gates_armed ? 1 : 0)
      .field("gates_pass", gates_pass ? 1 : 0);

  if (!all_exact) {
    std::fprintf(stderr, "E23: FAIL (outputs not bit-exact)\n");
    return 1;
  }
  return gates_armed && !gates_pass ? 1 : 0;
}
