// E2 — Processor utilization under static scheduling when P does not divide
// the outer extent.
//
// The nested baseline block-partitions the OUTER loop (N1 = 10 rows): when
// P does not divide 10, some processors carry one extra full row. The
// coalesced loop block-partitions all N1*N2 = 100 iterations, so the load
// difference is at most one iteration. Shape claims: coalesced utilization
// >= nested for every P, equality exactly when P | N1 (up to the +-1
// iteration granularity), and the nested penalty is worst just above a
// divisor (P = 11, 6, ...).
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e2_utilization", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{10, 10}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 100);
  sim::CostModel costs;
  costs.fork = 0;  // isolate the load-balance effect
  costs.barrier = 0;
  costs.loop_overhead = 0;
  costs.recovery_division = 0;
  costs.recovery_increment = 0;

  support::Table table(
      "E2: static-schedule utilization, 10x10 nest, uniform body (100u)");
  table.header({"P", "nested-outer completion", "coalesced completion",
                "nested util %", "coalesced util %", "nested imbalance",
                "coalesced imbalance"});

  for (std::size_t p = 2; p <= 16; ++p) {
    const auto nested = sim::simulate_nested_static_outer(space, p, costs, work);
    const auto coalesced = sim::simulate_coalesced_static(space, p, costs, work);
    table.cell(static_cast<std::int64_t>(p))
        .cell(nested.completion)
        .cell(coalesced.completion)
        .cell(nested.utilization() * 100.0, 1)
        .cell(coalesced.utilization() * 100.0, 1)
        .cell(nested.imbalance(), 3)
        .cell(coalesced.imbalance(), 3)
        .end_row();
    reporter.record("uniform")
        .field("extents", "10x10")
        .field("P", p)
        .field("nested_completion", nested.completion)
        .field("coalesced_completion", coalesced.completion)
        .field("nested_utilization", nested.utilization())
        .field("coalesced_utilization", coalesced.utilization());
  }
  table.print();

  // The same effect at the row level with UNEVEN rows (triangular guard):
  // coalescing also smooths intra-row variation that row-granular static
  // scheduling cannot see.
  const sim::Workload tri = sim::Workload::triangular(10, 10, 100);
  support::Table table2(
      "E2b: static-schedule utilization, triangular body (row i costs i*100)");
  table2.header({"P", "nested util %", "coalesced util %"});
  for (std::size_t p : {3u, 4u, 6u, 8u}) {
    const auto nested = sim::simulate_nested_static_outer(space, p, costs, tri);
    const auto coalesced = sim::simulate_coalesced_static(space, p, costs, tri);
    table2.cell(static_cast<std::int64_t>(p))
        .cell(nested.utilization() * 100.0, 1)
        .cell(coalesced.utilization() * 100.0, 1)
        .end_row();
    reporter.record("triangular")
        .field("extents", "10x10")
        .field("P", p)
        .field("nested_utilization", nested.utilization())
        .field("coalesced_utilization", coalesced.utilization());
  }
  table2.print();
  return 0;
}
