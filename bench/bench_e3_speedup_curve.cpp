// E3 — Speedup vs processor count: coalesced vs nested execution under
// dispatch overhead sigma.
//
// A 64x64 DOALL nest, body 50 units per iteration. Two machine settings:
// cheap synchronization (sigma = 5, combining network) and expensive
// (sigma = 50, e.g. a lock). Shape claims: the coalesced curve dominates
// both nested curves everywhere, the gap grows with sigma and with P, and
// the nested fork-join curve flattens earliest (64 fork/joins on its
// critical path).
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e3_speedup_curve", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{64, 64}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 50);

  for (i64 sigma : {5, 50}) {
    sim::CostModel costs;
    costs.dispatch = sigma;

    support::Table table(support::format(
        "E3: speedup vs P, 64x64 nest, body=50u, dispatch sigma=%lld",
        static_cast<long long>(sigma)));
    table.header({"P", "coalesced GSS", "coalesced chunk(16)",
                  "nested multi-counter", "nested fork-join",
                  "coalesced/nested-fj"});

    for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const auto coal_gss = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kGuided, 1}, costs, work);
      const auto coal_chunk = sim::simulate_coalesced_dynamic(
          space, p, {sim::SimSchedule::kChunked, 16}, costs, work);
      const auto nested_mc =
          sim::simulate_nested_multicounter(space, p, costs, work);
      const auto nested_fj = sim::simulate_nested_forkjoin(
          space, p, {sim::SimSchedule::kChunked, 16}, costs, work);
      table.cell(static_cast<std::int64_t>(p))
          .cell(coal_gss.speedup(costs), 2)
          .cell(coal_chunk.speedup(costs), 2)
          .cell(nested_mc.speedup(costs), 2)
          .cell(nested_fj.speedup(costs), 2)
          .cell(coal_gss.speedup(costs) / nested_fj.speedup(costs), 2)
          .end_row();
      reporter.record("speedup")
          .field("extents", "64x64")
          .field("sigma", sigma)
          .field("P", p)
          .field("coalesced_gss", coal_gss.speedup(costs))
          .field("coalesced_chunk16", coal_chunk.speedup(costs))
          .field("nested_multicounter", nested_mc.speedup(costs))
          .field("nested_forkjoin", nested_fj.speedup(costs));
    }
    table.print();
  }
  return 0;
}
