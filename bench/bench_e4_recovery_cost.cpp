// E4 — Index-recovery overhead vs the dispatch saving: where is the
// crossover?
//
// Coalescing trades per-level dispatch traffic for div/mod index recovery.
// This harness sweeps the cost h of one recovery division (0..40) for two
// dispatch costs sigma and reports completion times of the coalesced loop
// against the nested multi-counter baseline, locating the crossover h*
// beyond which coalescing stops paying for UNIT chunks — and shows that
// chunked execution (strength-reduced odometer inside the chunk) pushes the
// crossover far out because the full decode is paid once per chunk, not per
// iteration.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e4_recovery_cost", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{32, 32}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 20);
  const std::size_t procs = 8;

  for (i64 sigma : {2, 20}) {
    support::Table table(support::format(
        "E4: completion vs recovery-division cost h (32x32, body=20u, "
        "P=%zu, sigma=%lld)",
        procs, static_cast<long long>(sigma)));
    table.header({"h", "coalesced self(1)", "coalesced chunk(32)",
                  "nested multi-counter", "self wins?", "chunk wins?"});

    i64 crossover_self = -1;
    for (i64 h = 0; h <= 40; h += 5) {
      sim::CostModel costs;
      costs.dispatch = sigma;
      costs.recovery_division = h;
      costs.recovery_increment = h > 0 ? 1 : 0;

      const auto self = sim::simulate_coalesced_dynamic(
          space, procs, {sim::SimSchedule::kSelf, 1}, costs, work);
      const auto chunk = sim::simulate_coalesced_dynamic(
          space, procs, {sim::SimSchedule::kChunked, 32}, costs, work);
      const auto nested =
          sim::simulate_nested_multicounter(space, procs, costs, work);

      const bool self_wins = self.completion <= nested.completion;
      const bool chunk_wins = chunk.completion <= nested.completion;
      if (!self_wins && crossover_self < 0) crossover_self = h;

      table.cell(h)
          .cell(self.completion)
          .cell(chunk.completion)
          .cell(nested.completion)
          .cell(self_wins ? "yes" : "no")
          .cell(chunk_wins ? "yes" : "no")
          .end_row();
      reporter.record("crossover")
          .field("extents", "32x32")
          .field("P", procs)
          .field("sigma", sigma)
          .field("h", h)
          .field("coalesced_self", self.completion)
          .field("coalesced_chunk32", chunk.completion)
          .field("nested_multicounter", nested.completion);
    }
    table.print();
    if (crossover_self >= 0) {
      std::printf(
          "unit self-scheduling crossover: coalescing stops paying at "
          "h ~ %lld (sigma=%lld)\n\n",
          static_cast<long long>(crossover_self),
          static_cast<long long>(sigma));
    } else {
      std::printf(
          "unit self-scheduling: coalescing wins across the whole sweep "
          "(sigma=%lld)\n\n",
          static_cast<long long>(sigma));
    }
  }
  return 0;
}
