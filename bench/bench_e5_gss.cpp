// E5 — Scheduling disciplines on the coalesced loop: unit self-scheduling,
// fixed chunking, guided self-scheduling (GSS), trapezoid self-scheduling.
//
// 1000 coalesced iterations under four body-time profiles. Shape claims:
// GSS dispatches O(P log N) chunks (vs N for unit) while matching its
// balance within a few percent; fixed chunks are cheap but lose badly on
// non-uniform profiles; TSS sits between.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e5_gss", argc, argv);

  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{1000}).value();

  struct Profile {
    const char* name;
    sim::Workload work;
  };
  const Profile profiles[] = {
      {"constant(50)", sim::Workload::constant(1000, 50)},
      {"uniform(10..90)",
       sim::Workload::from_model(support::WorkModel::kUniformRange, 1000, 10,
                                 90, 11)},
      {"increasing(2..200)",
       sim::Workload::from_model(support::WorkModel::kIncreasing, 1000, 2, 200,
                                 12)},
      {"bimodal(20|400)",
       sim::Workload::from_model(support::WorkModel::kBimodal, 1000, 20, 400,
                                 13)},
  };

  const std::pair<const char*, sim::SimScheduleParams> schedules[] = {
      {"self(1)", {sim::SimSchedule::kSelf, 1}},
      {"chunk(10)", {sim::SimSchedule::kChunked, 10}},
      {"chunk(125)", {sim::SimSchedule::kChunked, 125}},
      {"gss", {sim::SimSchedule::kGuided, 1}},
      {"tss", {sim::SimSchedule::kTrapezoid, 1}},
  };

  sim::CostModel costs;
  costs.dispatch = 10;

  for (std::size_t procs : {4u, 16u}) {
    support::Table table(support::format(
        "E5: schedules on a coalesced 1000-iteration loop, P=%zu, sigma=10",
        procs));
    table.header({"profile", "schedule", "dispatches", "completion",
                  "vs best", "utilization %"});
    for (const auto& profile : profiles) {
      i64 best = INT64_MAX;
      std::vector<sim::SimResult> results;
      for (const auto& [name, params] : schedules) {
        results.push_back(sim::simulate_coalesced_dynamic(
            space, procs, params, costs, profile.work));
        best = std::min(best, results.back().completion);
      }
      for (std::size_t s = 0; s < std::size(schedules); ++s) {
        const auto& r = results[s];
        table.cell(profile.name)
            .cell(schedules[s].first)
            .cell(r.dispatch_ops)
            .cell(r.completion)
            .cell(static_cast<double>(r.completion) /
                      static_cast<double>(best),
                  3)
            .cell(r.utilization() * 100.0, 1)
            .end_row();
        reporter.record("schedule")
            .field("extents", "1000")
            .field("P", procs)
            .field("profile", profile.name)
            .field("schedule", schedules[s].first)
            .field("dispatch_ops", r.dispatch_ops)
            .field("completion", r.completion)
            .field("utilization", r.utilization());
      }
    }
    table.print();
  }
  return 0;
}
