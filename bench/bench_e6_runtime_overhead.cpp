// E6 — Real-machine per-iteration overhead of the thread runtime
// (google-benchmark).
//
// Measures, on the host, what the simulator models: the cost of dispatching
// and index-recovering iterations of a coalesced loop under each schedule,
// against the nested fork-join execution shape. Bodies are tiny on purpose —
// this measures the *runtime*, not the workload. Absolute numbers are
// host-dependent; the reproduction claims are about ordering:
// chunked/guided < unit self-scheduling << nested fork-join per instance.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;

constexpr i64 kN1 = 64;
constexpr i64 kN2 = 64;

runtime::ThreadPool& pool() {
  static runtime::ThreadPool instance(4);
  return instance;
}

const index::CoalescedSpace& space() {
  static auto instance =
      index::CoalescedSpace::create(std::vector<i64>{kN1, kN2}).value();
  return instance;
}

void consume(std::span<const i64> idx) {
  benchmark::DoNotOptimize(idx[0] + idx[1]);
}

void BM_Collapsed(benchmark::State& state, runtime::ScheduleParams params) {
  std::uint64_t dispatches = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const runtime::ForStats stats =
        runtime::run(pool(), space(), consume, {.schedule = params});
    dispatches += stats.dispatch_ops;
    ++rounds;
  }
  state.SetItemsProcessed(state.iterations() * kN1 * kN2);
  state.counters["dispatch_ops_per_loop"] =
      rounds == 0 ? 0.0
                  : static_cast<double>(dispatches) /
                        static_cast<double>(rounds);
}

void BM_NestedOuter(benchmark::State& state) {
  const std::vector<i64> extents{kN1, kN2};
  for (auto _ : state) {
    runtime::run(pool(), extents, consume,
                 {.schedule = {runtime::Schedule::kSelf, 1},
                  .mode = runtime::NestMode::kNestedOuter});
  }
  state.SetItemsProcessed(state.iterations() * kN1 * kN2);
}

void BM_NestedForkJoin(benchmark::State& state) {
  const std::vector<i64> extents{kN1, kN2};
  for (auto _ : state) {
    runtime::run(pool(), extents, consume,
                 {.schedule = {runtime::Schedule::kChunked, 16},
                  .mode = runtime::NestMode::kNestedForkJoin});
  }
  state.SetItemsProcessed(state.iterations() * kN1 * kN2);
}

void BM_SerialSweep(benchmark::State& state) {
  // The no-runtime baseline: a plain double loop.
  for (auto _ : state) {
    for (i64 i = 1; i <= kN1; ++i) {
      for (i64 j = 1; j <= kN2; ++j) {
        benchmark::DoNotOptimize(i + j);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kN1 * kN2);
}

BENCHMARK_CAPTURE(BM_Collapsed, self1,
                  runtime::ScheduleParams{runtime::Schedule::kSelf, 1});
BENCHMARK_CAPTURE(BM_Collapsed, chunk16,
                  runtime::ScheduleParams{runtime::Schedule::kChunked, 16});
BENCHMARK_CAPTURE(BM_Collapsed, chunk256,
                  runtime::ScheduleParams{runtime::Schedule::kChunked, 256});
BENCHMARK_CAPTURE(BM_Collapsed, guided,
                  runtime::ScheduleParams{runtime::Schedule::kGuided, 1});
BENCHMARK_CAPTURE(BM_Collapsed, static_block,
                  runtime::ScheduleParams{runtime::Schedule::kStaticBlock, 1});
BENCHMARK(BM_NestedOuter);
BENCHMARK(BM_NestedForkJoin);
BENCHMARK(BM_SerialSweep);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> ptrs;
  const auto storage = coalesce::bench::translate_json_flag(argc, argv, ptrs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
