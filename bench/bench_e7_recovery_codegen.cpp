// E7 — Index-recovery cost: the paper's closed form vs mixed-radix digit
// extraction vs the strength-reduced (division-free) odometer.
//
// Two views:
//  * static: operation counts of the generated recovery expressions per
//    nest depth (the 1987 paper argues in instruction counts — we emit the
//    actual expressions and count);
//  * dynamic: measured ns per decoded iteration sweeping a space with each
//    decoder (google-benchmark).
//
// Shape claims: divisions grow ~2 per level for both closed forms (minus
// the folded innermost ceil), while the odometer does ZERO divisions and
// its measured per-iteration cost is flat in depth.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"
#include "core/coalesce.hpp"

namespace {

using namespace coalesce;
using support::i64;

std::vector<i64> shape_for_depth(int depth) {
  switch (depth) {
    case 2: return {64, 64};
    case 3: return {16, 16, 16};
    case 4: return {8, 8, 8, 8};
    default: return {4096};
  }
}

void BM_DecodePaper(benchmark::State& state) {
  const auto space =
      index::CoalescedSpace::create(shape_for_depth(static_cast<int>(state.range(0))))
          .value();
  std::vector<i64> out(space.depth());
  i64 j = 1;
  for (auto _ : state) {
    space.decode_paper(j, out);
    benchmark::DoNotOptimize(out.data());
    j = j == space.total() ? 1 : j + 1;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DecodeMixedRadix(benchmark::State& state) {
  const auto space =
      index::CoalescedSpace::create(shape_for_depth(static_cast<int>(state.range(0))))
          .value();
  std::vector<i64> out(space.depth());
  i64 j = 1;
  for (auto _ : state) {
    space.decode_mixed_radix(j, out);
    benchmark::DoNotOptimize(out.data());
    j = j == space.total() ? 1 : j + 1;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DecodeIncremental(benchmark::State& state) {
  const auto space =
      index::CoalescedSpace::create(shape_for_depth(static_cast<int>(state.range(0))))
          .value();
  index::IncrementalDecoder decoder(space, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.original().data());
    if (decoder.position() == space.total()) {
      decoder.seek(1);
    } else {
      decoder.advance();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_DecodePaper)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_DecodeMixedRadix)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_DecodeIncremental)->Arg(2)->Arg(3)->Arg(4);

void print_static_table() {
  support::Table table(
      "E7 (static): generated recovery expressions, ops per coalesced "
      "iteration");
  table.header({"depth", "style", "divisions", "total ops",
                "emitted (outermost level)"});
  for (int depth : {2, 3, 4}) {
    const auto space =
        index::CoalescedSpace::create(shape_for_depth(depth)).value();
    ir::SymbolTable symbols;
    const ir::VarId j = symbols.declare("j", ir::SymbolKind::kInduction);
    for (auto style : {transform::RecoveryStyle::kPaperClosedForm,
                       transform::RecoveryStyle::kMixedRadix}) {
      std::size_t divisions = 0;
      codegen::OpCounts ops;
      std::string outermost;
      for (std::size_t level = 0; level < space.depth(); ++level) {
        const auto expr = transform::recovery_expression(space, level, j, style);
        divisions += ir::division_count(expr);
        ops += codegen::count_ops(expr);
        if (level == 0) outermost = codegen::emit_expr_c(expr, symbols);
      }
      table.cell(static_cast<std::int64_t>(depth))
          .cell(style == transform::RecoveryStyle::kPaperClosedForm
                    ? "paper"
                    : "mixed-radix")
          .cell(static_cast<std::uint64_t>(divisions))
          .cell(ops.total())
          .cell(outermost)
          .end_row();
    }
    // The odometer has no expression form: constant-work advance, 0 divs.
    table.cell(static_cast<std::int64_t>(depth))
        .cell("incremental")
        .cell(std::uint64_t{0})
        .cell(std::uint64_t{2})  // compare + add per advance (amortized)
        .cell("odometer advance (see index/incremental.hpp)")
        .end_row();
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  print_static_table();
  std::vector<char*> ptrs;
  const auto storage = coalesce::bench::translate_json_flag(argc, argv, ptrs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
