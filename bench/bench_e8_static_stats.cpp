// E8 — Transformation statics across the workload suite: what coalescing
// does to program shape, counted exactly on the IR.
//
// For each workload: loops and fork/join points before/after, the recovery
// divisions introduced, and verification that the transformed nest computes
// the same arrays. fork_join_points is the paper's headline count — the
// number of parallel-loop initiations a nested execution performs, which
// coalescing collapses to one per band.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  bench::Reporter reporter("e8_static_stats", argc, argv);

  struct Case {
    const char* name;
    ir::LoopNest nest;
  };
  Case cases[] = {
      {"witness 8x8", ir::make_rectangular_witness({8, 8})},
      {"witness 8x8x8", ir::make_rectangular_witness({8, 8, 8})},
      {"matmul 16^3", ir::make_matmul(16, 16, 16)},
      {"gauss-backsolve 16x8", ir::make_gauss_jordan_backsolve(16, 8)},
      {"jacobi 16", ir::make_jacobi_step(16)},
      {"pi 8x64", ir::make_pi_strips(8, 64)},
  };

  support::Table table("E8: static shape, original vs coalesced");
  table.header({"workload", "loops", "->", "fork/joins", "->",
                "recovery divs/iter", "bands", "verified"});

  for (auto& c : cases) {
    analysis::analyze_and_mark(c.nest);
    const transform::NestStats before = transform::compute_stats(c.nest);
    const auto result = transform::coalesce_all(c.nest);
    const transform::NestStats after = transform::compute_stats(result.nest);

    const bool verified = core::equivalent_by_execution(c.nest, result.nest);
    const double divs_per_iter =
        after.loop_iterations == 0
            ? 0.0
            : static_cast<double>(after.division_ops) /
                  static_cast<double>(before.assignment_instances);

    table.cell(c.name)
        .cell(static_cast<std::uint64_t>(before.loops))
        .cell(static_cast<std::uint64_t>(after.loops))
        .cell(before.fork_join_points)
        .cell(after.fork_join_points)
        .cell(divs_per_iter, 2)
        .cell(static_cast<std::uint64_t>(result.bands_coalesced))
        .cell(verified ? "yes" : "NO")
        .end_row();
    reporter.record("shape")
        .field("workload", c.name)
        .field("loops_before", before.loops)
        .field("loops_after", after.loops)
        .field("fork_joins_before", before.fork_join_points)
        .field("fork_joins_after", after.fork_join_points)
        .field("recovery_divs_per_iter", divs_per_iter)
        .field("bands", result.bands_coalesced)
        .field("verified", verified ? "yes" : "no");
  }
  table.print();

  // Pi strips: the parallel band is only 1 deep (outer DOALL over strips),
  // so coalesce_all correctly fuses nothing — included above as the negative
  // control.
  return 0;
}
