// E9 — Triangular (non-rectangular) nests: guarded coalescing vs row-level
// execution.
//
// A lower-triangular nest has rows of linearly growing weight; scheduling
// whole rows (the nested baseline) cannot balance them, while the guarded
// coalesced loop schedules individual box points. The guard costs one
// comparison on inactive points; this harness prices that in explicitly.
//
// Shape claims: coalesced dynamic utilization beats nested-static-outer by
// a widening margin as P grows; the box overhead (inactive points) never
// costs more than its point count times the guard price; the static IR view
// shows active/box == (n+1)/2n -> 1/2.
#include "bench_harness.hpp"
#include "core/coalesce.hpp"

int main(int argc, char** argv) {
  using namespace coalesce;
  using support::i64;
  bench::Reporter reporter("e9_triangular", argc, argv);

  const i64 n = 64;
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{n, n}).value();
  // Active point: full body (100u); inactive: guard evaluation only (2u).
  std::vector<i64> times;
  times.reserve(static_cast<std::size_t>(n * n));
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= n; ++j) times.push_back(j <= i ? 100 : 2);
  }
  const sim::Workload work{std::vector<i64>(times)};

  sim::CostModel costs;
  costs.dispatch = 10;

  support::Table table(support::format(
      "E9: triangular %lldx%lld nest (body=100u active, guard=2u inactive)",
      static_cast<long long>(n), static_cast<long long>(n)));
  table.header({"P", "nested-static rows", "nested self rows",
                "coalesced chunk(32)", "coalesced GSS", "static/GSS"});

  for (std::size_t p : {2u, 4u, 8u, 16u, 32u}) {
    // Row-level baselines: iterations are whole rows with triangular cost.
    std::vector<i64> row_cost;
    for (i64 i = 1; i <= n; ++i) row_cost.push_back(i * 100 + (n - i) * 0);
    const auto rows =
        index::CoalescedSpace::create(std::vector<i64>{n}).value();
    const sim::Workload row_work{std::vector<i64>(row_cost)};
    const auto nested_static =
        sim::simulate_coalesced_static(rows, p, costs, row_work);
    const auto nested_self = sim::simulate_coalesced_dynamic(
        rows, p, {sim::SimSchedule::kSelf, 1}, costs, row_work);

    const auto chunk = sim::simulate_coalesced_dynamic(
        space, p, {sim::SimSchedule::kChunked, 32}, costs, work);
    const auto gss = sim::simulate_coalesced_dynamic(
        space, p, {sim::SimSchedule::kGuided, 1}, costs, work);

    table.cell(static_cast<std::int64_t>(p))
        .cell(nested_static.completion)
        .cell(nested_self.completion)
        .cell(chunk.completion)
        .cell(gss.completion)
        .cell(static_cast<double>(nested_static.completion) /
                  static_cast<double>(gss.completion),
              2)
        .end_row();
    reporter.record("triangular")
        .field("extents", "64x64")
        .field("P", p)
        .field("nested_static_rows", nested_static.completion)
        .field("nested_self_rows", nested_self.completion)
        .field("coalesced_chunk32", chunk.completion)
        .field("coalesced_gss", gss.completion);
  }
  table.print();

  // The transformation itself, on a small instance, with its exact
  // active/box accounting and verified equivalence.
  const ir::LoopNest nest = ir::make_triangular_witness(8);
  const auto result = transform::coalesce_guarded(nest);
  if (result.ok()) {
    const auto& r = result.value();
    std::printf(
        "\nIR view (8x8 triangle): box=%lld active=%lld guards=%zu "
        "verified=%s\n",
        static_cast<long long>(r.box_points),
        static_cast<long long>(r.active_points), r.guards_emitted,
        core::equivalent_by_execution(nest, r.nest) ? "yes" : "NO");
  }
  return 0;
}
