// Shared bench harness: machine-readable results for cross-PR tracking.
//
// Every bench_e* executable constructs a Reporter from (argc, argv) and
// mirrors each printed table row into a record. When invoked with
// --json=<file>, the Reporter writes all records as one JSON document on
// destruction; without the flag it is inert and the bench prints its usual
// tables only. Google-benchmark-based benches instead pass --json through
// translate_json_flag(), mapping it onto --benchmark_out.
//
// Document shape:
//   {"bench": "<name>",
//    "records": [{"kind": "<row kind>", "<key>": <value>, ...}, ...]}
// Values are int64, double, or string; keys appear in insertion order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "support/parse_schedule.hpp"
#include "trace/export.hpp"  // json_escape

namespace coalesce::bench {

/// Parses a --schedule=<spec> flag out of argv through the one shared
/// grammar (support::parse_schedule; "guided", "chunked:64", "auto", ...).
/// Returns `fallback` when the flag is absent; exits 2 with the parser's
/// message on a bad spelling so every bench rejects typos identically.
inline runtime::ScheduleParams schedule_flag(
    int argc, char** argv, runtime::ScheduleParams fallback) {
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg.rfind("--schedule=", 0) == 0) {
      auto parsed = support::parse_schedule(arg.substr(11));
      if (!parsed.ok()) {
        std::fprintf(stderr, "bench_harness: %s\n",
                     parsed.error().to_string().c_str());
        std::exit(2);
      }
      fallback = parsed.value();
    }
  }
  return fallback;
}

class Reporter {
 public:
  using Value = std::variant<std::int64_t, double, std::string>;

  /// A record under construction. field() calls chain; the record is owned
  /// by the Reporter and finalized when the Reporter is destroyed.
  class Record {
   public:
    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    Record& field(std::string_view key, T value) {
      fields_.emplace_back(std::string(key),
                           Value(static_cast<std::int64_t>(value)));
      return *this;
    }
    Record& field(std::string_view key, double value) {
      fields_.emplace_back(std::string(key), Value(value));
      return *this;
    }
    Record& field(std::string_view key, std::string_view value) {
      fields_.emplace_back(std::string(key), Value(std::string(value)));
      return *this;
    }
    Record& field(std::string_view key, const char* value) {
      return field(key, std::string_view(value));
    }

   private:
    friend class Reporter;
    std::vector<std::pair<std::string, Value>> fields_;
  };

  /// Parses --json=<file> out of argv; every other argument is ignored so
  /// benches stay forgiving about extra flags.
  Reporter(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)) {
    for (int a = 1; a < argc; ++a) {
      const std::string_view arg = argv[a];
      if (arg.rfind("--json=", 0) == 0) {
        path_ = std::string(arg.substr(7));
      }
    }
  }

  ~Reporter() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench_harness: cannot write %s\n", path_.c_str());
      return;
    }
    out << "{\"bench\":\"" << trace::json_escape(name_)
        << "\",\"records\":[";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      if (r > 0) out << ",";
      out << "{";
      const Record& record = records_[r];
      for (std::size_t f = 0; f < record.fields_.size(); ++f) {
        if (f > 0) out << ",";
        const auto& [key, value] = record.fields_[f];
        out << "\"" << trace::json_escape(key) << "\":";
        if (const auto* i = std::get_if<std::int64_t>(&value)) {
          out << *i;
        } else if (const auto* d = std::get_if<double>(&value)) {
          char buf[40];
          std::snprintf(buf, sizeof buf, "%.17g", *d);
          out << buf;
        } else {
          out << "\"" << trace::json_escape(std::get<std::string>(value))
              << "\"";
        }
      }
      out << "}";
    }
    out << "]}\n";
    std::fprintf(stderr, "bench_harness: wrote %zu records to %s\n",
                 records_.size(), path_.c_str());
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Starts a new record; `kind` distinguishes row families within a bench.
  Record& record(std::string_view kind) {
    records_.emplace_back();
    records_.back().field("kind", kind);
    return records_.back();
  }

  [[nodiscard]] bool json_requested() const noexcept {
    return !path_.empty();
  }

  /// Renders a shape like {10, 10, 10} as "10x10x10" for an extents field.
  static std::string shape_string(const std::vector<std::int64_t>& extents) {
    std::string out;
    for (std::size_t k = 0; k < extents.size(); ++k) {
      if (k > 0) out += "x";
      out += std::to_string(extents[k]);
    }
    return out;
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<Record> records_;
};

/// For google-benchmark benches: rewrites --json=<file> (if present) into
/// --benchmark_out=<file> --benchmark_out_format=json in a new argv, so
/// every bench understands the same flag. Returns the storage for the
/// rewritten argv; pass `argc`/`argv` by reference.
inline std::vector<std::string> translate_json_flag(int& argc, char**& argv,
                                                    std::vector<char*>& ptrs) {
  std::vector<std::string> args;
  for (int a = 0; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (a > 0 && arg.rfind("--json=", 0) == 0) {
      args.emplace_back(std::string("--benchmark_out=") +
                        std::string(arg.substr(7)));
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.emplace_back(arg);
    }
  }
  ptrs.clear();
  for (auto& s : args) ptrs.push_back(s.data());
  argc = static_cast<int>(ptrs.size());
  argv = ptrs.data();
  return args;
}

}  // namespace coalesce::bench
