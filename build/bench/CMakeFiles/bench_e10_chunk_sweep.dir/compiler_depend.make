# Empty compiler generated dependencies file for bench_e10_chunk_sweep.
# This may be replaced when dependencies are built.
