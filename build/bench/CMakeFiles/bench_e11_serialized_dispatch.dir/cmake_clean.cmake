file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_serialized_dispatch.dir/bench_e11_serialized_dispatch.cpp.o"
  "CMakeFiles/bench_e11_serialized_dispatch.dir/bench_e11_serialized_dispatch.cpp.o.d"
  "bench_e11_serialized_dispatch"
  "bench_e11_serialized_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_serialized_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
