# Empty dependencies file for bench_e11_serialized_dispatch.
# This may be replaced when dependencies are built.
