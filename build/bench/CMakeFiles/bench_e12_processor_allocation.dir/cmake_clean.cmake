file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_processor_allocation.dir/bench_e12_processor_allocation.cpp.o"
  "CMakeFiles/bench_e12_processor_allocation.dir/bench_e12_processor_allocation.cpp.o.d"
  "bench_e12_processor_allocation"
  "bench_e12_processor_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_processor_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
