# Empty dependencies file for bench_e12_processor_allocation.
# This may be replaced when dependencies are built.
