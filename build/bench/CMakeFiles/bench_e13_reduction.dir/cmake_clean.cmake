file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_reduction.dir/bench_e13_reduction.cpp.o"
  "CMakeFiles/bench_e13_reduction.dir/bench_e13_reduction.cpp.o.d"
  "bench_e13_reduction"
  "bench_e13_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
