# Empty dependencies file for bench_e13_reduction.
# This may be replaced when dependencies are built.
