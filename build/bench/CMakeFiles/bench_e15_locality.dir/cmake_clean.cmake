file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_locality.dir/bench_e15_locality.cpp.o"
  "CMakeFiles/bench_e15_locality.dir/bench_e15_locality.cpp.o.d"
  "bench_e15_locality"
  "bench_e15_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
