
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e1_dispatch_ops.cpp" "bench/CMakeFiles/bench_e1_dispatch_ops.dir/bench_e1_dispatch_ops.cpp.o" "gcc" "bench/CMakeFiles/bench_e1_dispatch_ops.dir/bench_e1_dispatch_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coalesce_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/coalesce_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/coalesce_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/coalesce_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/coalesce_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/coalesce_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/coalesce_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coalesce_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/coalesce_index.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coalesce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
