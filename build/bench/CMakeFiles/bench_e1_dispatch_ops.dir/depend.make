# Empty dependencies file for bench_e1_dispatch_ops.
# This may be replaced when dependencies are built.
