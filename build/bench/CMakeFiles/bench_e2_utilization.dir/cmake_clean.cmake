file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_utilization.dir/bench_e2_utilization.cpp.o"
  "CMakeFiles/bench_e2_utilization.dir/bench_e2_utilization.cpp.o.d"
  "bench_e2_utilization"
  "bench_e2_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
