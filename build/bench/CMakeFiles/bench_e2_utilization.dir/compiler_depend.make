# Empty compiler generated dependencies file for bench_e2_utilization.
# This may be replaced when dependencies are built.
