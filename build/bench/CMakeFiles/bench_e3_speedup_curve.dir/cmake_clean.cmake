file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_speedup_curve.dir/bench_e3_speedup_curve.cpp.o"
  "CMakeFiles/bench_e3_speedup_curve.dir/bench_e3_speedup_curve.cpp.o.d"
  "bench_e3_speedup_curve"
  "bench_e3_speedup_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_speedup_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
