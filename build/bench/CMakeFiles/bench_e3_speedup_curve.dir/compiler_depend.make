# Empty compiler generated dependencies file for bench_e3_speedup_curve.
# This may be replaced when dependencies are built.
