# Empty dependencies file for bench_e4_recovery_cost.
# This may be replaced when dependencies are built.
