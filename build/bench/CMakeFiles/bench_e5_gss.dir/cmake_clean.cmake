file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_gss.dir/bench_e5_gss.cpp.o"
  "CMakeFiles/bench_e5_gss.dir/bench_e5_gss.cpp.o.d"
  "bench_e5_gss"
  "bench_e5_gss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_gss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
