# Empty dependencies file for bench_e5_gss.
# This may be replaced when dependencies are built.
