# Empty dependencies file for bench_e6_runtime_overhead.
# This may be replaced when dependencies are built.
