file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_recovery_codegen.dir/bench_e7_recovery_codegen.cpp.o"
  "CMakeFiles/bench_e7_recovery_codegen.dir/bench_e7_recovery_codegen.cpp.o.d"
  "bench_e7_recovery_codegen"
  "bench_e7_recovery_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_recovery_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
