# Empty compiler generated dependencies file for bench_e7_recovery_codegen.
# This may be replaced when dependencies are built.
