file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_static_stats.dir/bench_e8_static_stats.cpp.o"
  "CMakeFiles/bench_e8_static_stats.dir/bench_e8_static_stats.cpp.o.d"
  "bench_e8_static_stats"
  "bench_e8_static_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_static_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
