# Empty compiler generated dependencies file for bench_e8_static_stats.
# This may be replaced when dependencies are built.
