file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_triangular.dir/bench_e9_triangular.cpp.o"
  "CMakeFiles/bench_e9_triangular.dir/bench_e9_triangular.cpp.o.d"
  "bench_e9_triangular"
  "bench_e9_triangular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_triangular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
