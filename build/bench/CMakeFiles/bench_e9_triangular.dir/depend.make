# Empty dependencies file for bench_e9_triangular.
# This may be replaced when dependencies are built.
