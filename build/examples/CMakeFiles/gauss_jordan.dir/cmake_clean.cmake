file(REMOVE_RECURSE
  "CMakeFiles/gauss_jordan.dir/gauss_jordan.cpp.o"
  "CMakeFiles/gauss_jordan.dir/gauss_jordan.cpp.o.d"
  "gauss_jordan"
  "gauss_jordan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_jordan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
