# Empty compiler generated dependencies file for gauss_jordan.
# This may be replaced when dependencies are built.
