file(REMOVE_RECURSE
  "CMakeFiles/pi_integration.dir/pi_integration.cpp.o"
  "CMakeFiles/pi_integration.dir/pi_integration.cpp.o.d"
  "pi_integration"
  "pi_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
