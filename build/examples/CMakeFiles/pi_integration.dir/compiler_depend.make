# Empty compiler generated dependencies file for pi_integration.
# This may be replaced when dependencies are built.
