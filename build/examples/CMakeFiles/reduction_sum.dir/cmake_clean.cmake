file(REMOVE_RECURSE
  "CMakeFiles/reduction_sum.dir/reduction_sum.cpp.o"
  "CMakeFiles/reduction_sum.dir/reduction_sum.cpp.o.d"
  "reduction_sum"
  "reduction_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
