# Empty dependencies file for reduction_sum.
# This may be replaced when dependencies are built.
