file(REMOVE_RECURSE
  "CMakeFiles/schedule_gantt.dir/schedule_gantt.cpp.o"
  "CMakeFiles/schedule_gantt.dir/schedule_gantt.cpp.o.d"
  "schedule_gantt"
  "schedule_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
