# Empty compiler generated dependencies file for stencil.
# This may be replaced when dependencies are built.
