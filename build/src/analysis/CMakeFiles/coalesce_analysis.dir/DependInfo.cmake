
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependence.cpp" "src/analysis/CMakeFiles/coalesce_analysis.dir/dependence.cpp.o" "gcc" "src/analysis/CMakeFiles/coalesce_analysis.dir/dependence.cpp.o.d"
  "/root/repo/src/analysis/doall.cpp" "src/analysis/CMakeFiles/coalesce_analysis.dir/doall.cpp.o" "gcc" "src/analysis/CMakeFiles/coalesce_analysis.dir/doall.cpp.o.d"
  "/root/repo/src/analysis/reduction.cpp" "src/analysis/CMakeFiles/coalesce_analysis.dir/reduction.cpp.o" "gcc" "src/analysis/CMakeFiles/coalesce_analysis.dir/reduction.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/coalesce_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/coalesce_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/subscript.cpp" "src/analysis/CMakeFiles/coalesce_analysis.dir/subscript.cpp.o" "gcc" "src/analysis/CMakeFiles/coalesce_analysis.dir/subscript.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/coalesce_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coalesce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
