file(REMOVE_RECURSE
  "CMakeFiles/coalesce_analysis.dir/dependence.cpp.o"
  "CMakeFiles/coalesce_analysis.dir/dependence.cpp.o.d"
  "CMakeFiles/coalesce_analysis.dir/doall.cpp.o"
  "CMakeFiles/coalesce_analysis.dir/doall.cpp.o.d"
  "CMakeFiles/coalesce_analysis.dir/reduction.cpp.o"
  "CMakeFiles/coalesce_analysis.dir/reduction.cpp.o.d"
  "CMakeFiles/coalesce_analysis.dir/report.cpp.o"
  "CMakeFiles/coalesce_analysis.dir/report.cpp.o.d"
  "CMakeFiles/coalesce_analysis.dir/subscript.cpp.o"
  "CMakeFiles/coalesce_analysis.dir/subscript.cpp.o.d"
  "libcoalesce_analysis.a"
  "libcoalesce_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
