file(REMOVE_RECURSE
  "libcoalesce_analysis.a"
)
