# Empty compiler generated dependencies file for coalesce_analysis.
# This may be replaced when dependencies are built.
