file(REMOVE_RECURSE
  "CMakeFiles/coalesce_codegen.dir/c_emitter.cpp.o"
  "CMakeFiles/coalesce_codegen.dir/c_emitter.cpp.o.d"
  "CMakeFiles/coalesce_codegen.dir/cost_model.cpp.o"
  "CMakeFiles/coalesce_codegen.dir/cost_model.cpp.o.d"
  "libcoalesce_codegen.a"
  "libcoalesce_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
