file(REMOVE_RECURSE
  "libcoalesce_codegen.a"
)
