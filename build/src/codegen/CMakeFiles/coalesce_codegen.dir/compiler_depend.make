# Empty compiler generated dependencies file for coalesce_codegen.
# This may be replaced when dependencies are built.
