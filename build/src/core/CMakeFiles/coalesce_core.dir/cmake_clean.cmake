file(REMOVE_RECURSE
  "CMakeFiles/coalesce_core.dir/api.cpp.o"
  "CMakeFiles/coalesce_core.dir/api.cpp.o.d"
  "libcoalesce_core.a"
  "libcoalesce_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
