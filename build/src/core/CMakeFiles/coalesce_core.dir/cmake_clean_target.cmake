file(REMOVE_RECURSE
  "libcoalesce_core.a"
)
