# Empty dependencies file for coalesce_core.
# This may be replaced when dependencies are built.
