file(REMOVE_RECURSE
  "CMakeFiles/coalesce_frontend.dir/lexer.cpp.o"
  "CMakeFiles/coalesce_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/coalesce_frontend.dir/parser.cpp.o"
  "CMakeFiles/coalesce_frontend.dir/parser.cpp.o.d"
  "libcoalesce_frontend.a"
  "libcoalesce_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
