file(REMOVE_RECURSE
  "libcoalesce_frontend.a"
)
