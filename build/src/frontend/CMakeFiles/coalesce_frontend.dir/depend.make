# Empty dependencies file for coalesce_frontend.
# This may be replaced when dependencies are built.
