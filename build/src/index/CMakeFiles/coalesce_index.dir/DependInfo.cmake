
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/chunk.cpp" "src/index/CMakeFiles/coalesce_index.dir/chunk.cpp.o" "gcc" "src/index/CMakeFiles/coalesce_index.dir/chunk.cpp.o.d"
  "/root/repo/src/index/coalesced_space.cpp" "src/index/CMakeFiles/coalesce_index.dir/coalesced_space.cpp.o" "gcc" "src/index/CMakeFiles/coalesce_index.dir/coalesced_space.cpp.o.d"
  "/root/repo/src/index/grid.cpp" "src/index/CMakeFiles/coalesce_index.dir/grid.cpp.o" "gcc" "src/index/CMakeFiles/coalesce_index.dir/grid.cpp.o.d"
  "/root/repo/src/index/incremental.cpp" "src/index/CMakeFiles/coalesce_index.dir/incremental.cpp.o" "gcc" "src/index/CMakeFiles/coalesce_index.dir/incremental.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/coalesce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
