file(REMOVE_RECURSE
  "CMakeFiles/coalesce_index.dir/chunk.cpp.o"
  "CMakeFiles/coalesce_index.dir/chunk.cpp.o.d"
  "CMakeFiles/coalesce_index.dir/coalesced_space.cpp.o"
  "CMakeFiles/coalesce_index.dir/coalesced_space.cpp.o.d"
  "CMakeFiles/coalesce_index.dir/grid.cpp.o"
  "CMakeFiles/coalesce_index.dir/grid.cpp.o.d"
  "CMakeFiles/coalesce_index.dir/incremental.cpp.o"
  "CMakeFiles/coalesce_index.dir/incremental.cpp.o.d"
  "libcoalesce_index.a"
  "libcoalesce_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
