file(REMOVE_RECURSE
  "libcoalesce_index.a"
)
