# Empty dependencies file for coalesce_index.
# This may be replaced when dependencies are built.
