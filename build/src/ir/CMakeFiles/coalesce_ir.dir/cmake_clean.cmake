file(REMOVE_RECURSE
  "CMakeFiles/coalesce_ir.dir/builder.cpp.o"
  "CMakeFiles/coalesce_ir.dir/builder.cpp.o.d"
  "CMakeFiles/coalesce_ir.dir/eval.cpp.o"
  "CMakeFiles/coalesce_ir.dir/eval.cpp.o.d"
  "CMakeFiles/coalesce_ir.dir/expr.cpp.o"
  "CMakeFiles/coalesce_ir.dir/expr.cpp.o.d"
  "CMakeFiles/coalesce_ir.dir/printer.cpp.o"
  "CMakeFiles/coalesce_ir.dir/printer.cpp.o.d"
  "CMakeFiles/coalesce_ir.dir/stmt.cpp.o"
  "CMakeFiles/coalesce_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/coalesce_ir.dir/symbol.cpp.o"
  "CMakeFiles/coalesce_ir.dir/symbol.cpp.o.d"
  "libcoalesce_ir.a"
  "libcoalesce_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
