file(REMOVE_RECURSE
  "libcoalesce_ir.a"
)
