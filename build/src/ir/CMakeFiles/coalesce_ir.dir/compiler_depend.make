# Empty compiler generated dependencies file for coalesce_ir.
# This may be replaced when dependencies are built.
