
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dispatcher.cpp" "src/runtime/CMakeFiles/coalesce_runtime.dir/dispatcher.cpp.o" "gcc" "src/runtime/CMakeFiles/coalesce_runtime.dir/dispatcher.cpp.o.d"
  "/root/repo/src/runtime/ir_executor.cpp" "src/runtime/CMakeFiles/coalesce_runtime.dir/ir_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/coalesce_runtime.dir/ir_executor.cpp.o.d"
  "/root/repo/src/runtime/parallel_for.cpp" "src/runtime/CMakeFiles/coalesce_runtime.dir/parallel_for.cpp.o" "gcc" "src/runtime/CMakeFiles/coalesce_runtime.dir/parallel_for.cpp.o.d"
  "/root/repo/src/runtime/reduce.cpp" "src/runtime/CMakeFiles/coalesce_runtime.dir/reduce.cpp.o" "gcc" "src/runtime/CMakeFiles/coalesce_runtime.dir/reduce.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/runtime/CMakeFiles/coalesce_runtime.dir/thread_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/coalesce_runtime.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/coalesce_support.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/coalesce_index.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/coalesce_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
