file(REMOVE_RECURSE
  "CMakeFiles/coalesce_runtime.dir/dispatcher.cpp.o"
  "CMakeFiles/coalesce_runtime.dir/dispatcher.cpp.o.d"
  "CMakeFiles/coalesce_runtime.dir/ir_executor.cpp.o"
  "CMakeFiles/coalesce_runtime.dir/ir_executor.cpp.o.d"
  "CMakeFiles/coalesce_runtime.dir/parallel_for.cpp.o"
  "CMakeFiles/coalesce_runtime.dir/parallel_for.cpp.o.d"
  "CMakeFiles/coalesce_runtime.dir/reduce.cpp.o"
  "CMakeFiles/coalesce_runtime.dir/reduce.cpp.o.d"
  "CMakeFiles/coalesce_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/coalesce_runtime.dir/thread_pool.cpp.o.d"
  "libcoalesce_runtime.a"
  "libcoalesce_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
