file(REMOVE_RECURSE
  "libcoalesce_runtime.a"
)
