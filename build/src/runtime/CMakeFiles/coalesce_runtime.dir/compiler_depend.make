# Empty compiler generated dependencies file for coalesce_runtime.
# This may be replaced when dependencies are built.
