file(REMOVE_RECURSE
  "CMakeFiles/coalesce_sim.dir/machine.cpp.o"
  "CMakeFiles/coalesce_sim.dir/machine.cpp.o.d"
  "CMakeFiles/coalesce_sim.dir/workload.cpp.o"
  "CMakeFiles/coalesce_sim.dir/workload.cpp.o.d"
  "libcoalesce_sim.a"
  "libcoalesce_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
