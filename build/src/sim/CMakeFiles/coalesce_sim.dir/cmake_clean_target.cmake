file(REMOVE_RECURSE
  "libcoalesce_sim.a"
)
