# Empty compiler generated dependencies file for coalesce_sim.
# This may be replaced when dependencies are built.
