file(REMOVE_RECURSE
  "CMakeFiles/coalesce_support.dir/error.cpp.o"
  "CMakeFiles/coalesce_support.dir/error.cpp.o.d"
  "CMakeFiles/coalesce_support.dir/int_math.cpp.o"
  "CMakeFiles/coalesce_support.dir/int_math.cpp.o.d"
  "CMakeFiles/coalesce_support.dir/rng.cpp.o"
  "CMakeFiles/coalesce_support.dir/rng.cpp.o.d"
  "CMakeFiles/coalesce_support.dir/stats.cpp.o"
  "CMakeFiles/coalesce_support.dir/stats.cpp.o.d"
  "CMakeFiles/coalesce_support.dir/strings.cpp.o"
  "CMakeFiles/coalesce_support.dir/strings.cpp.o.d"
  "CMakeFiles/coalesce_support.dir/table.cpp.o"
  "CMakeFiles/coalesce_support.dir/table.cpp.o.d"
  "libcoalesce_support.a"
  "libcoalesce_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
