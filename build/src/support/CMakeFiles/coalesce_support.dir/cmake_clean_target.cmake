file(REMOVE_RECURSE
  "libcoalesce_support.a"
)
