# Empty dependencies file for coalesce_support.
# This may be replaced when dependencies are built.
