
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/coalesce.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/coalesce.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/coalesce.cpp.o.d"
  "/root/repo/src/transform/distribute.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/distribute.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/distribute.cpp.o.d"
  "/root/repo/src/transform/fusion.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/fusion.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/fusion.cpp.o.d"
  "/root/repo/src/transform/guarded.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/guarded.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/guarded.cpp.o.d"
  "/root/repo/src/transform/interchange.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/interchange.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/interchange.cpp.o.d"
  "/root/repo/src/transform/normalize.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/normalize.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/normalize.cpp.o.d"
  "/root/repo/src/transform/permute.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/permute.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/permute.cpp.o.d"
  "/root/repo/src/transform/scalar_expand.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/scalar_expand.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/scalar_expand.cpp.o.d"
  "/root/repo/src/transform/stats.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/stats.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/stats.cpp.o.d"
  "/root/repo/src/transform/strip_mine.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/strip_mine.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/strip_mine.cpp.o.d"
  "/root/repo/src/transform/tile.cpp" "src/transform/CMakeFiles/coalesce_transform.dir/tile.cpp.o" "gcc" "src/transform/CMakeFiles/coalesce_transform.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/coalesce_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/coalesce_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/coalesce_index.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coalesce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
