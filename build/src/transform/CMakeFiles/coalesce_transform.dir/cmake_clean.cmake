file(REMOVE_RECURSE
  "CMakeFiles/coalesce_transform.dir/coalesce.cpp.o"
  "CMakeFiles/coalesce_transform.dir/coalesce.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/distribute.cpp.o"
  "CMakeFiles/coalesce_transform.dir/distribute.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/fusion.cpp.o"
  "CMakeFiles/coalesce_transform.dir/fusion.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/guarded.cpp.o"
  "CMakeFiles/coalesce_transform.dir/guarded.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/interchange.cpp.o"
  "CMakeFiles/coalesce_transform.dir/interchange.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/normalize.cpp.o"
  "CMakeFiles/coalesce_transform.dir/normalize.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/permute.cpp.o"
  "CMakeFiles/coalesce_transform.dir/permute.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/scalar_expand.cpp.o"
  "CMakeFiles/coalesce_transform.dir/scalar_expand.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/stats.cpp.o"
  "CMakeFiles/coalesce_transform.dir/stats.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/strip_mine.cpp.o"
  "CMakeFiles/coalesce_transform.dir/strip_mine.cpp.o.d"
  "CMakeFiles/coalesce_transform.dir/tile.cpp.o"
  "CMakeFiles/coalesce_transform.dir/tile.cpp.o.d"
  "libcoalesce_transform.a"
  "libcoalesce_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesce_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
