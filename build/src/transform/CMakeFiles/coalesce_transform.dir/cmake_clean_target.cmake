file(REMOVE_RECURSE
  "libcoalesce_transform.a"
)
