# Empty dependencies file for coalesce_transform.
# This may be replaced when dependencies are built.
