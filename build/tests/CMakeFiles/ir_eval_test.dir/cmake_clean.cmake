file(REMOVE_RECURSE
  "CMakeFiles/ir_eval_test.dir/ir_eval_test.cpp.o"
  "CMakeFiles/ir_eval_test.dir/ir_eval_test.cpp.o.d"
  "ir_eval_test"
  "ir_eval_test.pdb"
  "ir_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
