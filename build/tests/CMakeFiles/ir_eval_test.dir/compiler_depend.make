# Empty compiler generated dependencies file for ir_eval_test.
# This may be replaced when dependencies are built.
