file(REMOVE_RECURSE
  "CMakeFiles/ir_executor_test.dir/ir_executor_test.cpp.o"
  "CMakeFiles/ir_executor_test.dir/ir_executor_test.cpp.o.d"
  "ir_executor_test"
  "ir_executor_test.pdb"
  "ir_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
