file(REMOVE_RECURSE
  "CMakeFiles/ir_stmt_test.dir/ir_stmt_test.cpp.o"
  "CMakeFiles/ir_stmt_test.dir/ir_stmt_test.cpp.o.d"
  "ir_stmt_test"
  "ir_stmt_test.pdb"
  "ir_stmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_stmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
