file(REMOVE_RECURSE
  "CMakeFiles/transform_distribute_test.dir/transform_distribute_test.cpp.o"
  "CMakeFiles/transform_distribute_test.dir/transform_distribute_test.cpp.o.d"
  "transform_distribute_test"
  "transform_distribute_test.pdb"
  "transform_distribute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_distribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
