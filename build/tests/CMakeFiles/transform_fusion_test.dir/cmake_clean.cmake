file(REMOVE_RECURSE
  "CMakeFiles/transform_fusion_test.dir/transform_fusion_test.cpp.o"
  "CMakeFiles/transform_fusion_test.dir/transform_fusion_test.cpp.o.d"
  "transform_fusion_test"
  "transform_fusion_test.pdb"
  "transform_fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
