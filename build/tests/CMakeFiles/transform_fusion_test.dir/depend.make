# Empty dependencies file for transform_fusion_test.
# This may be replaced when dependencies are built.
