file(REMOVE_RECURSE
  "CMakeFiles/transform_guarded_test.dir/transform_guarded_test.cpp.o"
  "CMakeFiles/transform_guarded_test.dir/transform_guarded_test.cpp.o.d"
  "transform_guarded_test"
  "transform_guarded_test.pdb"
  "transform_guarded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_guarded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
