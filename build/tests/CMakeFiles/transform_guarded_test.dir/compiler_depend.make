# Empty compiler generated dependencies file for transform_guarded_test.
# This may be replaced when dependencies are built.
