file(REMOVE_RECURSE
  "CMakeFiles/transform_permute_test.dir/transform_permute_test.cpp.o"
  "CMakeFiles/transform_permute_test.dir/transform_permute_test.cpp.o.d"
  "transform_permute_test"
  "transform_permute_test.pdb"
  "transform_permute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_permute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
