# Empty compiler generated dependencies file for transform_permute_test.
# This may be replaced when dependencies are built.
