file(REMOVE_RECURSE
  "CMakeFiles/transform_tile_test.dir/transform_tile_test.cpp.o"
  "CMakeFiles/transform_tile_test.dir/transform_tile_test.cpp.o.d"
  "transform_tile_test"
  "transform_tile_test.pdb"
  "transform_tile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_tile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
