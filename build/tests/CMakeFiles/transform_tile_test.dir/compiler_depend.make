# Empty compiler generated dependencies file for transform_tile_test.
# This may be replaced when dependencies are built.
