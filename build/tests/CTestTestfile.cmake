# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_expr_test[1]_include.cmake")
include("/root/repo/build/tests/ir_stmt_test[1]_include.cmake")
include("/root/repo/build/tests/ir_eval_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/chunk_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_api_test[1]_include.cmake")
include("/root/repo/build/tests/transform_guarded_test[1]_include.cmake")
include("/root/repo/build/tests/transform_distribute_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/transform_fusion_test[1]_include.cmake")
include("/root/repo/build/tests/ir_executor_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/transform_tile_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_report_test[1]_include.cmake")
include("/root/repo/build/tests/tool_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/transform_permute_test[1]_include.cmake")
include("/root/repo/build/tests/cross_module_test[1]_include.cmake")
