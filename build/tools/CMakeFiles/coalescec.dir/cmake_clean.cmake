file(REMOVE_RECURSE
  "CMakeFiles/coalescec.dir/coalescec.cpp.o"
  "CMakeFiles/coalescec.dir/coalescec.cpp.o.d"
  "coalescec"
  "coalescec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
