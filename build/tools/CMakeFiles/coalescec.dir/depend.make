# Empty dependencies file for coalescec.
# This may be replaced when dependencies are built.
