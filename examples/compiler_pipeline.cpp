// The full compiler pipeline on an imperfect nest, end to end:
//
//   matmul (imperfect: init + reduction)
//     --[analyze]--> DOALL flags proven
//     --[make_perfect]--> two perfect nests (loop distribution)
//     --[coalesce_program]--> two single coalesced DOALLs
//     --[emit C]--> compilable output
//
// plus the non-rectangular path: a triangular nest coalesced over its
// bounding box with a membership guard.
#include <cstdio>

#include "coalesce.hpp"

int main() {
  using namespace coalesce;

  // ---- imperfect rectangular nest: distribute, then coalesce ------------
  ir::LoopNest matmul = ir::make_matmul(4, 3, 2);
  analysis::analyze_and_mark(matmul);
  std::printf("== input (imperfect nest) ==\n%s\n",
              ir::to_string(matmul).c_str());

  auto program = transform::make_perfect(matmul);
  if (!program.ok()) {
    std::fprintf(stderr, "make_perfect failed: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }
  std::printf("== after loop distribution (%zu perfect nests) ==\n",
              program.value().roots.size());
  for (const auto& root : program.value().roots) {
    std::printf("%s\n",
                ir::to_string(*root, program.value().symbols).c_str());
  }

  const auto coalesced = transform::coalesce_program(program.value());
  std::printf("== after coalescing (%zu bands fused) ==\n",
              coalesced.bands_coalesced);
  for (const auto& root : coalesced.program.roots) {
    std::printf("%s\n",
                ir::to_string(*root, coalesced.program.symbols).c_str());
  }

  const bool ok1 = core::equivalent_by_execution(matmul, coalesced.program);
  std::printf("pipeline verified equivalent: %s\n\n", ok1 ? "yes" : "NO");

  // ---- non-rectangular nest: guarded coalescing --------------------------
  const ir::LoopNest triangle = ir::make_triangular_witness(5);
  std::printf("== triangular input ==\n%s\n",
              ir::to_string(triangle).c_str());
  const auto guarded = transform::coalesce_guarded(triangle);
  if (!guarded.ok()) {
    std::fprintf(stderr, "guarded coalescing failed: %s\n",
                 guarded.error().to_string().c_str());
    return 1;
  }
  std::printf("== guarded coalesced (box %lld, active %lld) ==\n%s\n",
              static_cast<long long>(guarded.value().box_points),
              static_cast<long long>(guarded.value().active_points),
              ir::to_string(guarded.value().nest).c_str());

  codegen::EmitOptions emit;
  emit.standalone_main = false;
  emit.kernel_name = "triangle_kernel";
  std::printf("== emitted C ==\n%s",
              codegen::emit_c(guarded.value().nest, emit).c_str());

  const bool ok2 =
      core::equivalent_by_execution(triangle, guarded.value().nest);
  std::printf("guarded path verified equivalent: %s\n", ok2 ? "yes" : "NO");

  return ok1 && ok2 ? 0 : 1;
}
