// Gauss-Jordan elimination of AX = B with coalesced update planes.
//
// The elimination's pivot loop is sequential, but for each pivot the whole
// (row, column) update plane is a rectangular DOALL nest — a hybrid nest of
// exactly the kind the paper coalesces: keep the serial outer loop, fuse the
// parallel band under it. The final back-substitution X(i,j) = AB(i, j+n) /
// AB(i,i) is another 2-deep DOALL band, coalesced the same way.
#include <cmath>
#include <cstdio>
#include <vector>

#include "coalesce.hpp"

namespace {

using coalesce::support::i64;

struct Dense {
  i64 rows, cols;
  std::vector<double> data;
  Dense(i64 r, i64 c) : rows(r), cols(c), data(static_cast<std::size_t>(r * c)) {}
  double& at(i64 i, i64 j) {
    return data[static_cast<std::size_t>((i - 1) * cols + (j - 1))];
  }
  double at(i64 i, i64 j) const {
    return data[static_cast<std::size_t>((i - 1) * cols + (j - 1))];
  }
};

}  // namespace

int main() {
  using namespace coalesce;
  const i64 n = 64;  // system size
  const i64 m = 8;   // right-hand sides

  // Build a well-conditioned system with a known solution: X*(i,j) = i + j,
  // A = diagonally dominant, B = A * X*.
  Dense ab(n, n + m);
  Dense expected(n, m);
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= n; ++j) {
      ab.at(i, j) = i == j ? static_cast<double>(n) + 1.0
                           : 1.0 / static_cast<double>(i + j);
    }
    for (i64 j = 1; j <= m; ++j) expected.at(i, j) = static_cast<double>(i + j);
  }
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= m; ++j) {
      double acc = 0.0;
      for (i64 k = 1; k <= n; ++k) acc += ab.at(i, k) * expected.at(k, j);
      ab.at(i, n + j) = acc;
    }
  }

  runtime::ThreadPool pool(4);
  std::uint64_t total_dispatches = 0;

  // Elimination: sequential over pivots; the (row, col) update plane for
  // each pivot is one coalesced DOALL.
  for (i64 pivot = 1; pivot <= n; ++pivot) {
    // Pre-compute multipliers (a 1-D DOALL).
    std::vector<double> mult(static_cast<std::size_t>(n) + 1, 0.0);
    const double denom = ab.at(pivot, pivot);
    runtime::run(pool, n,
                 [&](i64 i) {
                   mult[static_cast<std::size_t>(i)] =
                       i == pivot ? 0.0 : ab.at(i, pivot) / denom;
                 },
                 {.schedule = {runtime::Schedule::kChunked, 8}});

    // Update plane: rows 1..n (except pivot) x columns pivot..n+m.
    const auto plane =
        index::CoalescedSpace::create(
            {index::LevelGeometry{1, n, 1},
             index::LevelGeometry{pivot, n + m - pivot + 1, 1}})
            .value();
    const runtime::ForStats stats = runtime::run(
        pool, plane,
        [&](std::span<const i64> ik) {
          const i64 i = ik[0], k = ik[1];
          if (i == pivot) return;
          ab.at(i, k) -= mult[static_cast<std::size_t>(i)] * ab.at(pivot, k);
        },
        {.schedule = {runtime::Schedule::kGuided}});
    total_dispatches += stats.dispatch_ops;
  }

  // Back-substitution: X(i, j) = AB(i, n + j) / AB(i, i), fully parallel.
  Dense x(n, m);
  const auto backsolve_space =
      index::CoalescedSpace::create(std::vector<i64>{n, m}).value();
  const runtime::ForStats back_stats = runtime::run(
      pool, backsolve_space,
      [&](std::span<const i64> ij) {
        x.at(ij[0], ij[1]) = ab.at(ij[0], n + ij[1]) / ab.at(ij[0], ij[0]);
      },
      {.schedule = {runtime::Schedule::kGuided}});
  total_dispatches += back_stats.dispatch_ops;

  double max_err = 0.0;
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= m; ++j) {
      max_err = std::max(max_err, std::fabs(x.at(i, j) - expected.at(i, j)));
    }
  }

  std::printf("gauss-jordan n=%lld m=%lld on %zu workers\n",
              static_cast<long long>(n), static_cast<long long>(m),
              pool.concurrency());
  std::printf("  total synchronized dispatches: %llu\n",
              static_cast<unsigned long long>(total_dispatches));
  std::printf("  max |X - X*| = %.3e  (%s)\n", max_err,
              max_err < 1e-9 ? "ok" : "FAILED");

  // The IR view of the back-substitution nest, coalesced and verified.
  const auto pipeline =
      core::analyze_coalesce_verify(ir::make_gauss_jordan_backsolve(6, 3));
  if (pipeline.ok()) {
    std::printf("\n== back-substitution nest, coalesced (6x3 instance) ==\n%s",
                pipeline.value().coalesced_source.c_str());
  }
  return max_err < 1e-9 ? 0 : 1;
}
