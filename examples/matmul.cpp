// Matrix multiplication with a coalesced (i, j) plane — the example the
// paper's era used to motivate coalescing: fuse the two outer DOALL loops so
// one dispatch counter feeds all N*M dot products, instead of forking a
// family of tasks per row.
//
// The program runs the same multiplication three ways and cross-checks:
//   serial            — reference
//   nested-outer      — rows scheduled across workers (the usual baseline)
//   coalesced         — run() over the collapsed (i, j) space
#include <cstdio>
#include <vector>

#include "coalesce.hpp"

namespace {

using coalesce::support::i64;

struct Matrix {
  i64 rows;
  i64 cols;
  std::vector<double> data;

  Matrix(i64 r, i64 c) : rows(r), cols(c), data(static_cast<std::size_t>(r * c)) {}
  double& at(i64 i, i64 j) {
    return data[static_cast<std::size_t>((i - 1) * cols + (j - 1))];
  }
  double at(i64 i, i64 j) const {
    return data[static_cast<std::size_t>((i - 1) * cols + (j - 1))];
  }
};

void fill(Matrix& m, unsigned salt) {
  for (std::size_t q = 0; q < m.data.size(); ++q) {
    m.data[q] = static_cast<double>((q * 31 + salt) % 17) - 8.0;
  }
}

double dot(const Matrix& a, const Matrix& b, i64 i, i64 j) {
  double acc = 0.0;
  for (i64 k = 1; k <= a.cols; ++k) acc += a.at(i, k) * b.at(k, j);
  return acc;
}

bool same(const Matrix& x, const Matrix& y) { return x.data == y.data; }

}  // namespace

int main() {
  using namespace coalesce;
  const i64 n = 96, m = 80, p = 64;

  Matrix a(n, p), b(p, m);
  fill(a, 17);
  fill(b, 5);

  // Reference: serial triple loop.
  Matrix serial(n, m);
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= m; ++j) serial.at(i, j) = dot(a, b, i, j);
  }

  runtime::ThreadPool pool(4);

  // Baseline: parallelize the outer row loop only.
  Matrix nested(n, m);
  const std::vector<i64> extents{n, m};
  const runtime::ForStats nested_stats = runtime::run(
      pool, extents,
      [&](std::span<const i64> ij) {
        nested.at(ij[0], ij[1]) = dot(a, b, ij[0], ij[1]);
      },
      {.schedule = {runtime::Schedule::kSelf},
       .mode = runtime::NestMode::kNestedOuter});

  // Coalesced: one counter over all n*m dot products, guided chunks.
  Matrix coalesced(n, m);
  const auto space = index::CoalescedSpace::create(extents).value();
  const runtime::ForStats coal_stats = runtime::run(
      pool, space,
      [&](std::span<const i64> ij) {
        coalesced.at(ij[0], ij[1]) = dot(a, b, ij[0], ij[1]);
      },
      {.schedule = {runtime::Schedule::kGuided}});

  std::printf("matmul %lldx%lldx%lld on %zu workers\n",
              static_cast<long long>(n), static_cast<long long>(p),
              static_cast<long long>(m), pool.concurrency());
  std::printf("  nested-outer: dispatches=%llu imbalance=%.3f  correct=%s\n",
              static_cast<unsigned long long>(nested_stats.dispatch_ops),
              nested_stats.imbalance(), same(serial, nested) ? "yes" : "NO");
  std::printf("  coalesced:    dispatches=%llu imbalance=%.3f  correct=%s\n",
              static_cast<unsigned long long>(coal_stats.dispatch_ops),
              coal_stats.imbalance(), same(serial, coalesced) ? "yes" : "NO");

  // And the compiler view: the same fusion as a source transformation.
  const ir::LoopNest nest = ir::make_matmul(6, 5, 4);
  const auto transformed = core::analyze_coalesce_verify(nest);
  if (transformed.ok()) {
    std::printf("\n== the transformation itself (6x5x4 instance) ==\n%s\n",
                transformed.value().coalesced_source.c_str());
  }

  return same(serial, nested) && same(serial, coalesced) ? 0 : 1;
}
