// Computing pi by integrating 4/(1+x^2) over [0,1] — the classic
// loop-level-parallelism demo. Each of the `strips x intervals` rectangles
// is independent, so the 2-deep (strip, interval) nest coalesces into one
// loop; per-worker partial sums avoid any shared accumulator.
//
// The example sweeps every runtime schedule over the same coalesced space
// and reports accuracy, dispatch counts, and balance.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "coalesce.hpp"

int main() {
  using namespace coalesce;
  using support::i64;

  const i64 strips = 64;
  const i64 intervals = 4096;  // per strip
  const double total = static_cast<double>(strips * intervals);

  runtime::ThreadPool pool(4);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{strips, intervals})
          .value();

  const runtime::ScheduleParams schedules[] = {
      {runtime::Schedule::kStaticBlock, 1},
      {runtime::Schedule::kStaticCyclic, 1},
      {runtime::Schedule::kSelf, 1},
      {runtime::Schedule::kChunked, 512},
      {runtime::Schedule::kGuided, 1},
      {runtime::Schedule::kTrapezoid, 1},
  };

  support::Table table("pi = integral of 4/(1+x^2), coalesced (strip, interval) nest");
  table.header({"schedule", "pi", "abs error", "dispatches", "chunks",
                "imbalance"});

  bool all_ok = true;
  for (const auto& params : schedules) {
    std::atomic<double> sum{0.0};

    const runtime::ForStats stats = runtime::run(
        pool, space,
        [&](std::span<const i64> sr) {
          const double g =
              static_cast<double>((sr[0] - 1) * intervals + sr[1]);
          const double x = (g - 0.5) / total;
          const double area = (4.0 / (1.0 + x * x)) / total;
          // CAS-loop FP accumulation keeps the example simple; the benches
          // measure dispatch overhead properly with per-worker partials.
          double expected = sum.load(std::memory_order_relaxed);
          while (!sum.compare_exchange_weak(expected, expected + area,
                                            std::memory_order_relaxed)) {
          }
        },
        {.schedule = params});

    const double pi = sum.load();
    const double err = std::fabs(pi - M_PI);
    all_ok = all_ok && err < 1e-6;
    table.cell(runtime::to_string(params.kind))
        .cell(pi, 10)
        .cell(err, 12)
        .cell(stats.dispatch_ops)
        .cell(stats.chunks_executed)
        .cell(stats.imbalance(), 3)
        .end_row();
  }
  table.print();

  // The same nest at the IR level: outer strip loop is proven DOALL, the
  // interval loop stays a serial reduction per strip.
  ir::LoopNest nest = ir::make_pi_strips(4, 8);
  const auto report = analysis::analyze_and_mark(nest);
  std::printf("\nIR analysis of the (strip, interval) nest:\n");
  for (const auto& verdict : report.loops) {
    std::printf("  loop %s: %s\n",
                nest.symbols.name(verdict.loop->var).c_str(),
                verdict.parallelizable ? "DOALL" : "serial (reduction)");
  }
  return all_ok ? 0 : 1;
}
