// Quickstart: the whole library in one file.
//
//  1. Build a doubly nested parallel loop in the IR.
//  2. Prove it is a DOALL nest (dependence analysis).
//  3. Coalesce it into a single loop (the paper's transformation).
//  4. Show the before/after source and the emitted C.
//  5. Execute the coalesced space on the real thread runtime.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "coalesce.hpp"

int main() {
  using namespace coalesce;

  // -- 1. a 4 x 6 parallel nest: OUT(i, j) = 10*i + j --------------------
  ir::LoopNest nest = ir::make_rectangular_witness({4, 6});

  // -- 2 + 3. analyze, coalesce, and verify equivalence -------------------
  auto pipeline = core::analyze_coalesce_verify(nest);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 pipeline.error().to_string().c_str());
    return 1;
  }
  const core::PipelineResult& result = pipeline.value();

  std::printf("== original nest ==\n%s\n", result.original_source.c_str());
  std::printf("== coalesced nest (verified equivalent) ==\n%s\n",
              result.coalesced_source.c_str());

  // -- 4. the transformation as compilable C ------------------------------
  codegen::EmitOptions emit_options;
  emit_options.standalone_main = false;
  std::printf("== emitted C kernel ==\n%s\n",
              codegen::emit_c(result.coalesced.nest, emit_options).c_str());

  // -- 5. run the coalesced loop on the thread runtime --------------------
  runtime::ThreadPool pool(4);
  const index::CoalescedSpace& space = result.coalesced.space;
  std::vector<double> out(static_cast<std::size_t>(space.total()), 0.0);
  const runtime::ForStats stats = runtime::run(
      pool, space,
      [&](std::span<const support::i64> ij) {
        const auto flat =
            static_cast<std::size_t>((ij[0] - 1) * 6 + (ij[1] - 1));
        out[flat] = static_cast<double>(10 * ij[0] + ij[1]);
      },
      {.schedule = {runtime::Schedule::kGuided}});

  std::printf("== runtime execution ==\n");
  std::printf("iterations: %lld   dispatch ops: %llu   chunks: %llu\n",
              static_cast<long long>(space.total()),
              static_cast<unsigned long long>(stats.dispatch_ops),
              static_cast<unsigned long long>(stats.chunks_executed));
  std::printf("OUT(4, 6) = %.0f (expect 46)\n", out.back());
  return out.back() == 46.0 ? 0 : 1;
}
