// Reductions end to end: the analyzer recognizes the accumulation pattern
// that blocks a DOALL, and the runtime executes it with per-worker partials
// over the coalesced space.
//
// Workload: Frobenius norm (squared) of a matrix — sum of squares over a
// 2-deep nest, i.e. a reduction over the whole coalesced (i, j) space.
#include <cmath>
#include <cstdio>
#include <vector>

#include "coalesce.hpp"

int main() {
  using namespace coalesce;
  using support::i64;

  // --- 1. The compiler view: recognize the reduction ----------------------
  // S(1) = S(1) + A(i,j)^2 under a 2-deep nest.
  ir::NestBuilder b;
  const ir::VarId a = b.array("A", {64, 48});
  const ir::VarId s = b.array("S", {1});
  const ir::VarId i = b.begin_parallel_loop("i", 1, 64);
  const ir::VarId j = b.begin_parallel_loop("j", 1, 48);
  b.assign(b.element_expr(s, {ir::int_const(1)}),
           ir::add(ir::array_read(s, {ir::int_const(1)}),
                   ir::mul(b.read(a, {i, j}), b.read(a, {i, j}))));
  b.end_loop();
  b.end_loop();
  const ir::LoopNest nest = b.build();

  const auto report = analysis::analyze_with_reductions(nest);
  std::printf("%s\n", analysis::render_report(nest, report).c_str());

  // --- 2. The runtime view: execute it with partials ----------------------
  const i64 rows = 64, cols = 48;
  std::vector<double> matrix(static_cast<std::size_t>(rows * cols));
  for (std::size_t q = 0; q < matrix.size(); ++q) {
    matrix[q] = static_cast<double>((q * 7) % 13) - 6.0;
  }

  double serial = 0.0;
  for (double v : matrix) serial += v * v;

  runtime::ThreadPool pool(4);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{rows, cols}).value();
  const auto result = runtime::run_sum(
      pool, space,
      [&](std::span<const i64> ij) {
        const double v =
            matrix[static_cast<std::size_t>((ij[0] - 1) * cols + (ij[1] - 1))];
        return v * v;
      },
      {.schedule = {runtime::Schedule::kGuided}});

  std::printf("Frobenius^2: serial=%.6f parallel=%.6f (delta %.2e)\n",
              serial, result.value, std::fabs(serial - result.value));
  std::printf("dispatches=%llu chunks=%llu workers=%zu\n",
              static_cast<unsigned long long>(result.stats.dispatch_ops),
              static_cast<unsigned long long>(result.stats.chunks_executed),
              pool.concurrency());
  return std::fabs(serial - result.value) < 1e-6 ? 0 : 1;
}
