// Visualizing schedules: ASCII Gantt charts from the machine simulator's
// execution traces.
//
// An imbalanced (increasing-cost) coalesced loop is run under four
// disciplines; the charts make the scheduling stories visible — the long
// tail of a coarse static chunk, the dispatch-dominated churn of unit
// self-scheduling, and GSS's shrinking chunks absorbing the imbalance.
#include <cstdio>

#include "coalesce.hpp"

int main() {
  using namespace coalesce;
  using support::i64;

  const i64 n = 512;
  const auto space = index::CoalescedSpace::create(std::vector<i64>{n}).value();
  const sim::Workload work = sim::Workload::from_model(
      support::WorkModel::kIncreasing, n, 4, 120, 17);

  sim::CostModel costs;
  costs.dispatch = 15;
  costs.record_trace = true;

  struct Row {
    const char* name;
    sim::SimScheduleParams params;
  };
  const Row rows[] = {
      {"self(1)", {sim::SimSchedule::kSelf, 1}},
      {"chunk(128)", {sim::SimSchedule::kChunked, 128}},
      {"gss", {sim::SimSchedule::kGuided, 1}},
      {"factoring", {sim::SimSchedule::kFactoring, 1}},
  };

  // Use one scale across charts so widths are comparable.
  i64 worst = 0;
  for (const auto& row : rows) {
    const auto r =
        sim::simulate_coalesced_dynamic(space, 4, row.params, costs, work);
    worst = std::max(worst, r.completion);
  }
  const i64 per_char = std::max<i64>(1, worst / 100);

  std::printf(
      "coalesced loop, N=%lld, increasing body 4..120u, P=4, sigma=15\n"
      "one column = %lld cycles; '#' busy, '.' idle\n\n",
      static_cast<long long>(n), static_cast<long long>(per_char));

  for (const auto& row : rows) {
    const auto r =
        sim::simulate_coalesced_dynamic(space, 4, row.params, costs, work);
    std::printf("%-10s completion=%-7lld dispatches=%-5llu utilization=%.1f%%\n",
                row.name, static_cast<long long>(r.completion),
                static_cast<unsigned long long>(r.dispatch_ops),
                r.utilization() * 100.0);
    std::printf("%s\n", sim::render_gantt(r, per_char).c_str());
  }
  return 0;
}
