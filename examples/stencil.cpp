// Jacobi relaxation on a 2-D grid with coalesced interior sweeps.
//
// Each sweep's interior update is a 2-deep DOALL band with non-unit lower
// bounds (2..n+1 over an (n+2)^2 grid) — exactly the geometry the coalescing
// index maps handle via LevelGeometry. The example iterates to convergence,
// double-buffered, and also shows the IR-level transformation of one sweep.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "coalesce.hpp"

int main() {
  using namespace coalesce;
  using support::i64;

  const i64 n = 64;               // interior size
  const i64 side = n + 2;         // including boundary
  const double target = 1e-6;

  // Boundary condition: left edge at 1.0, everything else starts at 0.
  std::vector<double> grid_a(static_cast<std::size_t>(side * side), 0.0);
  for (i64 i = 0; i < side; ++i) grid_a[static_cast<std::size_t>(i * side)] = 1.0;
  std::vector<double> grid_b = grid_a;

  auto at = [side](std::vector<double>& g, i64 i, i64 j) -> double& {
    return g[static_cast<std::size_t>((i - 1) * side + (j - 1))];
  };

  runtime::ThreadPool pool(4);
  // Interior points: rows 2..n+1, cols 2..n+1.
  const auto interior =
      index::CoalescedSpace::create({index::LevelGeometry{2, n, 1},
                                     index::LevelGeometry{2, n, 1}})
          .value();

  std::vector<double>* src = &grid_a;
  std::vector<double>* dst = &grid_b;
  int sweeps = 0;
  double max_delta = 1.0;
  std::uint64_t dispatches = 0;

  while (max_delta > target && sweeps < 20000) {
    // Convergence metric: atomic max over all points (CAS only when a new
    // maximum is observed, so contention stays negligible).
    std::atomic<double> sweep_delta{0.0};
    const runtime::ForStats stats = runtime::run(
        pool, interior,
        [&](std::span<const i64> ij) {
          const i64 i = ij[0], j = ij[1];
          const double next = 0.25 * (at(*src, i - 1, j) + at(*src, i + 1, j) +
                                      at(*src, i, j - 1) + at(*src, i, j + 1));
          const double delta = std::fabs(next - at(*src, i, j));
          at(*dst, i, j) = next;
          double seen = sweep_delta.load(std::memory_order_relaxed);
          while (seen < delta && !sweep_delta.compare_exchange_weak(
                                     seen, delta, std::memory_order_relaxed)) {
          }
        },
        {.schedule = {runtime::Schedule::kChunked, 256}});
    dispatches += stats.dispatch_ops;
    max_delta = sweep_delta.load();
    std::swap(src, dst);
    ++sweeps;
  }

  // Sanity: interior values bounded by the boundary extremes.
  bool bounded = true;
  for (double v : *src) bounded = bounded && v >= -1e-12 && v <= 1.0 + 1e-12;

  std::printf("jacobi %lldx%lld interior, %zu workers\n",
              static_cast<long long>(n), static_cast<long long>(n),
              pool.concurrency());
  std::printf("  converged to %.1e in %d sweeps, %llu dispatches total\n",
              max_delta, sweeps,
              static_cast<unsigned long long>(dispatches));
  std::printf("  solution bounded by boundary values: %s\n",
              bounded ? "yes" : "NO");

  // The IR-level view of one sweep (A -> B), coalesced and verified.
  const auto pipeline = core::analyze_coalesce_verify(ir::make_jacobi_step(6));
  if (pipeline.ok()) {
    std::printf("\n== one sweep as a compiler transformation (6x6) ==\n%s",
                pipeline.value().coalesced_source.c_str());
  }
  return bounded && max_delta <= target ? 0 : 1;
}
