#include "analysis/contiguity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/subscript.hpp"

namespace coalesce::analysis {

namespace {

/// Elements per 64-byte cache line at double granularity: the stride at
/// which every advance of an axis touches a fresh line.
constexpr double kLineElements = 8.0;

/// Expected misses per advance for one reference at element stride `s`.
double miss_cost_of_stride(std::int64_t s) noexcept {
  if (s == 0) return 0.0;  // loop-invariant w.r.t. this axis
  const double hops = static_cast<double>(s < 0 ? -s : s) / kLineElements;
  return std::min(1.0, hops);
}

/// Row-major linearized strides of an array's subscript dimensions:
/// stride of dim d = product of extents d+1..D-1. Empty (= unscorable)
/// when any extent is missing or non-positive.
std::vector<std::int64_t> row_strides(const std::vector<std::int64_t>& shape) {
  std::vector<std::int64_t> strides(shape.size(), 1);
  std::int64_t acc = 1;
  for (std::size_t d = shape.size(); d-- > 0;) {
    strides[d] = acc;
    if (shape[d] <= 0) return {};
    acc *= shape[d];
  }
  return strides;
}

}  // namespace

ContiguityInfo analyze_contiguity(const ir::LoopNest& nest) {
  ContiguityInfo info;
  if (nest.root == nullptr) return info;
  const std::vector<const ir::Loop*> band = ir::perfect_band(*nest.root);

  info.axes.reserve(band.size());
  for (std::size_t level = 0; level < band.size(); ++level) {
    info.axes.push_back(AxisContiguity{band[level]->var, level, 0.0, 0});
  }

  const std::vector<ArrayRef> refs = collect_array_refs(*nest.root);
  info.refs_total = refs.size();
  for (const ArrayRef& ref : refs) {
    const ir::Symbol& symbol = nest.symbols[ref.array];
    const std::vector<std::int64_t> strides = row_strides(symbol.shape);
    const bool affine =
        std::all_of(ref.subscripts.begin(), ref.subscripts.end(),
                    [](const auto& s) { return s.has_value(); });
    if (!affine || strides.size() != ref.subscripts.size()) {
      // Non-affine subscript, rank/shape mismatch, or unknown extents: we
      // cannot place this reference in memory, so no order derived from
      // the scored refs alone is trustworthy.
      ++info.refs_skipped;
      info.conservative = true;
      continue;
    }
    for (AxisContiguity& axis : info.axes) {
      // Element stride of this reference when `axis` advances one step:
      // each subscript dimension moves by step * coeff, scaled by its
      // row-major stride.
      std::int64_t stride = 0;
      for (std::size_t d = 0; d < strides.size(); ++d) {
        stride += ref.subscripts[d]->coeff(axis.var) * strides[d];
      }
      stride *= band[axis.level]->step;
      if (stride != 0) ++axis.moving_refs;
      const double weight = ref.kind == RefKind::kWrite ? 2.0 : 1.0;
      axis.miss_cost += weight * miss_cost_of_stride(stride);
    }
  }

  info.ranked.resize(info.axes.size());
  std::iota(info.ranked.begin(), info.ranked.end(), std::size_t{0});
  std::stable_sort(info.ranked.begin(), info.ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return info.axes[a].miss_cost > info.axes[b].miss_cost;
                   });
  return info;
}

}  // namespace coalesce::analysis
