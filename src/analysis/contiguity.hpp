// Access-contiguity analysis: which nest axis should run innermost?
//
// Coalescing fixes the DISPATCH order of a nest to the row-major sweep of
// whatever loop order the nest arrived in. On a real memory hierarchy that
// order is not neutral: stepping the axis that moves array references by
// one element walks cache lines sequentially, while stepping an axis that
// moves them by a whole row misses on every iteration. This analysis ranks
// the axes of a perfect band by how expensive it is to step them, using
// the affine subscript views of analysis/subscript.hpp and the array
// shapes recorded in the symbol table:
//
//   element_stride(axis, ref) = step(axis) * sum_d coeff_d(axis) * rowstride_d
//
// where rowstride_d is the row-major linearized stride of subscript
// dimension d (product of the trailing extents). The per-step miss cost of
// one reference is 0 for a stride of 0 (the axis does not move the
// reference — it stays in registers/cache), and min(1, |stride| / 8)
// otherwise: 8 elements per 64-byte line at double granularity, saturating
// at one miss per iteration. Writes count double (a miss costs the
// read-for-ownership plus the eventual writeback).
//
// Anything non-affine — or an array whose declared shape does not match
// its subscript count — flips the `conservative` flag and contributes
// nothing; the cost model (codegen/cost_model.hpp) treats a conservative
// analysis as "leave the order alone".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/stmt.hpp"

namespace coalesce::analysis {

/// One band axis's contiguity verdict.
struct AxisContiguity {
  ir::VarId var;           ///< the axis's induction variable
  std::size_t level = 0;   ///< band level, 0 = outermost
  /// Weighted expected cache-miss cost of advancing this axis by one step,
  /// summed over every affine array reference in the band body. Lower =
  /// more contiguous = better innermost candidate.
  double miss_cost = 0.0;
  /// References this axis actually moves (nonzero element stride).
  std::uint64_t moving_refs = 0;
};

/// Contiguity ranking of a nest's perfect band.
struct ContiguityInfo {
  /// Per-axis verdicts in band order (outermost first).
  std::vector<AxisContiguity> axes;
  /// Band levels sorted most-expensive-first (stable: ties keep band
  /// order). A locality-aware order runs ranked.front() outermost and
  /// ranked.back() innermost; a fully tied ranking is the identity.
  std::vector<std::size_t> ranked;
  /// True when some reference could not be scored (non-affine subscript,
  /// shape/subscript mismatch, missing extents). Consumers should keep the
  /// original order.
  bool conservative = false;
  std::size_t refs_total = 0;    ///< array references seen
  std::size_t refs_skipped = 0;  ///< references that could not be scored

  /// Convenience: the band level a locality-aware order would run
  /// innermost (the cheapest axis); band order's last level when empty.
  [[nodiscard]] std::size_t innermost() const noexcept {
    return ranked.empty() ? 0 : ranked.back();
  }
};

/// Ranks the perfect band of `nest` by access contiguity. Always returns a
/// verdict for every band axis; `conservative` says whether the scores can
/// be trusted for reordering.
[[nodiscard]] ContiguityInfo analyze_contiguity(const ir::LoopNest& nest);

}  // namespace coalesce::analysis
