#include "analysis/ddg.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace coalesce::analysis {

std::optional<std::size_t> outermost_carried_level(const Dependence& dep) {
  for (std::size_t l = 0; l < dep.common.size(); ++l) {
    if (dep.may_be_carried_at(l)) return l;
  }
  return std::nullopt;
}

Ddg build_ddg(const ir::Loop& root) {
  Ddg g;
  g.refs = collect_array_refs(root);
  g.deps = compute_dependences(root, g.refs);
  for (const ArrayRef& ref : g.refs) {
    g.statements = std::max(g.statements, ref.stmt_ordinal + 1);
  }
  g.edges.reserve(g.deps.size());
  for (std::size_t d = 0; d < g.deps.size(); ++d) {
    const Dependence& dep = g.deps[d];
    g.edges.push_back(DdgEdge{dep.src_ref, dep.dst_ref, d,
                              outermost_carried_level(dep)});
  }
  return g;
}

std::vector<std::size_t> Ddg::recurrence_statements(std::size_t level) const {
  if (statements == 0) return {};
  // Allen-Kennedy view at `level`: keep edges that may be carried at this
  // level or deeper, plus loop-independent edges between DISTINCT statements
  // (a loop-independent self-edge orders two accesses of one instance and
  // cannot close a cycle). Anything carried strictly outside `level` is
  // already sequenced by the outer loops and drops out.
  std::vector<bool> adj(statements * statements, false);
  for (const DdgEdge& e : edges) {
    const Dependence& dep = deps[e.dep];
    const std::size_t src = refs[e.src_ref].stmt_ordinal;
    const std::size_t dst = refs[e.dst_ref].stmt_ordinal;
    bool keep = false;
    if (dep.is_loop_independent()) {
      keep = src != dst;
    } else {
      for (std::size_t m = level; m < dep.common.size() && !keep; ++m) {
        keep = dep.may_be_carried_at(m);
      }
    }
    if (keep) adj[src * statements + dst] = true;
  }
  // Transitive closure (statement counts are tiny); a statement is on a
  // recurrence iff it reaches itself through at least one edge.
  for (std::size_t k = 0; k < statements; ++k) {
    for (std::size_t i = 0; i < statements; ++i) {
      if (!adj[i * statements + k]) continue;
      for (std::size_t j = 0; j < statements; ++j) {
        if (adj[k * statements + j]) adj[i * statements + j] = true;
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < statements; ++s) {
    if (adj[s * statements + s]) out.push_back(s);
  }
  return out;
}

std::string Ddg::to_dot(const ir::SymbolTable& symbols) const {
  std::string out = "digraph ddg {\n  rankdir=LR;\n";
  for (std::size_t s = 0; s < statements; ++s) {
    // Label each statement with the arrays it writes (its identity for a
    // human reading the graph).
    std::vector<std::string> writes;
    for (const ArrayRef& ref : refs) {
      if (ref.stmt_ordinal != s || ref.kind != RefKind::kWrite) continue;
      const std::string& name = symbols.name(ref.array);
      if (std::find(writes.begin(), writes.end(), name) == writes.end()) {
        writes.push_back(name);
      }
    }
    out += support::format("  s%zu [label=\"s%zu: %s\"];\n", s, s,
                           writes.empty() ? "(read only)"
                                          : support::join(writes, ",").c_str());
  }
  for (const DdgEdge& e : edges) {
    const Dependence& dep = deps[e.dep];
    const std::string carried =
        e.carried_level.has_value()
            ? support::format("@%zu", *e.carried_level)
            : std::string("indep");
    out += support::format(
        "  s%zu -> s%zu [label=\"%s %s %s %s%s\"];\n",
        refs[e.src_ref].stmt_ordinal, refs[e.dst_ref].stmt_ordinal,
        to_string(dep.kind), symbols.name(refs[e.src_ref].array).c_str(),
        dep.direction_string().c_str(), carried.c_str(),
        dep.answer == DepAnswer::kMaybe ? " ?" : "");
  }
  out += "}\n";
  return out;
}

}  // namespace coalesce::analysis
