// Data-dependence graph over the array references of a loop tree.
//
// Nodes are the references collect_array_refs() finds (each one knows the
// statement it belongs to); edges are the Dependence records the pairwise
// tests produce, annotated with the outermost common level each dependence
// may be carried at. On top of the raw graph the module answers the two
// questions the race detector and the (future) parallelizing pipeline ask:
//
//   * which statements sit on a dependence cycle carried at level >= l
//     (an Allen-Kennedy style recurrence — the reason a loop cannot be
//     DOALL no matter how the body is reordered), and
//   * what does the graph look like (to_dot, for debugging and docs).
//
// The graph is a snapshot: it borrows Loop pointers from the tree it was
// built from and must not outlive it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "analysis/subscript.hpp"
#include "ir/stmt.hpp"

namespace coalesce::analysis {

/// One edge of the graph: dependence `dep` runs refs[deps[dep].src_ref] ->
/// refs[deps[dep].dst_ref].
struct DdgEdge {
  std::size_t src_ref = 0;  ///< node: index into Ddg::refs
  std::size_t dst_ref = 0;
  std::size_t dep = 0;  ///< payload: index into Ddg::deps
  /// Outermost common level the dependence may be carried at; nullopt when
  /// it is provably loop-independent (all distances known zero).
  std::optional<std::size_t> carried_level;
};

struct Ddg {
  std::vector<ArrayRef> refs;    ///< nodes, collect_array_refs() order
  std::vector<Dependence> deps;  ///< edge payloads
  std::vector<DdgEdge> edges;
  /// Number of statements (max stmt_ordinal + 1) for SCC computations.
  std::size_t statements = 0;

  /// Statement ordinals that lie on a dependence cycle whose every edge may
  /// be carried at level >= `level` or is loop-independent — the statements
  /// of a recurrence at `level`. Sorted ascending, no duplicates.
  [[nodiscard]] std::vector<std::size_t> recurrence_statements(
      std::size_t level) const;

  /// Graphviz rendering: one node per statement, one edge per dependence,
  /// labelled kind/answer/direction.
  [[nodiscard]] std::string to_dot(const ir::SymbolTable& symbols) const;
};

/// Builds the graph for one loop tree.
[[nodiscard]] Ddg build_ddg(const ir::Loop& root);

/// Outermost common level `dep` may be carried at, or nullopt when the
/// dependence is loop-independent (helper shared with the race detector).
[[nodiscard]] std::optional<std::size_t> outermost_carried_level(
    const Dependence& dep);

}  // namespace coalesce::analysis
