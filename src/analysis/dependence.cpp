#include "analysis/dependence.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/int_math.hpp"

namespace coalesce::analysis {

using ir::AffineForm;
using ir::Loop;
using ir::VarId;
using std::int64_t;

const char* to_string(DepAnswer a) noexcept {
  switch (a) {
    case DepAnswer::kIndependent: return "independent";
    case DepAnswer::kDependent: return "dependent";
    case DepAnswer::kMaybe: return "maybe";
  }
  return "?";
}

const char* to_string(DepKind k) noexcept {
  switch (k) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

bool Dependence::may_be_carried_at(std::size_t level) const {
  COALESCE_ASSERT(level < distance.size());
  // Carried at `level` requires: every outer entry could be zero, and the
  // entry at `level` could be nonzero. Unknown entries could be anything.
  for (std::size_t l = 0; l < level; ++l) {
    if (distance[l].has_value() && *distance[l] != 0) return false;
  }
  return !(distance[level].has_value() && *distance[level] == 0);
}

bool Dependence::is_loop_independent() const {
  return std::all_of(distance.begin(), distance.end(), [](const auto& d) {
    return d.has_value() && *d == 0;
  });
}

std::string Dependence::direction_string() const {
  std::string out = "(";
  for (std::size_t l = 0; l < distance.size(); ++l) {
    if (l > 0) out += ", ";
    const auto& d = distance[l];
    if (!d.has_value()) {
      out += '*';
    } else if (*d > 0) {
      out += '<';
    } else if (*d < 0) {
      out += '>';
    } else {
      out += '=';
    }
  }
  out += ")";
  return out;
}

namespace {

/// Where (if anywhere) `v` sits in the common loop prefix.
std::optional<std::size_t> common_level_of(
    VarId v, std::span<const Loop* const> common) {
  for (std::size_t l = 0; l < common.size(); ++l) {
    if (common[l]->var == v) return l;
  }
  return std::nullopt;
}

struct Interval {
  int64_t lo;
  int64_t hi;
};

/// Contribution of coeff*var with var ranging over [b.lo, b.hi]. nullopt
/// when the products overflow int64 (INT64_MAX-adjacent bounds): the
/// Banerjee range is then unknown and the caller must answer kMaybe.
std::optional<Interval> scaled(int64_t coeff, Interval b) {
  const auto x = support::checked_mul(coeff, coeff >= 0 ? b.lo : b.hi);
  const auto y = support::checked_mul(coeff, coeff >= 0 ? b.hi : b.lo);
  if (!x.has_value() || !y.has_value()) return std::nullopt;
  return Interval{*x, *y};
}

/// Per-dimension verdict.
struct DimVerdict {
  DepAnswer answer = DepAnswer::kMaybe;
  /// Exact SIV solution: dependence only when the iteration distance at
  /// `level` equals `distance` (in iteration, not value, units).
  std::optional<std::size_t> level;
  std::optional<int64_t> distance;
  /// Common levels whose variables this dimension involves (and therefore
  /// whose distances stay unknown unless pinned by another dimension).
  std::vector<std::size_t> involved_levels;
};

/// Tests one subscript dimension: does fa(I) == fb(I') have a solution?
DimVerdict test_dimension(const AffineForm& fa, const AffineForm& fb,
                          std::span<const Loop* const> common) {
  DimVerdict verdict;

  // Split variables into: common induction vars (two independent instances),
  // and everything else. Loop-invariant symbols (params, scalars set outside)
  // take the same value in both instances, so equal coefficients cancel.
  // Unequal coefficients on an invariant leave an unresolvable term ->
  // kMaybe. Induction variables of non-common loops act as free variables.
  //
  // We first fold invariants, then classify. A constant residual that
  // overflows int64 (or equals INT64_MIN, whose negation below would) makes
  // every exact test meaningless: answer kMaybe, the sound default.
  const auto diff = support::checked_sub(fa.constant, fb.constant);
  if (!diff.has_value() || *diff == INT64_MIN) return verdict;
  int64_t const_diff = *diff;  // fa - fb residual
  struct Term {
    int64_t coeff;            // multiplies an integer unknown
    std::optional<Interval> bounds;  // value range when known
    std::optional<std::size_t> level;  // common level when a distance var
    bool is_delta = false;    // true: unknown is (i - i') of a common level
  };
  std::vector<Term> terms;
  bool unresolvable = false;

  // Collect the union of vars.
  std::vector<VarId> vars;
  for (const auto& [v, c] : fa.coeffs) vars.push_back(v);
  for (const auto& [v, c] : fb.coeffs) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end())
      vars.push_back(v);
  }

  for (VarId v : vars) {
    const int64_t ca = fa.coeff(v);
    const int64_t cb = fb.coeff(v);
    const auto lvl = common_level_of(v, common);
    if (lvl.has_value()) {
      verdict.involved_levels.push_back(*lvl);
      const Loop& loop = *common[*lvl];
      std::optional<Interval> bounds;
      if (auto cb2 = constant_bounds(loop)) {
        bounds = Interval{cb2->lower, cb2->upper};
      }
      if (ca == cb) {
        // ca*i - ca*i' = -ca * (i' - i): one delta unknown.
        if (ca != 0) {
          terms.push_back(Term{-ca, std::nullopt, lvl, /*is_delta=*/true});
          // Delta bounds: i' - i in [-(U-L), U-L] when bounds known and the
          // span itself fits in int64; otherwise leave the delta unbounded.
          if (bounds) {
            const auto span = support::checked_sub(bounds->hi, bounds->lo);
            if (span.has_value()) {
              terms.back().bounds = Interval{-*span, *span};
            }
          }
        }
        continue;
      }
      // Different coefficients: two independent instances.
      if (ca != 0) terms.push_back(Term{ca, bounds, lvl, false});
      if (cb != 0) terms.push_back(Term{-cb, bounds, lvl, false});
      continue;
    }
    // Not a common loop var: invariant symbols cancel when coefficients
    // match; non-common induction vars are free (each instance independent).
    if (ca == cb) continue;  // cancels (invariant) or both zero
    // Distinguish: a non-common *induction* var is a bounded/free integer per
    // instance; an invariant with ca != cb leaves (ca-cb)*v, v unknown value.
    // Without symbol kinds here we treat both as unresolvable-by-Banerjee but
    // still usable by the GCD test with coefficient (ca - cb) for invariants.
    // Conservative and simple: mark unresolvable (kMaybe unless GCD proves
    // independence below via delta terms only).
    unresolvable = true;
    terms.push_back(Term{ca - cb, std::nullopt, std::nullopt, false});
  }

  // ZIV: no terms at all.
  if (terms.empty()) {
    verdict.answer =
        const_diff == 0 ? DepAnswer::kDependent : DepAnswer::kIndependent;
    return verdict;
  }

  // GCD test on: sum(coeff_k * unknown_k) + const_diff == 0.
  int64_t g = 0;
  for (const Term& t : terms) g = support::gcd(g, t.coeff);
  if (g != 0 && support::mod_floor(-const_diff, g) != 0) {
    verdict.answer = DepAnswer::kIndependent;
    return verdict;
  }

  // Strong SIV: exactly one term, it is a delta of a common level.
  if (terms.size() == 1 && terms[0].is_delta && !unresolvable) {
    const Term& t = terms[0];
    // t.coeff * delta_value + const_diff == 0, delta in value units.
    if (support::mod_floor(-const_diff, t.coeff) != 0) {
      verdict.answer = DepAnswer::kIndependent;
      return verdict;
    }
    const int64_t delta_value = -const_diff / t.coeff;
    const Loop& loop = *common[*t.level];
    // Convert value distance to iteration distance via the loop step.
    if (support::mod_floor(delta_value, loop.step) != 0) {
      verdict.answer = DepAnswer::kIndependent;
      return verdict;
    }
    const int64_t delta_iter = delta_value / loop.step;
    if (t.bounds) {
      // Value-delta bounds were computed from the value range.
      if (delta_value < t.bounds->lo || delta_value > t.bounds->hi) {
        verdict.answer = DepAnswer::kIndependent;
        return verdict;
      }
    }
    verdict.answer = DepAnswer::kDependent;
    verdict.level = t.level;
    verdict.distance = delta_iter;
    return verdict;
  }

  // Weak-zero SIV: one common-level instance against a loop-invariant value
  // (a*i + c1 vs. c2, or c1 vs. a*i' + c2). The pinned instance must land
  // exactly on v = -const_diff / a, and v must be an actual iterate: inside
  // the bounds AND on the step lattice from the lower bound. The lattice
  // membership check is strictly stronger than GCD + Banerjee, which accept
  // any integer in range.
  if (terms.size() == 1 && !terms[0].is_delta && terms[0].level.has_value() &&
      !unresolvable) {
    const Term& t = terms[0];
    if (support::mod_floor(-const_diff, t.coeff) != 0) {
      verdict.answer = DepAnswer::kIndependent;
      return verdict;
    }
    const int64_t v = -const_diff / t.coeff;
    const Loop& loop = *common[*t.level];
    if (t.bounds) {
      const auto rel = support::checked_sub(v, t.bounds->lo);
      if (!rel.has_value()) return verdict;  // kMaybe: arithmetic overflow
      if (v < t.bounds->lo || v > t.bounds->hi ||
          support::mod_floor(*rel, loop.step) != 0) {
        verdict.answer = DepAnswer::kIndependent;
        return verdict;
      }
      // One instance pinned to iterate v, the other instance free: the
      // dependence exists, between v and every iteration (distance unknown).
      verdict.answer = DepAnswer::kDependent;
      return verdict;
    }
    return verdict;  // kMaybe: bounds unknown, v may fall outside the loop
  }

  // Weak-crossing SIV: both instances of one common level with coefficients
  // of opposite sign (a*i + c1 vs. -a*i' + c2, folded here to two terms with
  // the SAME residual coefficient a): a*(i + i') == -const_diff. With
  // i = lo + m*step and i' = lo + n*step, the sum i + i' sweeps exactly
  // 2*lo + step*{0, 1, ..., 2*(trips-1)}; exact lattice membership decides.
  if (terms.size() == 2 && !unresolvable && !terms[0].is_delta &&
      !terms[1].is_delta && terms[0].level.has_value() &&
      terms[1].level == terms[0].level &&
      terms[0].coeff == terms[1].coeff) {
    const Term& t = terms[0];
    if (support::mod_floor(-const_diff, t.coeff) != 0) {
      verdict.answer = DepAnswer::kIndependent;
      return verdict;
    }
    const int64_t sum = -const_diff / t.coeff;  // i + i'
    const Loop& loop = *common[*t.level];
    if (t.bounds) {
      const auto two_lo = support::checked_mul(int64_t{2}, t.bounds->lo);
      const auto span = support::checked_sub(t.bounds->hi, t.bounds->lo);
      if (!two_lo.has_value() || !span.has_value()) {
        return verdict;  // kMaybe: arithmetic overflow
      }
      const auto rel = support::checked_sub(sum, *two_lo);
      const auto two_k = support::checked_mul(*span / loop.step, int64_t{2});
      const auto max_rel =
          two_k ? support::checked_mul(*two_k, loop.step) : std::nullopt;
      if (!rel.has_value() || !max_rel.has_value()) {
        return verdict;  // kMaybe: arithmetic overflow
      }
      if (*rel < 0 || *rel > *max_rel ||
          support::mod_floor(*rel, loop.step) != 0) {
        verdict.answer = DepAnswer::kIndependent;
        return verdict;
      }
      verdict.answer = DepAnswer::kDependent;
      if (*rel == 0 || *rel == *max_rel) {
        // The crossing point sits on the iteration-space boundary: the only
        // feasible pair is i == i' (first or last iterate with itself), so
        // the dependence is exactly loop-independent at this level.
        verdict.level = t.level;
        verdict.distance = 0;
      }
      // Otherwise crossing pairs with i != i' exist; which (i, i') split the
      // sum takes stays open, so the distance at this level is unknown.
      return verdict;
    }
    return verdict;  // kMaybe: bounds unknown
  }

  // Banerjee range test: requires every term bounded, with every product
  // and partial sum representable (overflow widens the range to unknown).
  bool all_bounded = !unresolvable;
  Interval range{const_diff, const_diff};
  for (const Term& t : terms) {
    if (!t.bounds) {
      all_bounded = false;
      break;
    }
    const auto contrib = scaled(t.coeff, *t.bounds);
    const auto lo = contrib ? support::checked_add(range.lo, contrib->lo)
                            : std::nullopt;
    const auto hi = contrib ? support::checked_add(range.hi, contrib->hi)
                            : std::nullopt;
    if (!lo.has_value() || !hi.has_value()) {
      all_bounded = false;
      break;
    }
    range.lo = *lo;
    range.hi = *hi;
  }
  if (all_bounded && (range.lo > 0 || range.hi < 0)) {
    verdict.answer = DepAnswer::kIndependent;
    return verdict;
  }

  verdict.answer = DepAnswer::kMaybe;
  return verdict;
}

}  // namespace

PairTest test_pair(const ArrayRef& a, const ArrayRef& b, std::size_t common) {
  PairTest out;
  out.distance.assign(common, std::nullopt);

  COALESCE_ASSERT_MSG(a.array == b.array, "pair must reference one array");
  COALESCE_ASSERT(a.subscripts.size() == b.subscripts.size());

  const std::span<const Loop* const> common_chain(a.enclosing.data(), common);

  bool any_maybe = false;
  for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
    if (!a.subscripts[d] || !b.subscripts[d]) {
      any_maybe = true;  // non-affine subscript: no information
      continue;
    }
    const DimVerdict v =
        test_dimension(*a.subscripts[d], *b.subscripts[d], common_chain);
    switch (v.answer) {
      case DepAnswer::kIndependent:
        out.answer = DepAnswer::kIndependent;
        return out;
      case DepAnswer::kDependent:
        if (v.level && v.distance) {
          auto& slot = out.distance[*v.level];
          if (slot.has_value() && *slot != *v.distance) {
            // Two dimensions demand different distances at one level: the
            // system has no solution.
            out.answer = DepAnswer::kIndependent;
            return out;
          }
          slot = *v.distance;
        }
        break;
      case DepAnswer::kMaybe:
        any_maybe = true;
        break;
    }
  }

  out.answer = any_maybe ? DepAnswer::kMaybe : DepAnswer::kDependent;
  return out;
}

std::vector<Dependence> compute_dependences(const ir::Loop& /*root*/,
                                            const std::vector<ArrayRef>& refs) {
  std::vector<Dependence> out;
  for (std::size_t x = 0; x < refs.size(); ++x) {
    for (std::size_t y = x; y < refs.size(); ++y) {
      const ArrayRef& a = refs[x];
      const ArrayRef& b = refs[y];
      if (a.array != b.array) continue;
      if (a.kind == RefKind::kRead && b.kind == RefKind::kRead) continue;

      // Common enclosing prefix (pointer identity).
      std::size_t common = 0;
      while (common < a.enclosing.size() && common < b.enclosing.size() &&
             a.enclosing[common] == b.enclosing[common]) {
        ++common;
      }

      PairTest t = test_pair(a, b, common);
      if (t.answer == DepAnswer::kIndependent) continue;

      // Self-pair whose only solution is the same instance: not a
      // dependence. (All distances known zero and it is literally the same
      // reference.)
      const bool all_zero = std::all_of(
          t.distance.begin(), t.distance.end(),
          [](const auto& d) { return d.has_value() && *d == 0; });
      if (x == y && all_zero) continue;

      Dependence dep;
      dep.src_ref = x;
      dep.dst_ref = y;
      dep.answer = t.answer;

      // Direction normalization: when the full distance vector is known and
      // its first nonzero entry is negative, the true dependence runs from
      // the later reference to the earlier one — swap endpoints and negate.
      bool fully_known = true;
      int lead_sign = 0;
      for (const auto& d : t.distance) {
        if (!d.has_value()) {
          fully_known = false;
          break;
        }
        if (lead_sign == 0 && *d != 0) lead_sign = *d > 0 ? 1 : -1;
      }
      if (fully_known && lead_sign < 0) {
        std::swap(dep.src_ref, dep.dst_ref);
        for (auto& d : t.distance) d = -*d;
      }
      const ArrayRef& src = refs[dep.src_ref];
      const ArrayRef& dst = refs[dep.dst_ref];
      dep.kind = src.kind == RefKind::kWrite && dst.kind == RefKind::kWrite
                     ? DepKind::kOutput
                 : src.kind == RefKind::kWrite ? DepKind::kFlow
                                               : DepKind::kAnti;
      dep.common.assign(a.enclosing.begin(),
                        a.enclosing.begin() + static_cast<std::ptrdiff_t>(common));
      dep.distance = std::move(t.distance);
      out.push_back(std::move(dep));
    }
  }
  return out;
}

std::vector<Dependence> compute_dependences(const ir::Loop& root) {
  return compute_dependences(root, collect_array_refs(root));
}

}  // namespace coalesce::analysis
