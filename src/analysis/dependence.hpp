// Data-dependence testing between array references.
//
// Implements the classical test hierarchy the paper's compiler setting
// assumes (Parafrase-style): per-dimension ZIV / strong-SIV / weak-zero-SIV
// / weak-crossing-SIV exact tests, with GCD and Banerjee range tests as the
// conservative backstop for MIV subscripts (docs/ANALYSIS.md walks the
// hierarchy). Results are *sound for parallelization*: kIndependent is only
// returned when independence is proven; anything unproven stays kMaybe and
// blocks DOALL marking.
//
// Distance vectors are computed over the loops common to both references
// (outermost first). Each entry is either an exact iteration distance or
// "unknown" (std::nullopt), which downstream legality checks treat as
// possibly-any-value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/subscript.hpp"

namespace coalesce::analysis {

enum class DepAnswer : std::uint8_t {
  kIndependent,  ///< proven: no two instances conflict
  kDependent,    ///< proven dependence with known distances
  kMaybe,        ///< not disproven; must be assumed
};

enum class DepKind : std::uint8_t {
  kFlow,    ///< write then read
  kAnti,    ///< read then write
  kOutput,  ///< write then write
};

[[nodiscard]] const char* to_string(DepAnswer a) noexcept;
[[nodiscard]] const char* to_string(DepKind k) noexcept;

/// A (possibly unproven) dependence between two references.
struct Dependence {
  std::size_t src_ref;  ///< index into the collect_array_refs() vector
  std::size_t dst_ref;
  DepKind kind;
  DepAnswer answer;  ///< kDependent or kMaybe (kIndependent pairs dropped)
  /// Loops common to both references, outermost first.
  std::vector<const ir::Loop*> common;
  /// Per-common-loop distance, aligned with `common`. nullopt = unknown.
  /// Fully-known vectors are direction-normalized (first nonzero entry
  /// positive, src/dst swapped accordingly); vectors with unknown entries
  /// keep computed signs, and legality checks use only zero/nonzero-ness.
  std::vector<std::optional<std::int64_t>> distance;

  /// True when the dependence could be carried by common loop `level`
  /// (0-based, outermost first): every outer entry could be zero and the
  /// entry at `level` could be nonzero.
  [[nodiscard]] bool may_be_carried_at(std::size_t level) const;

  /// True when every distance entry is known zero (loop-independent).
  [[nodiscard]] bool is_loop_independent() const;

  /// Classic direction-vector rendering aligned with `common`: '<' for a
  /// positive distance (source iteration earlier), '=' for zero, '>' for
  /// negative, '*' for unknown. E.g. "(=, <)" or "(=, =, *)".
  [[nodiscard]] std::string direction_string() const;
};

/// Result of testing one reference pair.
struct PairTest {
  DepAnswer answer = DepAnswer::kMaybe;
  std::vector<std::optional<std::int64_t>> distance;
};

/// Tests one pair of references to the same array. `common` is the number of
/// shared enclosing loops (shared prefix of both chains).
[[nodiscard]] PairTest test_pair(const ArrayRef& a, const ArrayRef& b,
                                 std::size_t common);

/// All dependences among the array references of a loop tree. Pairs proven
/// independent are omitted; exact dependences are direction-normalized so
/// the first unknown-or-nonzero distance entry is positive (or the pair is
/// loop-independent in statement order).
[[nodiscard]] std::vector<Dependence> compute_dependences(
    const ir::Loop& root, const std::vector<ArrayRef>& refs);

/// Convenience overload that collects the refs itself.
[[nodiscard]] std::vector<Dependence> compute_dependences(const ir::Loop& root);

}  // namespace coalesce::analysis
