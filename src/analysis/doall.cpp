#include "analysis/doall.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::analysis {

using ir::Loop;
using ir::LoopNest;
using ir::VarId;

const LoopVerdict* ParallelismReport::find(const ir::Loop* loop) const {
  for (const auto& v : loops) {
    if (v.loop == loop) return &v;
  }
  return nullptr;
}

namespace {

enum class Touch { kNone, kAssignFirst, kReadFirst };

Touch first_touch_stmt(const ir::Stmt& stmt, VarId s);

Touch first_touch_body(const std::vector<ir::Stmt>& body, VarId s) {
  for (const ir::Stmt& stmt : body) {
    const Touch t = first_touch_stmt(stmt, s);
    if (t != Touch::kNone) return t;
  }
  return Touch::kNone;
}

Touch first_touch_stmt(const ir::Stmt& stmt, VarId s) {
  if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    if (ir::references((*guard)->condition, s)) return Touch::kReadFirst;
    const Touch inner = first_touch_body((*guard)->then_body, s);
    if (inner == Touch::kReadFirst) return Touch::kReadFirst;
    // An assignment under a guard may not execute: it cannot establish
    // "assigned before read" for statements after the guard.
    return Touch::kNone;
  }
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    // Reads happen before the write: rhs first, then lhs subscripts.
    if (ir::references(assign->rhs, s)) return Touch::kReadFirst;
    if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
      for (const auto& sub : access->subscripts) {
        if (ir::references(sub, s)) return Touch::kReadFirst;
      }
    }
    if (const auto* scalar = std::get_if<VarId>(&assign->lhs)) {
      if (*scalar == s) return Touch::kAssignFirst;
    }
    return Touch::kNone;
  }
  const auto& loop = std::get<ir::LoopPtr>(stmt);
  if (ir::references(loop->lower, s) || ir::references(loop->upper, s))
    return Touch::kReadFirst;
  const Touch inner = first_touch_body(loop->body, s);
  if (inner == Touch::kReadFirst) return Touch::kReadFirst;
  if (inner == Touch::kAssignFirst) {
    // The loop might execute zero times, in which case its assignment never
    // happens; only a provably non-empty loop establishes "assigned".
    auto trips = ir::constant_trip_count(*loop);
    return (trips.has_value() && *trips >= 1) ? Touch::kAssignFirst
                                              : Touch::kNone;
  }
  return Touch::kNone;
}

void collect_loops_body(const std::vector<ir::Stmt>& body,
                        std::vector<const Loop*>& out);

void collect_loops(const Loop& loop, std::vector<const Loop*>& out) {
  out.push_back(&loop);
  collect_loops_body(loop.body, out);
}

void collect_loops_body(const std::vector<ir::Stmt>& body,
                        std::vector<const Loop*>& out) {
  for (const ir::Stmt& s : body) {
    if (const auto* inner = std::get_if<ir::LoopPtr>(&s)) {
      collect_loops(**inner, out);
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      collect_loops_body((*guard)->then_body, out);
    }
  }
}

}  // namespace

bool scalar_privatizable(const Loop& loop, VarId s) {
  return first_touch_body(loop.body, s) != Touch::kReadFirst;
}

ParallelismReport analyze_parallelism(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  ParallelismReport report;

  const std::vector<ArrayRef> refs = collect_array_refs(*nest.root);
  report.dependences = compute_dependences(*nest.root, refs);

  std::vector<const Loop*> loops;
  collect_loops(*nest.root, loops);

  for (const Loop* loop : loops) {
    LoopVerdict verdict;
    verdict.loop = loop;

    // (a) No array dependence carried at this loop's level.
    for (const Dependence& dep : report.dependences) {
      for (std::size_t l = 0; l < dep.common.size(); ++l) {
        if (dep.common[l] != loop) continue;
        if (dep.may_be_carried_at(l)) {
          const ir::VarId array = refs[dep.src_ref].array;
          verdict.blockers.push_back(support::format(
              "%s dependence on %s may be carried at this level (%s)",
              to_string(dep.kind), nest.symbols.name(array).c_str(),
              to_string(dep.answer)));
        }
        break;  // a loop appears at most once in a chain
      }
    }

    // (b) Scalars written in the body must be privatizable.
    for (VarId s : ir::scalars_written(*loop)) {
      if (nest.symbols.kind(s) != ir::SymbolKind::kScalar) continue;
      if (!scalar_privatizable(*loop, s)) {
        verdict.blockers.push_back(support::format(
            "scalar %s is read before assigned within an iteration",
            nest.symbols.name(s).c_str()));
      }
    }

    verdict.parallelizable = verdict.blockers.empty();
    report.loops.push_back(std::move(verdict));
  }
  return report;
}

namespace {

void mark_body(std::vector<ir::Stmt>& body, const ParallelismReport& report);

void mark_loops(Loop& loop, const ParallelismReport& report) {
  const LoopVerdict* verdict = report.find(&loop);
  COALESCE_ASSERT(verdict != nullptr);
  loop.parallel = verdict->parallelizable;
  mark_body(loop.body, report);
}

void mark_body(std::vector<ir::Stmt>& body, const ParallelismReport& report) {
  for (ir::Stmt& s : body) {
    if (auto* inner = std::get_if<ir::LoopPtr>(&s)) {
      mark_loops(**inner, report);
    } else if (auto* guard = std::get_if<ir::IfPtr>(&s)) {
      mark_body((*guard)->then_body, report);
    }
  }
}

}  // namespace

ParallelismReport analyze_and_mark(LoopNest& nest) {
  ParallelismReport report = analyze_parallelism(nest);
  mark_loops(*nest.root, report);
  return report;
}

}  // namespace coalesce::analysis
