// DOALL legality: which loops of a nest may be executed fully in parallel.
//
// A loop is marked DOALL when (a) no array dependence may be carried at its
// level and (b) every scalar written in its body is provably privatizable
// (assigned before any use within an iteration) — the scalar-expansion
// precondition. Anything unproven keeps the loop sequential; the analysis is
// sound for parallelization, not complete.
#pragma once

#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "ir/stmt.hpp"

namespace coalesce::analysis {

/// Verdict for one loop of the tree (preorder).
struct LoopVerdict {
  const ir::Loop* loop = nullptr;
  bool parallelizable = false;
  /// Human-readable reasons when not parallelizable (empty otherwise).
  std::vector<std::string> blockers;
};

struct ParallelismReport {
  std::vector<LoopVerdict> loops;  ///< preorder over the tree
  std::vector<Dependence> dependences;

  [[nodiscard]] const LoopVerdict* find(const ir::Loop* loop) const;
};

/// Analyzes the tree without modifying it.
[[nodiscard]] ParallelismReport analyze_parallelism(const ir::LoopNest& nest);

/// Analyzes and sets each loop's `parallel` flag to the proven verdict
/// (overwriting any prior value). Returns the report.
ParallelismReport analyze_and_mark(ir::LoopNest& nest);

/// True when scalar `s` is privatizable in `loop`: along every control path
/// of one iteration, `s` is assigned before it is read. (Conservative
/// textual-order check over the loop's body, recursing into inner loops.)
[[nodiscard]] bool scalar_privatizable(const ir::Loop& loop, ir::VarId s);

}  // namespace coalesce::analysis
