#include "analysis/lint.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "analysis/doall.hpp"
#include "ir/verify.hpp"
#include "support/assert.hpp"
#include "support/int_math.hpp"
#include "support/strings.hpp"

namespace coalesce::analysis {

using ir::ExprRef;
using ir::Loop;
using ir::VarId;
using support::i64;

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<LintRule>& lint_rules() {
  static const std::vector<LintRule> kRules = {
      {"ir-invalid", Severity::kError,
       "the IR violates a structural invariant (dangling symbol, bad arity, "
       "malformed loop)"},
      {"div-by-zero", Severity::kError,
       "a constant zero divisor reaches floor/ceil division or modulus"},
      {"product-overflow", Severity::kError,
       "the coalesced trip count prod N_k of a DOALL band exceeds INT64_MAX, "
       "so index recovery and MagicDiv decode would overflow"},
      {"box-overflow", Severity::kError,
       "the rectangular bounding box of a non-rectangular band exceeds "
       "INT64_MAX points"},
      {"unprivatized-scalar", Severity::kError,
       "a loop marked doall writes a scalar that is read before assigned: a "
       "data race under parallel execution"},
      {"race-carried-dependence", Severity::kError,
       "a proven dependence is carried by a loop planned for parallel "
       "execution: a definite data race"},
      {"doall-unproven", Severity::kWarning,
       "a loop is marked doall but the dependence analyzer cannot prove its "
       "iterations independent"},
      {"maybe-dependence", Severity::kWarning,
       "an unproven dependence may be carried by a loop about to run "
       "parallel; the direction vector shows where independence was lost"},
      {"nonperfect-band", Severity::kWarning,
       "imperfect nesting caps the coalescible band depth; distribution "
       "could deepen it"},
      {"nonrectangular-band", Severity::kWarning,
       "an inner band bound reads an outer band variable; plain coalescing "
       "will reject the nest"},
      {"nonconstant-bounds", Severity::kWarning,
       "a band bound does not fold to a constant, so the coalesced geometry "
       "cannot be computed statically"},
      {"zero-trip-band", Severity::kWarning,
       "a loop inside a coalescible band has constant bounds with zero "
       "iterations"},
      {"missed-parallelism", Severity::kNote,
       "a loop marked do is provably DOALL"},
  };
  return kRules;
}

namespace {

const LintRule* rule(const char* id) {
  for (const LintRule& r : lint_rules()) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  COALESCE_ASSERT_MSG(false, "unknown lint rule id");
  return nullptr;
}

std::size_t rule_index(const LintRule* r) {
  return static_cast<std::size_t>(r - lint_rules().data());
}

struct Interval {
  i64 lo = 0;
  i64 hi = 0;
};

enum class RangeKind { kOk, kNotAffine, kOverflow };

struct RangeResult {
  RangeKind kind = RangeKind::kNotAffine;
  Interval range{0, 0};
};

/// Value range of an affine expression given value ranges of its variables.
/// kNotAffine when the tree is not affine or reads a variable without a
/// known range; kOverflow when a bound exceeds int64.
RangeResult affine_range(const ExprRef& e,
                         const std::map<VarId, Interval>& ranges) {
  const auto form = ir::to_affine(e);
  if (!form.has_value()) return {};
  Interval out{form->constant, form->constant};
  for (const auto& [v, c] : form->coeffs) {
    const auto it = ranges.find(v);
    if (it == ranges.end()) return {};
    const Interval r = it->second;
    const auto a = support::checked_mul(c, c >= 0 ? r.lo : r.hi);
    const auto b = support::checked_mul(c, c >= 0 ? r.hi : r.lo);
    const auto lo = a ? support::checked_add(out.lo, *a) : std::nullopt;
    const auto hi = b ? support::checked_add(out.hi, *b) : std::nullopt;
    if (!lo.has_value() || !hi.has_value()) {
      return {RangeKind::kOverflow, {0, 0}};
    }
    out = Interval{*lo, *hi};
  }
  return {RangeKind::kOk, out};
}

class Linter {
 public:
  Linter(const ir::LoopNest& nest, const LintOptions& options)
      : nest_(nest), options_(options) {}

  std::vector<Diagnostic> run() {
    // Structural damage first; semantic analyses assume a valid tree, so a
    // broken one stops here with only the verifier findings.
    bool structurally_broken = false;
    for (const ir::VerifyIssue& issue : ir::verify_nest(nest_)) {
      const bool zero_div =
          issue.message.find("zero divisor") != std::string::npos;
      emit(zero_div ? "div-by-zero" : "ir-invalid", issue.message, issue.loc);
      // A zero divisor is an evaluation hazard, not structural damage; the
      // semantic passes below stay safe to run on it.
      if (!zero_div) structurally_broken = true;
    }
    if (!structurally_broken) {
      check_parallel_flags();
      check_bands(*nest_.root, /*parent_chains=*/false);
    }

    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return rule_index(a.rule) < rule_index(b.rule);
                     });
    if (!options_.include_notes) {
      std::erase_if(diags_, [](const Diagnostic& d) {
        return d.severity == Severity::kNote;
      });
    }
    return std::move(diags_);
  }

 private:
  void emit(const char* id, std::string message, ir::SourceLoc loc,
            std::string fixit = {}, std::vector<RelatedLocation> related = {}) {
    const LintRule* r = rule(id);
    diags_.push_back(Diagnostic{r, r->severity, std::move(message), loc,
                                std::move(fixit), std::move(related)});
  }

  const char* name(VarId v) const { return nest_.symbols.name(v).c_str(); }

  // ---- doall flags vs. the analyzer --------------------------------------

  void check_parallel_flags() {
    const ParallelismReport report = analyze_parallelism(nest_);
    for (const LoopVerdict& verdict : report.loops) {
      const Loop& loop = *verdict.loop;
      if (loop.parallel && !verdict.parallelizable) {
        std::vector<std::string> dep_blockers;
        for (const std::string& blocker : verdict.blockers) {
          // Scalar-privatization blockers get their own (error) rule; the
          // rest are unproven array dependences.
          if (blocker.find("read before assigned") != std::string::npos) {
            emit("unprivatized-scalar",
                 support::format("doall '%s': %s", name(loop.var),
                                 blocker.c_str()),
                 loop.loc,
                 "privatize with --expand-scalars (scalar expansion) or "
                 "mark the loop 'do'");
          } else {
            dep_blockers.push_back(blocker);
          }
        }
        if (!dep_blockers.empty()) {
          emit("doall-unproven",
               support::format("doall '%s' is not provably parallel: %s",
                               name(loop.var),
                               support::join(dep_blockers, "; ").c_str()),
               loop.loc,
               "make the dependence explicit or mark the loop 'do'");
        }
      } else if (!loop.parallel && verdict.parallelizable) {
        emit("missed-parallelism",
             support::format("loop '%s' is provably DOALL but marked 'do'",
                             name(loop.var)),
             loop.loc, "mark the loop 'doall' (or run --analyze)");
      }
    }

    // Per-dependence detail: every unproven (kMaybe) dependence that may be
    // carried by a loop planned parallel, with its direction vector and both
    // references attached as related locations.
    const std::vector<ArrayRef> refs = collect_array_refs(*nest_.root);
    for (const Dependence& dep : report.dependences) {
      if (dep.answer != DepAnswer::kMaybe) continue;
      const Loop* carrier = nullptr;
      std::size_t carrier_level = 0;
      for (std::size_t l = 0; l < dep.common.size(); ++l) {
        if (dep.common[l]->parallel && dep.may_be_carried_at(l)) {
          carrier = dep.common[l];
          carrier_level = l;
          break;
        }
      }
      if (carrier == nullptr) continue;
      const ArrayRef& src = refs[dep.src_ref];
      const ArrayRef& dst = refs[dep.dst_ref];
      std::vector<RelatedLocation> related;
      for (const ArrayRef* ref : {&src, &dst}) {
        if (ref->enclosing.empty()) continue;
        related.push_back(RelatedLocation{
            ref->enclosing.back()->loc,
            support::format("%s of '%s' in statement %zu",
                            ref->kind == RefKind::kWrite ? "write" : "read",
                            name(ref->array), ref->stmt_ordinal)});
      }
      emit("maybe-dependence",
           support::format(
               "unproven %s dependence on '%s' with direction %s may be "
               "carried by doall '%s' (level %zu)",
               to_string(dep.kind), name(src.array),
               dep.direction_string().c_str(), name(carrier->var),
               carrier_level),
           carrier->loc,
           "prove independence (affine subscripts, constant bounds) or mark "
           "the loop 'do'",
           std::move(related));
    }
  }

  // ---- band geometry: overflow and legality ------------------------------

  /// Walks every loop; runs band checks on each maximal parallel band head
  /// (a parallel loop that is not the perfectly-nested child of another
  /// parallel loop).
  void check_bands(const Loop& loop, bool parent_chains) {
    if (loop.parallel && !parent_chains) check_band(loop);
    const bool chains = loop.parallel && loop.body.size() == 1;
    for (const ir::Stmt& s : loop.body) {
      visit_stmt(s, chains);
    }
  }

  void visit_stmt(const ir::Stmt& s, bool parent_chains) {
    if (const auto* inner = std::get_if<ir::LoopPtr>(&s)) {
      check_bands(**inner, parent_chains);
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      for (const ir::Stmt& t : (*guard)->then_body) {
        visit_stmt(t, /*parent_chains=*/false);
      }
    }
  }

  void check_band(const Loop& head) {
    const std::vector<const Loop*> band = ir::parallel_band(head);

    // Could distribution deepen this band? The deepest band loop holding
    // several statements among them a parallel loop is the classic
    // imperfect-nest shape coalescing wants split first.
    const Loop& tail = *band.back();
    if (tail.body.size() > 1) {
      for (const ir::Stmt& s : tail.body) {
        const auto* inner = std::get_if<ir::LoopPtr>(&s);
        if (inner != nullptr && (*inner)->parallel) {
          emit("nonperfect-band",
               support::format(
                   "doall '%s' mixes statements with the parallel loop "
                   "'%s'; the coalescible band stops at depth %zu",
                   name(tail.var), name((*inner)->var), band.size()),
               tail.loc,
               "distribute first (--make-perfect) to deepen the band");
          break;
        }
      }
    }
    if (band.size() < 2) return;  // nothing to coalesce; geometry rules moot

    // Per-level geometry. Outer levels feed value ranges to inner affine
    // bounds so triangular bands get an exact bounding box.
    std::map<VarId, Interval> ranges;
    std::vector<i64> box_extents;
    bool box_known = true;
    bool rectangular = true;
    for (std::size_t k = 0; k < band.size(); ++k) {
      const Loop& level = *band[k];
      const auto lo_const = ir::as_constant(ir::simplify(level.lower));
      const auto hi_const = ir::as_constant(ir::simplify(level.upper));

      bool reads_outer = false;
      for (std::size_t j = 0; j < k; ++j) {
        if (ir::references(level.lower, band[j]->var) ||
            ir::references(level.upper, band[j]->var)) {
          reads_outer = true;
          break;
        }
      }
      if (reads_outer) {
        rectangular = false;
        emit("nonrectangular-band",
             support::format("bounds of doall '%s' read an outer band "
                             "variable; plain coalescing will reject this "
                             "nest",
                             name(level.var)),
             level.loc,
             "coalesce over the bounding box with --guarded");
      }

      Interval lo_range, hi_range;
      if (lo_const.has_value() && hi_const.has_value()) {
        lo_range = Interval{*lo_const, *lo_const};
        hi_range = Interval{*hi_const, *hi_const};
      } else {
        const RangeResult lo = affine_range(level.lower, ranges);
        const RangeResult hi = affine_range(level.upper, ranges);
        if (lo.kind == RangeKind::kOverflow ||
            hi.kind == RangeKind::kOverflow) {
          emit("box-overflow",
               support::format("bounding-box bounds of doall '%s' overflow "
                               "int64",
                               name(level.var)),
               level.loc);
          box_known = false;
          continue;
        }
        if (lo.kind != RangeKind::kOk || hi.kind != RangeKind::kOk) {
          emit("nonconstant-bounds",
               support::format("bounds of doall '%s' do not fold to "
                               "constants; the coalesced geometry cannot "
                               "be computed statically",
                               name(level.var)),
               level.loc,
               "bind parameters to constants before coalescing");
          box_known = false;
          continue;
        }
        lo_range = lo.range;
        hi_range = hi.range;
      }

      // The level's values fall in [lo_range.lo, hi_range.hi]: the
      // bounding-box extent over all outer iterations.
      ranges[level.var] = Interval{lo_range.lo, hi_range.hi};
      const auto width = support::checked_sub(hi_range.hi, lo_range.lo);
      if (!width.has_value()) {
        emit("box-overflow",
             support::format("value range of doall '%s' spans more than "
                             "int64",
                             name(level.var)),
             level.loc);
        box_known = false;
        continue;
      }
      const i64 trips = support::trip_count(lo_range.lo, hi_range.hi,
                                            level.step);
      if (trips == 0) {
        emit("zero-trip-band",
             support::format("doall '%s' in a coalescible band has zero "
                             "iterations",
                             name(level.var)),
             level.loc, "drop the empty loop");
        box_known = false;
        continue;
      }
      box_extents.push_back(trips);
    }

    if (!box_known || box_extents.size() != band.size()) return;
    const auto product = support::checked_product(box_extents);
    if (!product.has_value()) {
      std::vector<std::string> parts;
      parts.reserve(box_extents.size());
      for (i64 e : box_extents) parts.push_back(std::to_string(e));
      emit(rectangular ? "product-overflow" : "box-overflow",
           support::format(
               "coalesced trip count %s of the band at doall '%s' exceeds "
               "INT64_MAX; index recovery and MagicDiv decode require the "
               "total to fit in int64",
               support::join(parts, " * ").c_str(), name(head.var)),
           head.loc,
           "coalesce fewer levels (--collapse=K) so the product fits");
    }
  }

  const ir::LoopNest& nest_;
  const LintOptions& options_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> lint_nest(const ir::LoopNest& nest,
                                  const LintOptions& options) {
  COALESCE_ASSERT(nest.root != nullptr);
  return Linter(nest, options).run();
}

std::vector<Diagnostic> lint_program(const ir::Program& program,
                                     const LintOptions& options) {
  std::vector<Diagnostic> out;
  for (const ir::LoopPtr& root : program.roots) {
    auto piece = lint_nest(ir::LoopNest{program.symbols, root}, options);
    out.insert(out.end(), std::make_move_iterator(piece.begin()),
               std::make_move_iterator(piece.end()));
  }
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

// ---- rendering ------------------------------------------------------------

namespace {

std::string location_prefix(std::string_view file, ir::SourceLoc loc) {
  std::string out(file.empty() ? "<input>" : file);
  if (loc.valid()) {
    out += support::format(":%d:%d", loc.line, loc.column);
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_text(const std::vector<Diagnostic>& diags,
                        std::string_view file) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += support::format("%s: %s: %s [%s]\n",
                           location_prefix(file, d.loc).c_str(),
                           to_string(d.severity), d.message.c_str(),
                           d.rule->id);
    if (!d.fixit.empty()) {
      out += support::format("  fix-it: %s\n", d.fixit.c_str());
    }
    for (const RelatedLocation& rel : d.related) {
      out += support::format("  related: %s: %s\n",
                             location_prefix(file, rel.loc).c_str(),
                             rel.message.c_str());
    }
  }
  if (diags.empty()) out = "no findings\n";
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (std::size_t k = 0; k < diags.size(); ++k) {
    const Diagnostic& d = diags[k];
    if (k > 0) out += ",";
    out += support::format(
        "\n  {\"rule\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\", "
        "\"line\": %d, \"column\": %d, \"fixit\": \"%s\"}",
        d.rule->id, to_string(d.severity),
        json_escape(d.message).c_str(), d.loc.line, d.loc.column,
        json_escape(d.fixit).c_str());
  }
  out += diags.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string render_sarif(const std::vector<Diagnostic>& diags,
                         std::string_view file) {
  const std::string uri(file.empty() ? "<stdin>" : file);
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\n"
      "      \"name\": \"coalesce-lint\",\n"
      "      \"rules\": [";
  const auto& rules = lint_rules();
  for (std::size_t k = 0; k < rules.size(); ++k) {
    if (k > 0) out += ",";
    out += support::format(
        "\n        {\"id\": \"%s\", \"shortDescription\": {\"text\": "
        "\"%s\"}, \"defaultConfiguration\": {\"level\": \"%s\"}}",
        rules[k].id, json_escape(rules[k].summary).c_str(),
        to_string(rules[k].severity));
  }
  out +=
      "\n      ]\n"
      "    }},\n"
      "    \"results\": [";
  for (std::size_t k = 0; k < diags.size(); ++k) {
    const Diagnostic& d = diags[k];
    if (k > 0) out += ",";
    std::string region;
    if (d.loc.valid()) {
      region = support::format(", \"region\": {\"startLine\": %d, "
                               "\"startColumn\": %d}",
                               d.loc.line, d.loc.column);
    }
    std::string text = d.message;
    if (!d.fixit.empty()) text += " (fix-it: " + d.fixit + ")";
    std::string related;
    if (!d.related.empty()) {
      related = ", \"relatedLocations\": [";
      for (std::size_t r = 0; r < d.related.size(); ++r) {
        const RelatedLocation& rel = d.related[r];
        if (r > 0) related += ",";
        std::string rel_region;
        if (rel.loc.valid()) {
          rel_region = support::format(", \"region\": {\"startLine\": %d, "
                                       "\"startColumn\": %d}",
                                       rel.loc.line, rel.loc.column);
        }
        related += support::format(
            "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
            "\"%s\"}%s}, \"message\": {\"text\": \"%s\"}}",
            json_escape(uri).c_str(), rel_region.c_str(),
            json_escape(rel.message).c_str());
      }
      related += "]";
    }
    out += support::format(
        "\n      {\"ruleId\": \"%s\", \"ruleIndex\": %zu, \"level\": "
        "\"%s\", \"message\": {\"text\": \"%s\"}, \"locations\": "
        "[{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
        "\"%s\"}%s}}]%s}",
        d.rule->id, rule_index(d.rule), to_string(d.severity),
        json_escape(text).c_str(), json_escape(uri).c_str(),
        region.c_str(), related.c_str());
  }
  out +=
      "\n    ]\n"
      "  }]\n"
      "}\n";
  return out;
}

}  // namespace coalesce::analysis
