// coalesce-lint: the overflow & legality linter.
//
// The coalescing transformation is only sound when the nest really is a
// perfect rectangular DOALL band and the coalesced trip count N = prod N_k
// (plus the ceil/floor index-recovery arithmetic and the MagicDiv dividends
// derived from it) stays within machine-integer range. The transforms check
// what they must to refuse illegal requests; this linter goes further and
// turns every unprovable precondition into a structured Diagnostic — rule
// id, severity, source span from the frontend, optional fix-it — instead of
// a late error or silent UB.
//
// Rules (the catalog lint_rules() returns, also in docs/LINTING.md):
//
//   ir-invalid              error    structural verifier violation
//   div-by-zero             error    constant zero divisor reaches eval
//   product-overflow        error    prod N_k of a DOALL band > INT64_MAX
//   box-overflow            error    guarded bounding box > INT64_MAX
//   unprivatized-scalar     error    parallel loop races on a scalar
//   race-carried-dependence error    proven dependence carried by a loop
//                                    planned parallel (race.hpp emits it)
//   doall-unproven          warning  'doall' flag the analyzer cannot prove
//   maybe-dependence        warning  unproven dependence on a loop about to
//                                    run parallel, with direction vector and
//                                    both references as related locations
//   nonperfect-band         warning  imperfect nesting caps the band depth
//   nonrectangular-band     warning  inner bounds read outer band variables
//   nonconstant-bounds      warning  band bounds do not fold to constants
//   zero-trip-band          warning  empty loop inside a coalescible band
//   missed-parallelism      note     provably-DOALL loop marked 'do'
//
// Output: render_text for humans, render_json for machines, render_sarif
// for code-scanning UIs (SARIF 2.1.0). The coalescec driver surfaces all
// three behind --lint / --lint-format and exits non-zero on any
// error-severity finding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/stmt.hpp"

namespace coalesce::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// One lint rule: stable id, default severity, one-line summary. The
/// catalog drives SARIF rule metadata and the docs.
struct LintRule {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The full rule catalog, in the order listed above.
[[nodiscard]] const std::vector<LintRule>& lint_rules();

/// A secondary source position attached to a finding — e.g. the two array
/// references of a dependence. Rendered as SARIF relatedLocations.
struct RelatedLocation {
  ir::SourceLoc loc;
  std::string message;  ///< role of this location ("source reference", ...)
};

/// One finding. `rule` points into lint_rules(); `loc` is the offending
/// loop's source position when the program was parsed from text.
struct Diagnostic {
  const LintRule* rule = nullptr;
  Severity severity = Severity::kWarning;  ///< may differ from rule default
  std::string message;
  ir::SourceLoc loc;
  std::string fixit;  ///< suggested remedy ("" when none applies)
  std::vector<RelatedLocation> related;  ///< secondary positions (may be empty)
};

struct LintOptions {
  bool include_notes = true;  ///< false drops note-severity findings
};

/// Lints one nest / every root of a program. Diagnostics come out grouped
/// by rule in catalog order, then in preorder over the tree.
[[nodiscard]] std::vector<Diagnostic> lint_nest(const ir::LoopNest& nest,
                                                const LintOptions& options = {});
[[nodiscard]] std::vector<Diagnostic> lint_program(
    const ir::Program& program, const LintOptions& options = {});

/// True when any finding has error severity (the CLI's exit-code predicate).
[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diags);

/// "file:line:col: severity: message [rule-id]" lines plus fix-it notes.
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diags,
                                      std::string_view file);

/// JSON array of {rule, severity, message, line, column, fixit} objects.
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diags);

/// SARIF 2.1.0 log with the rule catalog as tool.driver.rules.
[[nodiscard]] std::string render_sarif(const std::vector<Diagnostic>& diags,
                                       std::string_view file);

}  // namespace coalesce::analysis
