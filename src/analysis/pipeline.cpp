#include "analysis/pipeline.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "analysis/race.hpp"
#include "ir/verify.hpp"
#include "support/assert.hpp"

namespace coalesce::analysis {

namespace {

const LintRule* find_rule(const char* id) {
  for (const LintRule& r : lint_rules()) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  COALESCE_ASSERT_MSG(false, "unknown lint rule id");
  return nullptr;
}

std::vector<Diagnostic> run_verify(const ir::Program& program) {
  std::vector<Diagnostic> out;
  const LintRule* rule = find_rule("ir-invalid");
  for (const ir::VerifyIssue& issue : ir::verify_program(program)) {
    out.push_back(Diagnostic{rule, rule->severity, issue.message, issue.loc,
                             /*fixit=*/{}, /*related=*/{}});
  }
  return out;
}

}  // namespace

std::vector<AnalysisPass> default_analysis_passes(
    const LintOptions& lint_options) {
  std::vector<AnalysisPass> passes;
  passes.push_back(AnalysisPass{"verify", run_verify});
  passes.push_back(AnalysisPass{
      "lint", [lint_options](const ir::Program& program) {
        return lint_program(program, lint_options);
      }});
  passes.push_back(AnalysisPass{"race", race_diagnostics});
  return passes;
}

PipelineResult run_analysis_pipeline(const ir::Program& program,
                                     const std::vector<AnalysisPass>& passes) {
  PipelineResult result;
  for (const AnalysisPass& pass : passes) {
    std::vector<Diagnostic> found = pass.run(program);
    const bool failed = has_errors(found);
    // Passes overlap on purpose (lint and race both speak maybe-dependence);
    // keep the first copy of any identical finding.
    for (Diagnostic& d : found) {
      const bool dup = std::any_of(
          result.diagnostics.begin(), result.diagnostics.end(),
          [&d](const Diagnostic& prior) {
            return prior.rule == d.rule && prior.message == d.message &&
                   prior.loc.line == d.loc.line &&
                   prior.loc.column == d.loc.column;
          });
      if (!dup) result.diagnostics.push_back(std::move(d));
    }
    if (failed) {
      result.ok = false;
      result.failed_pass = pass.name;
      break;
    }
  }
  return result;
}

PipelineResult run_analysis_pipeline(const ir::Program& program,
                                     const LintOptions& lint_options) {
  return run_analysis_pipeline(program, default_analysis_passes(lint_options));
}

}  // namespace coalesce::analysis
