// The static-analysis pass pipeline.
//
// Every consumer that vets a program before acting on it (the coalescec
// driver, the service admission gate, a future JIT) runs the same ordered
// pass list instead of hand-rolling its own verify-then-lint sequence:
//
//   verify  — structural invariants (ir/verify.hpp), as ir-invalid findings
//   lint    — overflow & legality linter (analysis/lint.hpp)
//   race    — planned parallelism vs. the dependence graph (analysis/race.hpp)
//
// The pipeline stops at the first pass that produces an error-severity
// finding: later passes assume the earlier ones held (lint assumes a valid
// tree, race assumes lint's scalar model), so running them on damaged input
// would only produce noise. Warnings and notes flow through and accumulate.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "ir/stmt.hpp"

namespace coalesce::analysis {

/// One named pass: inspects the program, returns findings, mutates nothing.
struct AnalysisPass {
  std::string name;
  std::function<std::vector<Diagnostic>(const ir::Program&)> run;
};

/// The default pass list (verify, lint, race), in run order.
[[nodiscard]] std::vector<AnalysisPass> default_analysis_passes(
    const LintOptions& lint_options = {});

struct PipelineResult {
  bool ok = true;             ///< no pass produced an error-severity finding
  std::string failed_pass;    ///< name of the first failing pass ("" if ok)
  std::vector<Diagnostic> diagnostics;  ///< findings of every pass that ran
};

/// Runs `passes` in order over `program`, stopping after the first pass
/// whose findings contain an error.
[[nodiscard]] PipelineResult run_analysis_pipeline(
    const ir::Program& program, const std::vector<AnalysisPass>& passes);

/// Convenience: the default pass list.
[[nodiscard]] PipelineResult run_analysis_pipeline(
    const ir::Program& program, const LintOptions& lint_options = {});

}  // namespace coalesce::analysis
