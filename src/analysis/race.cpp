#include "analysis/race.hpp"

#include <algorithm>
#include <cstring>

#include "analysis/doall.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::analysis {

using ir::Loop;

const char* to_string(RaceVerdict v) noexcept {
  switch (v) {
    case RaceVerdict::kRaceFree: return "race-free";
    case RaceVerdict::kMaybeRacy: return "maybe-racy";
    case RaceVerdict::kRacy: return "racy";
  }
  return "?";
}

RaceVerdict RaceReport::verdict() const {
  if (definite_count() > 0) return RaceVerdict::kRacy;
  return findings.empty() ? RaceVerdict::kRaceFree : RaceVerdict::kMaybeRacy;
}

std::size_t RaceReport::definite_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const RaceFinding& f) { return f.definite; }));
}

namespace {

/// Is the dependence *proven* to be carried at `level` (not merely not
/// refuted)? "Proven" here means a conflicting pair of *executed* iteration
/// instances must exist, which is strictly stronger than the dependence
/// tests' kDependent: those reason over one subscript dimension at a time
/// against a rectangular iteration space, so an answer of kDependent with an
/// unknown entry at `level` can simply mean the tests never looked at that
/// loop (e.g. the inner loop of a strip-mined band, whose bounds couple to
/// the carrier and partition the index range — no real pair crosses it).
///
/// The criterion:
///  - proven dependence, every outer distance entry known zero;
///  - neither endpoint is shielded by an if-guard;
///  - every common loop has constant bounds with >= 1 trip (uncoupled,
///    non-empty space), and every loop enclosing an endpoint *below* the
///    common prefix likewise (both instances actually execute);
///  - and either a known nonzero distance at `level` (strong-SIV proof,
///    in-range checked against constant bounds), or — the shared-cell shape —
///    both endpoints address the *same* cell, fixed while the carrier and
///    everything inside it iterate, with the carrier running >= 2 trips, so
///    at least two distinct carrier iterations must collide.
bool definitely_carried_at(const Ddg& ddg, const Dependence& dep,
                           std::size_t level) {
  if (dep.answer != DepAnswer::kDependent) return false;
  for (std::size_t l = 0; l < level; ++l) {
    if (!dep.distance[l].has_value() || *dep.distance[l] != 0) return false;
  }
  const ArrayRef& src = ddg.refs[dep.src_ref];
  const ArrayRef& dst = ddg.refs[dep.dst_ref];
  if (src.guarded || dst.guarded) return false;
  for (const Loop* loop : dep.common) {
    const auto trips = ir::constant_trip_count(*loop);
    if (!trips.has_value() || *trips < 1) return false;
  }
  for (const ArrayRef* ref : {&src, &dst}) {
    for (std::size_t l = dep.common.size(); l < ref->enclosing.size(); ++l) {
      const auto trips = ir::constant_trip_count(*ref->enclosing[l]);
      if (!trips.has_value() || *trips < 1) return false;
    }
  }
  const auto& d = dep.distance[level];
  if (d.has_value()) return *d != 0;
  const auto trips = ir::constant_trip_count(*dep.common[level]);
  if (!trips.has_value() || *trips < 2) return false;
  // Shared-cell shape: identical affine subscripts in every dimension, none
  // of which mention the carrier, any deeper common loop, or any loop below
  // the common prefix of either endpoint.
  std::vector<ir::VarId> banned;
  for (std::size_t l = level; l < dep.common.size(); ++l) {
    banned.push_back(dep.common[l]->var);
  }
  for (const ArrayRef* ref : {&src, &dst}) {
    for (std::size_t l = dep.common.size(); l < ref->enclosing.size(); ++l) {
      banned.push_back(ref->enclosing[l]->var);
    }
  }
  if (src.subscripts.size() != dst.subscripts.size()) return false;
  for (std::size_t i = 0; i < src.subscripts.size(); ++i) {
    const auto& fa = src.subscripts[i];
    const auto& fb = dst.subscripts[i];
    if (!fa.has_value() || !fb.has_value() || *fa != *fb) return false;
    for (const auto& [var, coeff] : fa->coeffs) {
      if (coeff != 0 &&
          std::find(banned.begin(), banned.end(), var) != banned.end()) {
        return false;
      }
    }
  }
  return true;
}

void scan_scalars(const ir::SymbolTable& symbols, const Loop& loop,
                  std::vector<RaceFinding>& out) {
  if (loop.parallel) {
    for (ir::VarId s : ir::scalars_written(loop)) {
      if (scalar_privatizable(loop, s)) continue;
      RaceFinding f;
      f.loop = &loop;
      f.variable = s;
      f.definite = false;  // guards may shield the exposed read at runtime
      f.message = support::format(
          "scalar '%s' may be read before assigned in an iteration of "
          "doall '%s': a race on the shared cell",
          symbols.name(s).c_str(), symbols.name(loop.var).c_str());
      out.push_back(std::move(f));
    }
  }
  for (const ir::Stmt& s : loop.body) {
    if (const auto* inner = std::get_if<ir::LoopPtr>(&s)) {
      scan_scalars(symbols, **inner, out);
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      for (const ir::Stmt& t : (*guard)->then_body) {
        if (const auto* gl = std::get_if<ir::LoopPtr>(&t)) {
          scan_scalars(symbols, **gl, out);
        }
      }
    }
  }
}

const LintRule* find_rule(const char* id) {
  for (const LintRule& r : lint_rules()) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  COALESCE_ASSERT_MSG(false, "unknown lint rule id");
  return nullptr;
}

}  // namespace

RaceReport check_races(const ir::SymbolTable& symbols, const ir::Loop& root) {
  RaceReport report;
  report.ddg = build_ddg(root);

  for (std::size_t d = 0; d < report.ddg.deps.size(); ++d) {
    const Dependence& dep = report.ddg.deps[d];
    // The outermost level that is planned parallel and may carry the
    // dependence is where the race would happen: everything outside it is
    // either sequential (ordered) or provably not the carrier.
    for (std::size_t l = 0; l < dep.common.size(); ++l) {
      if (!dep.common[l]->parallel || !dep.may_be_carried_at(l)) continue;
      RaceFinding f;
      f.loop = dep.common[l];
      f.level = l;
      f.dep = d;
      f.definite = definitely_carried_at(report.ddg, dep, l);
      f.variable = report.ddg.refs[dep.src_ref].array;
      // The unproven wording matches the linter's maybe-dependence finding
      // verbatim so the pipeline can deduplicate the shared diagnosis.
      f.message = support::format(
          "%s %s dependence on '%s' with direction %s %s carried by doall "
          "'%s' (level %zu)",
          f.definite ? "proven" : "unproven", to_string(dep.kind),
          symbols.name(f.variable).c_str(), dep.direction_string().c_str(),
          f.definite ? "is" : "may be", symbols.name(f.loop->var).c_str(), l);
      report.findings.push_back(std::move(f));
      break;
    }
  }

  scan_scalars(symbols, root, report.findings);
  return report;
}

RaceReport check_races(const ir::LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  return check_races(nest.symbols, *nest.root);
}

std::vector<RaceReport> check_races(const ir::Program& program) {
  std::vector<RaceReport> out;
  out.reserve(program.roots.size());
  for (const ir::LoopPtr& root : program.roots) {
    out.push_back(check_races(program.symbols, *root));
  }
  return out;
}

std::vector<Diagnostic> race_diagnostics(const ir::Program& program) {
  std::vector<Diagnostic> out;
  for (const ir::LoopPtr& root : program.roots) {
    const RaceReport report = check_races(program.symbols, *root);
    for (const RaceFinding& f : report.findings) {
      Diagnostic diag;
      if (f.is_scalar()) {
        diag.rule = find_rule("unprivatized-scalar");
        diag.fixit =
            "privatize with --expand-scalars (scalar expansion) or mark the "
            "loop 'do'";
      } else if (f.definite) {
        diag.rule = find_rule("race-carried-dependence");
        diag.fixit = "the dependence is proven; mark the loop 'do'";
      } else {
        diag.rule = find_rule("maybe-dependence");
        diag.fixit =
            "prove independence (affine subscripts, constant bounds) or mark "
            "the loop 'do'";
      }
      diag.severity = diag.rule->severity;
      diag.message = f.message;
      diag.loc = f.loop->loc;
      if (!f.is_scalar()) {
        const Dependence& dep = report.ddg.deps[f.dep];
        for (std::size_t ref_index : {dep.src_ref, dep.dst_ref}) {
          const ArrayRef& ref = report.ddg.refs[ref_index];
          if (ref.enclosing.empty()) continue;
          diag.related.push_back(RelatedLocation{
              ref.enclosing.back()->loc,
              support::format("%s of '%s' in statement %zu",
                              ref.kind == RefKind::kWrite ? "write" : "read",
                              program.symbols.name(ref.array).c_str(),
                              ref.stmt_ordinal)});
        }
      }
      out.push_back(std::move(diag));
    }
  }
  return out;
}

}  // namespace coalesce::analysis
