// Static race detection: planned parallelism vs. the dependence graph.
//
// A `doall` flag is a *plan*; this module is the adversary that checks the
// plan against the facts the analyses can prove (docs/ANALYSIS.md):
//
//   * every dependence in the DDG that may be carried by a loop planned
//     parallel is a candidate race. It is *definite* (kRacy) when the
//     dependence is proven and the carrier provably executes two conflicting
//     iterations; otherwise it stays a *maybe* (kMaybeRacy).
//   * every scalar written under a parallel loop must be privatizable
//     (assigned before read in each iteration); an exposed read is a race on
//     the shared cell.
//
// The soundness contract, enforced dynamically by runtime/race_oracle.hpp
// and the fuzz suite: verdict kRaceFree implies NO execution of the nest
// exhibits a cross-iteration conflict on a parallel loop. kMaybeRacy makes
// no promise either way; kRacy means a conflict is statically proven (up to
// the per-dimension independence of the subscript tests).
//
// Findings also come out as lint Diagnostics (race-carried-dependence /
// maybe-dependence / unprivatized-scalar) so the text/JSON/SARIF renderers
// and the service admission pipeline can surface them unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ddg.hpp"
#include "analysis/lint.hpp"
#include "ir/stmt.hpp"

namespace coalesce::analysis {

enum class RaceVerdict : std::uint8_t {
  kRaceFree,   ///< no finding: the parallel plan is provably race-free
  kMaybeRacy,  ///< unproven dependences only; must be assumed racy
  kRacy,       ///< at least one proven carried dependence or exposed scalar
};

[[nodiscard]] const char* to_string(RaceVerdict v) noexcept;

/// One candidate race.
struct RaceFinding {
  /// Sentinel for `dep` on scalar findings (no DDG edge involved).
  static constexpr std::size_t kScalarFinding = static_cast<std::size_t>(-1);

  const ir::Loop* loop = nullptr;  ///< the parallel loop the race rides on
  std::size_t level = 0;           ///< its index in the dependence's `common`
  std::size_t dep = kScalarFinding;  ///< index into RaceReport::ddg.deps
  bool definite = false;           ///< true: proven, not merely unrefuted
  ir::VarId variable{};            ///< the array or scalar fought over
  std::string message;

  [[nodiscard]] bool is_scalar() const { return dep == kScalarFinding; }
};

struct RaceReport {
  Ddg ddg;  ///< the graph the array findings index into
  std::vector<RaceFinding> findings;

  [[nodiscard]] RaceVerdict verdict() const;
  [[nodiscard]] std::size_t definite_count() const;
};

/// Checks one loop tree. The report borrows Loop pointers from the tree and
/// must not outlive it.
[[nodiscard]] RaceReport check_races(const ir::SymbolTable& symbols,
                                     const ir::Loop& root);
[[nodiscard]] RaceReport check_races(const ir::LoopNest& nest);

/// One report per root, in program order.
[[nodiscard]] std::vector<RaceReport> check_races(const ir::Program& program);

/// Every finding of every root as a lint Diagnostic (rules
/// race-carried-dependence, maybe-dependence, unprivatized-scalar), with
/// both dependence endpoints attached as related locations — ready for
/// render_text / render_json / render_sarif.
[[nodiscard]] std::vector<Diagnostic> race_diagnostics(
    const ir::Program& program);

}  // namespace coalesce::analysis
