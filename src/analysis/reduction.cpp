#include "analysis/reduction.hpp"

#include <algorithm>

#include "analysis/subscript.hpp"
#include "support/assert.hpp"

namespace coalesce::analysis {

using ir::ExprOp;
using ir::ExprRef;
using ir::Loop;
using ir::VarId;

namespace {

/// Does `e` structurally equal a read of the lvalue?
bool reads_target(const ExprRef& e, const ir::LValue& target) {
  if (const auto* scalar = std::get_if<VarId>(&target)) {
    return e->op == ExprOp::kVarRef && e->var == *scalar;
  }
  const auto& access = std::get<ir::ArrayAccess>(target);
  if (e->op != ExprOp::kArrayRead || e->var != access.array) return false;
  if (e->kids.size() != access.subscripts.size()) return false;
  for (std::size_t d = 0; d < e->kids.size(); ++d) {
    if (!ir::equal(e->kids[d], access.subscripts[d])) return false;
  }
  return true;
}

/// Does `e` reference the target's storage at all (any subscript)?
bool touches_target_storage(const ExprRef& e, const ir::LValue& target) {
  const VarId var = std::holds_alternative<VarId>(target)
                        ? std::get<VarId>(target)
                        : std::get<ir::ArrayAccess>(target).array;
  return ir::references(e, var);
}

/// Matches rhs == op(read(target), e) or op(e, read(target)) with `e` free
/// of the target. Returns the free operand on success.
std::optional<ExprRef> match_accumulate(const ExprRef& rhs,
                                        const ir::LValue& target,
                                        ExprOp* op_out) {
  switch (rhs->op) {
    case ExprOp::kAdd:
    case ExprOp::kMul:
    case ExprOp::kMin:
    case ExprOp::kMax:
      break;
    default:
      return std::nullopt;
  }
  COALESCE_ASSERT(rhs->kids.size() == 2);
  for (int side = 0; side < 2; ++side) {
    const ExprRef& acc = rhs->kids[static_cast<std::size_t>(side)];
    const ExprRef& free = rhs->kids[static_cast<std::size_t>(1 - side)];
    if (reads_target(acc, target) && !touches_target_storage(free, target)) {
      *op_out = rhs->op;
      return free;
    }
  }
  return std::nullopt;
}

/// Subscripts of the target invariant in `loop` (don't reference its var)?
bool target_invariant_in(const ir::LValue& target, const Loop& loop) {
  if (std::holds_alternative<VarId>(target)) return true;  // scalar
  const auto& access = std::get<ir::ArrayAccess>(target);
  return std::none_of(access.subscripts.begin(), access.subscripts.end(),
                      [&](const ExprRef& sub) {
                        return ir::references(sub, loop.var);
                      });
}

void collect_loops_pre(const Loop& loop, std::vector<const Loop*>& out) {
  out.push_back(&loop);
  for (const ir::Stmt& s : loop.body) {
    if (const auto* inner = std::get_if<ir::LoopPtr>(&s)) {
      collect_loops_pre(**inner, out);
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      for (const ir::Stmt& gs : (*guard)->then_body) {
        if (const auto* il = std::get_if<ir::LoopPtr>(&gs)) {
          collect_loops_pre(**il, out);
        }
      }
    }
  }
}

}  // namespace

std::vector<Reduction> find_reductions(const Loop& root) {
  std::vector<Reduction> out;
  for (const auto& na : ir::collect_assignments(root)) {
    ExprOp op = ExprOp::kAdd;
    const auto free = match_accumulate(na.stmt->rhs, na.stmt->lhs, &op);
    if (!free.has_value()) continue;

    Reduction r;
    r.stmt = na.stmt;
    r.op = op;
    r.target = na.stmt->lhs;
    for (const Loop* loop : na.enclosing) {
      if (target_invariant_in(na.stmt->lhs, *loop)) {
        r.foldable_levels.push_back(loop);
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

ReductionReport analyze_with_reductions(const ir::LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  ReductionReport report;
  report.reductions = find_reductions(*nest.root);

  const ParallelismReport base = analyze_parallelism(nest);
  const std::vector<ArrayRef> refs = collect_array_refs(*nest.root);
  const auto deps = compute_dependences(*nest.root, refs);

  // A ref "belongs to" a reduction target when it reads/writes exactly the
  // accumulator's element pattern.
  auto ref_is_accumulator = [&](const ArrayRef& ref,
                                const Reduction& r) -> bool {
    if (std::holds_alternative<VarId>(r.target)) return false;  // array deps only
    const auto& access = std::get<ir::ArrayAccess>(r.target);
    if (ref.array != access.array) return false;
    // Compare affine views (structural equality on affine forms).
    if (ref.subscripts.size() != access.subscripts.size()) return false;
    for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
      const auto want = ir::to_affine(access.subscripts[d]);
      if (!ref.subscripts[d].has_value() || !want.has_value()) return false;
      if (!(*ref.subscripts[d] == *want)) return false;
    }
    return true;
  };

  std::vector<const Loop*> loops;
  collect_loops_pre(*nest.root, loops);

  for (const Loop* loop : loops) {
    ReductionVerdict verdict;
    verdict.loop = loop;
    const LoopVerdict* plain = base.find(loop);
    verdict.doall = plain != nullptr && plain->parallelizable;
    if (verdict.doall) {
      verdict.reduction_parallelizable = true;
      report.loops.push_back(std::move(verdict));
      continue;
    }

    // Check every blocker: array dependences carried at this loop must be
    // accumulator self-dependences of a reduction foldable at this loop;
    // scalar blockers must be reduction targets.
    bool all_waivable = true;
    std::vector<const Reduction*> used;

    for (const auto& dep : deps) {
      for (std::size_t l = 0; l < dep.common.size(); ++l) {
        if (dep.common[l] != loop) continue;
        if (!dep.may_be_carried_at(l)) break;
        const Reduction* waiver = nullptr;
        for (const auto& r : report.reductions) {
          const bool foldable =
              std::find(r.foldable_levels.begin(), r.foldable_levels.end(),
                        loop) != r.foldable_levels.end();
          if (foldable && ref_is_accumulator(refs[dep.src_ref], r) &&
              ref_is_accumulator(refs[dep.dst_ref], r)) {
            waiver = &r;
            break;
          }
        }
        if (waiver == nullptr) {
          all_waivable = false;
        } else if (std::find(used.begin(), used.end(), waiver) ==
                   used.end()) {
          used.push_back(waiver);
        }
        break;
      }
      if (!all_waivable) break;
    }

    // Scalar blockers: a scalar written in the body is acceptable when it
    // is a recognized reduction target foldable here.
    if (all_waivable) {
      for (VarId s : ir::scalars_written(*loop)) {
        if (nest.symbols.kind(s) != ir::SymbolKind::kScalar) continue;
        if (scalar_privatizable(*loop, s)) continue;
        const Reduction* waiver = nullptr;
        for (const auto& r : report.reductions) {
          const auto* scalar_target = std::get_if<VarId>(&r.target);
          const bool foldable =
              std::find(r.foldable_levels.begin(), r.foldable_levels.end(),
                        loop) != r.foldable_levels.end();
          if (scalar_target != nullptr && *scalar_target == s && foldable) {
            waiver = &r;
            break;
          }
        }
        if (waiver == nullptr) {
          all_waivable = false;
          break;
        }
        if (std::find(used.begin(), used.end(), waiver) == used.end()) {
          used.push_back(waiver);
        }
      }
    }

    verdict.reduction_parallelizable = all_waivable && !used.empty();
    verdict.reductions = std::move(used);
    report.loops.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace coalesce::analysis
