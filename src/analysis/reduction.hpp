// Reduction recognition — the classic answer to "this loop carries a
// dependence but is still parallelizable".
//
// A statement of the form
//
//     target = target (+|*|min|max) expr        // expr free of target
//
// where `target` is a scalar or an array element whose subscripts are
// invariant in a loop L, makes L *parallelizable as a reduction*: the
// carried dependence is the accumulation itself, and associative folding
// (per-worker partials, see run_reduce in runtime/launch.hpp) preserves
// the result up to
// floating-point reassociation.
//
// This module recognizes such statements and upgrades DOALL verdicts: a
// loop whose only blockers are recognized accumulations is reported
// reduction-parallelizable, with the operator and target identified.
#pragma once

#include <vector>

#include "analysis/doall.hpp"
#include "ir/stmt.hpp"

namespace coalesce::analysis {

struct Reduction {
  const ir::AssignStmt* stmt = nullptr;
  ir::ExprOp op = ir::ExprOp::kAdd;  ///< kAdd, kMul, kMin, or kMax
  /// The accumulator: scalar id, or array + subscripts (structural).
  ir::LValue target;
  /// Loops enclosing the statement in which the target is invariant
  /// (subscripts do not reference the loop variable) — the levels this
  /// reduction can be folded across.
  std::vector<const ir::Loop*> foldable_levels;
};

/// All recognized reduction statements in the tree.
[[nodiscard]] std::vector<Reduction> find_reductions(const ir::Loop& root);

/// Per-loop verdicts with reduction upgrades.
struct ReductionVerdict {
  const ir::Loop* loop = nullptr;
  bool doall = false;                 ///< plain DOALL (no help needed)
  bool reduction_parallelizable = false;  ///< DOALL after folding reductions
  std::vector<const Reduction*> reductions;  ///< the enabling accumulations
};

struct ReductionReport {
  std::vector<Reduction> reductions;
  std::vector<ReductionVerdict> loops;  ///< preorder over the tree
};

[[nodiscard]] ReductionReport analyze_with_reductions(
    const ir::LoopNest& nest);

}  // namespace coalesce::analysis
