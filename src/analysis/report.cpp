#include "analysis/report.hpp"

#include "analysis/subscript.hpp"
#include "ir/printer.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::analysis {

namespace {

std::string distance_string(
    const std::vector<std::optional<std::int64_t>>& distance) {
  std::vector<std::string> parts;
  parts.reserve(distance.size());
  for (const auto& d : distance) {
    parts.push_back(d.has_value() ? std::to_string(*d) : std::string("*"));
  }
  return "(" + support::join(parts, ", ") + ")";
}

std::string dependences_text(const ir::LoopNest& nest,
                             const std::vector<Dependence>& deps,
                             const std::vector<ArrayRef>& refs) {
  std::string out;
  out += support::format("dependences: %zu\n", deps.size());
  for (const auto& dep : deps) {
    out += support::format(
        "  %-6s %-8s distance %-12s direction %-10s [%s]\n",
        to_string(dep.kind),
        nest.symbols.name(refs[dep.src_ref].array).c_str(),
        distance_string(dep.distance).c_str(),
        dep.direction_string().c_str(), to_string(dep.answer));
  }
  return out;
}

std::string verdicts_text(const ir::LoopNest& nest,
                          const ParallelismReport& report) {
  std::string out;
  out += "loops:\n";
  for (const auto& verdict : report.loops) {
    out += support::format("  %-8s %s\n",
                           nest.symbols.name(verdict.loop->var).c_str(),
                           verdict.parallelizable ? "DOALL" : "serial");
    for (const auto& blocker : verdict.blockers) {
      out += "           - " + blocker + "\n";
    }
  }
  return out;
}

/// Statement labels in the same ordinal enumeration collect_array_refs
/// uses (assignment / guard / loop header each take one ordinal).
void collect_labels(const std::vector<ir::Stmt>& body,
                    const ir::SymbolTable& symbols,
                    std::vector<std::string>& labels) {
  for (const ir::Stmt& s : body) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&s)) {
      std::string text = ir::to_string(ir::Stmt{*assign}, symbols);
      if (!text.empty() && text.back() == '\n') text.pop_back();
      labels.push_back(std::move(text));
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      labels.push_back(
          "if (" + ir::to_string((*guard)->condition, symbols) + ")");
      collect_labels((*guard)->then_body, symbols, labels);
    } else {
      const ir::Loop& loop = *std::get<ir::LoopPtr>(s);
      labels.push_back(
          support::format("%s %s", loop.parallel ? "doall" : "do",
                          symbols.name(loop.var).c_str()));
      collect_labels(loop.body, symbols, labels);
    }
  }
}

std::string escape_dot(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string render_report(const ir::LoopNest& nest,
                          const ParallelismReport& report) {
  const auto refs = collect_array_refs(*nest.root);
  std::string out = "== parallelism report ==\n";
  out += dependences_text(nest, report.dependences, refs);
  out += verdicts_text(nest, report);
  return out;
}

std::string render_report(const ir::LoopNest& nest,
                          const ReductionReport& report) {
  const ParallelismReport base = analyze_parallelism(nest);
  std::string out = render_report(nest, base);
  out += support::format("reductions: %zu\n", report.reductions.size());
  for (const auto& r : report.reductions) {
    std::string target;
    if (const auto* scalar = std::get_if<ir::VarId>(&r.target)) {
      target = nest.symbols.name(*scalar);
    } else {
      const auto& access = std::get<ir::ArrayAccess>(r.target);
      target = nest.symbols.name(access.array) + "[...]";
    }
    std::vector<std::string> levels;
    for (const ir::Loop* loop : r.foldable_levels) {
      levels.push_back(nest.symbols.name(loop->var));
    }
    out += support::format("  %s %s= ... foldable at {%s}\n", target.c_str(),
                           ir::to_string(r.op), support::join(levels, ", ").c_str());
  }
  for (const auto& verdict : report.loops) {
    if (!verdict.doall && verdict.reduction_parallelizable) {
      out += support::format("  loop %s: parallelizable AS REDUCTION\n",
                             nest.symbols.name(verdict.loop->var).c_str());
    }
  }
  return out;
}

std::string dependence_graph_dot(const ir::LoopNest& nest) {
  const auto refs = collect_array_refs(*nest.root);
  const auto deps = compute_dependences(*nest.root, refs);

  // Labels in collect_array_refs' ordinal space. Guard-condition refs use
  // SIZE_MAX-g ordinals (legacy of the whole-tree collector) — those edges
  // are labelled "guard".
  std::vector<std::string> labels;
  collect_labels(nest.root->body, nest.symbols, labels);

  auto node_name = [&](std::size_t ordinal) {
    return ordinal < labels.size()
               ? support::format("s%zu", ordinal)
               : std::string("guard");
  };

  std::string out = "digraph dependences {\n  rankdir=TB;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t t = 0; t < labels.size(); ++t) {
    out += support::format("  s%zu [label=\"%s\"];\n", t,
                           escape_dot(labels[t]).c_str());
  }
  bool guard_node = false;
  for (const auto& dep : deps) {
    const std::size_t src = refs[dep.src_ref].stmt_ordinal;
    const std::size_t dst = refs[dep.dst_ref].stmt_ordinal;
    if (src >= labels.size() || dst >= labels.size()) guard_node = true;
  }
  if (guard_node) out += "  guard [label=\"(guard condition)\"];\n";

  for (const auto& dep : deps) {
    const char* style = dep.kind == DepKind::kFlow     ? "solid"
                        : dep.kind == DepKind::kAnti   ? "dashed"
                                                       : "dotted";
    out += support::format(
        "  %s -> %s [style=%s, label=\"%s %s\"];\n",
        node_name(refs[dep.src_ref].stmt_ordinal).c_str(),
        node_name(refs[dep.dst_ref].stmt_ordinal).c_str(), style,
        nest.symbols.name(refs[dep.src_ref].array).c_str(),
        distance_string(dep.distance).c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace coalesce::analysis
