// Human-readable and Graphviz renderings of the analysis results: the
// dependence set, per-loop verdicts, and reduction upgrades. Powers
// `coalescec --report` and the examples' diagnostics.
#pragma once

#include <string>

#include "analysis/doall.hpp"
#include "analysis/reduction.hpp"

namespace coalesce::analysis {

/// Multi-line text report: every dependence (kind, array, distance vector)
/// and every loop's verdict with its blockers.
[[nodiscard]] std::string render_report(const ir::LoopNest& nest,
                                        const ParallelismReport& report);

/// Same, with reduction upgrades appended.
[[nodiscard]] std::string render_report(const ir::LoopNest& nest,
                                        const ReductionReport& report);

/// Graphviz DOT of the statement-level dependence graph: one node per
/// assignment (labelled by its text), one edge per dependence, styled by
/// kind (flow solid, anti dashed, output dotted) and annotated with the
/// distance vector.
[[nodiscard]] std::string dependence_graph_dot(const ir::LoopNest& nest);

}  // namespace coalesce::analysis
