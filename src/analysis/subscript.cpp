#include "analysis/subscript.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace coalesce::analysis {
namespace {

/// Recursively collect kArrayRead nodes in an expression.
void collect_reads(const ir::ExprRef& e,
                   const std::vector<const ir::Loop*>& chain,
                   std::size_t ordinal, bool guarded,
                   std::vector<ArrayRef>& out) {
  if (e == nullptr) return;
  if (e->op == ir::ExprOp::kArrayRead) {
    ArrayRef ref;
    ref.array = e->var;
    ref.kind = RefKind::kRead;
    ref.enclosing = chain;
    ref.stmt_ordinal = ordinal;
    ref.guarded = guarded;
    ref.subscripts.reserve(e->kids.size());
    for (const auto& sub : e->kids) {
      ref.subscripts.push_back(ir::to_affine(sub));
      // Subscripts can themselves contain array reads (indirection); those
      // inner reads are still reads of the inner array.
      collect_reads(sub, chain, ordinal, guarded, out);
    }
    out.push_back(std::move(ref));
    return;
  }
  for (const auto& k : e->kids) collect_reads(k, chain, ordinal, guarded, out);
}

void collect_assign_refs(const ir::AssignStmt& assign,
                         const std::vector<const ir::Loop*>& chain,
                         std::size_t ordinal, bool guarded,
                         std::vector<ArrayRef>& out) {
  collect_reads(assign.rhs, chain, ordinal, guarded, out);
  if (const auto* access = std::get_if<ir::ArrayAccess>(&assign.lhs)) {
    ArrayRef ref;
    ref.array = access->array;
    ref.kind = RefKind::kWrite;
    ref.enclosing = chain;
    ref.stmt_ordinal = ordinal;
    ref.guarded = guarded;
    ref.subscripts.reserve(access->subscripts.size());
    for (const auto& sub : access->subscripts) {
      ref.subscripts.push_back(ir::to_affine(sub));
      collect_reads(sub, chain, ordinal, guarded, out);
    }
    out.push_back(std::move(ref));
  }
}

void collect_stmt_refs(const ir::Stmt& stmt,
                       std::vector<const ir::Loop*>& chain,
                       std::size_t& ordinal, bool guarded,
                       std::vector<ArrayRef>& out) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    collect_assign_refs(*assign, chain, ordinal++, guarded, out);
  } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    // The condition itself evaluates unconditionally; only the body is
    // shielded by it.
    collect_reads((*guard)->condition, chain, ordinal++, guarded, out);
    for (const ir::Stmt& s : (*guard)->then_body) {
      collect_stmt_refs(s, chain, ordinal, /*guarded=*/true, out);
    }
  } else {
    const ir::Loop& loop = *std::get<ir::LoopPtr>(stmt);
    chain.push_back(&loop);
    // Bound expressions can read arrays too (rare, but sound to include).
    collect_reads(loop.lower, chain, ordinal, guarded, out);
    collect_reads(loop.upper, chain, ordinal, guarded, out);
    ++ordinal;
    for (const ir::Stmt& s : loop.body) {
      collect_stmt_refs(s, chain, ordinal, guarded, out);
    }
    chain.pop_back();
  }
}

}  // namespace

std::vector<ArrayRef> collect_array_refs(const ir::Loop& root) {
  std::vector<ArrayRef> out;
  std::vector<const ir::Loop*> chain;
  chain.push_back(&root);
  std::size_t ordinal = 0;
  for (const ir::Stmt& s : root.body) {
    collect_stmt_refs(s, chain, ordinal, /*guarded=*/false, out);
  }
  // A subscript reading a scalar that is *assigned inside the nest* (e.g.
  // the index-recovery temporaries a coalesced body computes) is not an
  // affine function of the induction variables, even though to_affine()
  // cannot see that: the dependence tests would treat the scalar as
  // loop-invariant and "prove" facts about a value that changes every
  // iteration. Demote such dimensions to non-affine so every test stays at
  // kMaybe.
  const std::vector<ir::VarId> written = ir::scalars_written(root);
  if (!written.empty()) {
    for (ArrayRef& ref : out) {
      for (auto& sub : ref.subscripts) {
        if (!sub.has_value()) continue;
        const bool loop_varying = std::any_of(
            sub->coeffs.begin(), sub->coeffs.end(), [&](const auto& entry) {
              return std::find(written.begin(), written.end(), entry.first) !=
                     written.end();
            });
        if (loop_varying) sub = std::nullopt;
      }
    }
  }
  return out;
}

std::vector<ArrayRef> collect_array_refs_of_stmt(
    const ir::Stmt& stmt, const std::vector<const ir::Loop*>& prefix) {
  std::vector<ArrayRef> out;
  std::vector<const ir::Loop*> chain = prefix;
  std::size_t ordinal = 0;
  collect_stmt_refs(stmt, chain, ordinal, /*guarded=*/false, out);
  return out;
}

std::optional<ConstBounds> constant_bounds(const ir::Loop& loop) {
  auto lo = ir::as_constant(loop.lower);
  auto hi = ir::as_constant(loop.upper);
  if (!lo || !hi) return std::nullopt;
  return ConstBounds{*lo, *hi};
}

}  // namespace coalesce::analysis
