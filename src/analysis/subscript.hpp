// Extraction of array references and their affine subscript views.
//
// The dependence tests (dependence.hpp) work on pairs of references to the
// same array whose subscripts are affine in the enclosing induction
// variables. This header walks assignments and produces that normalized
// view, flagging anything non-affine so the tests can stay conservative.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/stmt.hpp"

namespace coalesce::analysis {

enum class RefKind : std::uint8_t { kRead, kWrite };

/// One array reference inside a nest, with the loop chain that encloses it.
struct ArrayRef {
  ir::VarId array;
  RefKind kind;
  /// Affine view of each subscript dimension; nullopt when that dimension's
  /// expression is not affine (division, array read, call...).
  std::vector<std::optional<ir::AffineForm>> subscripts;
  /// Enclosing loops, outermost first (same order as NestedAssignment).
  std::vector<const ir::Loop*> enclosing;
  /// Index of the owning assignment in collect_assignments() order; used to
  /// distinguish intra-statement (read & write in the same stmt) pairs.
  std::size_t stmt_ordinal = 0;
  /// True when the reference sits inside an if-guard: it may not execute on
  /// every iteration, so a dependence through it can never be *proven*.
  bool guarded = false;
};

/// All array references in the tree, execution order. Reads include those in
/// lhs subscripts (a write's subscript expressions read their variables but
/// we only track *array* reads; scalar reads are handled by the scalar
/// analysis in doall.hpp).
[[nodiscard]] std::vector<ArrayRef> collect_array_refs(const ir::Loop& root);

/// References of a single statement, with `prefix` (outermost first)
/// prepended to every enclosing chain. Used by loop distribution to compare
/// references from *sibling* statements of one loop body under a shared
/// chain.
[[nodiscard]] std::vector<ArrayRef> collect_array_refs_of_stmt(
    const ir::Stmt& stmt, const std::vector<const ir::Loop*>& prefix);

/// Constant inclusive bounds of a loop when both bounds fold; nullopt
/// otherwise. The Banerjee bounds test requires these.
struct ConstBounds {
  std::int64_t lower;
  std::int64_t upper;
};
[[nodiscard]] std::optional<ConstBounds> constant_bounds(const ir::Loop& loop);

}  // namespace coalesce::analysis
