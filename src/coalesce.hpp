// Umbrella header: the library's public API in one include.
//
//   #include "coalesce.hpp"
//
//   using namespace coalesce;
//   ir::LoopNest nest = ir::make_matmul(64, 64, 64);
//   analysis::analyze_and_mark(nest);                    // prove DOALLs
//   auto result = transform::coalesce_nest(nest);        // fuse the band
//   std::string c = codegen::emit_c(result.value().nest);// inspect output
//
// Or skip the IR and run a coalesced loop directly (runtime/launch.hpp):
//
//   runtime::ThreadPool pool(8);
//   auto space = index::CoalescedSpace::create({64, 64}).value();
//   runtime::run(pool, space,
//                [&](std::span<const support::i64> ij) { ... },
//                {.schedule = {runtime::Schedule::kGuided}});
//
// Or asynchronously, many regions deep (runtime/engine.hpp):
//
//   runtime::Engine engine(8);
//   auto future = engine.submit(space, body);
//   ... // caller keeps working; future.get() joins that one region
//
// docs/API.md draws the public-vs-internal line and keeps the historical
// migration table from the parallel_for*/parallel_reduce* spellings
// (deprecated in PR 5, removed in PR 10).
#pragma once

#include "analysis/ddg.hpp"
#include "analysis/dependence.hpp"
#include "analysis/doall.hpp"
#include "analysis/lint.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/race.hpp"
#include "analysis/reduction.hpp"
#include "analysis/report.hpp"
#include "analysis/subscript.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/cost_model.hpp"
#include "codegen/jit.hpp"
#include "codegen/pipeline.hpp"
#include "core/api.hpp"
#include "frontend/parser.hpp"
#include "frontend/source.hpp"
#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "index/grid.hpp"
#include "index/incremental.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "ir/stmt.hpp"
#include "ir/verify.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/ir_executor.hpp"
#include "runtime/launch.hpp"
#include "runtime/race_oracle.hpp"
#include "runtime/thread_pool.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/machine.hpp"
#include "sim/workload.hpp"
#include "support/cancel.hpp"
#include "support/parse_schedule.hpp"
#include "support/socket.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "trace/counters.hpp"
#include "trace/event.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "transform/coalesce.hpp"
#include "transform/distribute.hpp"
#include "transform/fusion.hpp"
#include "transform/guarded.hpp"
#include "transform/interchange.hpp"
#include "transform/normalize.hpp"
#include "transform/permute.hpp"
#include "transform/postcheck.hpp"
#include "transform/scalar_expand.hpp"
#include "transform/stats.hpp"
#include "transform/strip_mine.hpp"
#include "transform/tile.hpp"
