#include "codegen/c_emitter.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::codegen {

using ir::ExprOp;
using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::SymbolTable;
using ir::VarId;

namespace {

// The runtime preamble every emitted unit carries: exact mathematical
// floor/ceiling division (C's `/` truncates) and the builtin functions the
// IR's opaque calls may use.
constexpr const char* kPreamble = R"(#include <inttypes.h>
#include <stdint.h>
#include <stdio.h>

static inline int64_t cg_fdiv(int64_t a, int64_t b) {
  int64_t q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}
static inline int64_t cg_cdiv(int64_t a, int64_t b) {
  int64_t q = a / b, r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}
static inline int64_t cg_mod(int64_t a, int64_t b) {
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}
static inline int64_t cg_min(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t cg_max(int64_t a, int64_t b) { return a > b ? a : b; }
static inline double real_div(double a, double b) { return a / b; }
static inline double avg4(double a, double b, double c, double d) {
  return (a + b + c + d) / 4.0;
}
static inline double pi_height(int64_t strip, int64_t r, int64_t strips,
                               int64_t ips) {
  double total = (double)(strips * ips);
  double g = (double)((strip - 1) * ips + r);
  double x = (g - 0.5) / total;
  return (4.0 / (1.0 + x * x)) / total;
}
)";

int precedence(ExprOp op) {
  switch (op) {
    case ExprOp::kMul:
      return 5;
    case ExprOp::kAdd:
    case ExprOp::kSub:
      return 4;
    case ExprOp::kNeg:
      return 6;
    case ExprOp::kCmpLt:
    case ExprOp::kCmpLe:
    case ExprOp::kCmpGt:
    case ExprOp::kCmpGe:
    case ExprOp::kCmpEq:
    case ExprOp::kCmpNe:
      return 3;
    case ExprOp::kAnd:
      return 2;
    case ExprOp::kOr:
      return 1;
    default:
      return 100;  // atoms and call-syntax forms never need parens
  }
}

const char* c_operator(ExprOp op) {
  switch (op) {
    case ExprOp::kCmpLt: return "<";
    case ExprOp::kCmpLe: return "<=";
    case ExprOp::kCmpGt: return ">";
    case ExprOp::kCmpGe: return ">=";
    case ExprOp::kCmpEq: return "==";
    case ExprOp::kCmpNe: return "!=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    default: return "?";
  }
}

std::string emit(const ExprRef& e, const SymbolTable& symbols,
                 int parent_prec) {
  COALESCE_ASSERT(e != nullptr);
  const int prec = precedence(e->op);
  std::string out;
  switch (e->op) {
    case ExprOp::kIntConst:
      out = "INT64_C(" + std::to_string(e->literal) + ")";
      break;
    case ExprOp::kVarRef:
      out = symbols.name(e->var);
      break;
    case ExprOp::kAdd:
      out = emit(e->kids[0], symbols, prec) + " + " +
            emit(e->kids[1], symbols, prec);
      break;
    case ExprOp::kSub:
      out = emit(e->kids[0], symbols, prec) + " - " +
            emit(e->kids[1], symbols, prec + 1);
      break;
    case ExprOp::kMul:
      out = emit(e->kids[0], symbols, prec) + " * " +
            emit(e->kids[1], symbols, prec);
      break;
    case ExprOp::kNeg:
      out = "-" + emit(e->kids[0], symbols, prec);
      break;
    case ExprOp::kFloorDiv:
      out = "cg_fdiv(" + emit(e->kids[0], symbols, 0) + ", " +
            emit(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kCeilDiv:
      out = "cg_cdiv(" + emit(e->kids[0], symbols, 0) + ", " +
            emit(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kMod:
      out = "cg_mod(" + emit(e->kids[0], symbols, 0) + ", " +
            emit(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kMin:
      out = "cg_min(" + emit(e->kids[0], symbols, 0) + ", " +
            emit(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kMax:
      out = "cg_max(" + emit(e->kids[0], symbols, 0) + ", " +
            emit(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kArrayRead: {
      out = symbols.name(e->var);
      for (const auto& sub : e->kids) {
        out += "[" + emit(sub, symbols, 4) + " - 1]";
      }
      break;
    }
    case ExprOp::kCall: {
      std::vector<std::string> args;
      args.reserve(e->kids.size());
      for (const auto& arg : e->kids) args.push_back(emit(arg, symbols, 0));
      out = e->callee + "(" + support::join(args, ", ") + ")";
      break;
    }
    case ExprOp::kCmpLt:
    case ExprOp::kCmpLe:
    case ExprOp::kCmpGt:
    case ExprOp::kCmpGe:
    case ExprOp::kCmpEq:
    case ExprOp::kCmpNe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
      out = emit(e->kids[0], symbols, prec + 1) + " " + c_operator(e->op) +
            " " + emit(e->kids[1], symbols, prec + 1);
      break;
  }
  if (prec < parent_prec) out = "(" + out + ")";
  return out;
}

std::string emit_lvalue(const ir::LValue& lhs, const SymbolTable& symbols) {
  if (const auto* scalar = std::get_if<VarId>(&lhs)) {
    return symbols.name(*scalar);
  }
  const auto& access = std::get<ir::ArrayAccess>(lhs);
  std::string out = symbols.name(access.array);
  for (const auto& sub : access.subscripts) {
    out += "[" + emit(sub, symbols, 4) + " - 1]";
  }
  return out;
}

/// Non-loop variables assigned anywhere in the tree: these become function-
/// scope int64_t declarations (and OpenMP private clauses).
void collect_assigned_scalars_body(const std::vector<ir::Stmt>& body,
                                   std::vector<VarId>& out) {
  for (const ir::Stmt& s : body) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&s)) {
      if (const auto* scalar = std::get_if<VarId>(&assign->lhs)) {
        if (std::find(out.begin(), out.end(), *scalar) == out.end())
          out.push_back(*scalar);
      }
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      collect_assigned_scalars_body((*guard)->then_body, out);
    } else {
      collect_assigned_scalars_body(std::get<ir::LoopPtr>(s)->body, out);
    }
  }
}

void collect_assigned_scalars(const Loop& loop, std::vector<VarId>& out) {
  collect_assigned_scalars_body(loop.body, out);
}

void emit_stmt(const ir::Stmt& stmt, const SymbolTable& symbols,
               const EmitOptions& options,
               const std::vector<VarId>& privates, std::size_t depth,
               std::string& out, std::size_t suppress_pragma);

void emit_loop(const Loop& loop, const SymbolTable& symbols,
               const EmitOptions& options,
               const std::vector<VarId>& privates, std::size_t depth,
               std::string& out, std::size_t suppress_pragma = 0) {
  const std::string pad(depth * 2, ' ');
  const std::string& v = symbols.name(loop.var);
  std::size_t collapse_levels = 0;
  if (loop.parallel && suppress_pragma == 0) {
    if (options.openmp) {
      out += pad + "#pragma omp parallel for";
      // A perfect parallel band maps to collapse(k) — the modern form of
      // the paper's transformation, emitted when the nest still has one.
      collapse_levels = ir::parallel_band(loop).size();
      if (collapse_levels > 1) {
        out += " collapse(" + std::to_string(collapse_levels) + ")";
      }
      if (!privates.empty()) {
        std::vector<std::string> names;
        names.reserve(privates.size());
        for (VarId p : privates) names.push_back(symbols.name(p));
        out += " private(" + support::join(names, ", ") + ")";
      }
      out += "\n";
    } else {
      out += pad + "/* doall */\n";
    }
  }
  out += pad + "for (int64_t " + v + " = " + emit(loop.lower, symbols, 0) +
         "; " + v + " <= " + emit(loop.upper, symbols, 0) + "; " + v +
         " += " + std::to_string(loop.step) + ") {\n";
  // Loops covered by an emitted collapse(k) clause must not repeat the
  // pragma; suppress it for the next (k-1) band levels.
  const std::size_t next_suppress =
      collapse_levels > 1 ? collapse_levels - 1
      : suppress_pragma > 0 ? suppress_pragma - 1
                            : 0;
  for (const ir::Stmt& s : loop.body) {
    emit_stmt(s, symbols, options, privates, depth + 1, out, next_suppress);
  }
  out += pad + "}\n";
}

void emit_stmt(const ir::Stmt& stmt, const SymbolTable& symbols,
               const EmitOptions& options,
               const std::vector<VarId>& privates, std::size_t depth,
               std::string& out, std::size_t suppress_pragma = 0) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    out += std::string(depth * 2, ' ');
    out += emit_lvalue(assign->lhs, symbols);
    out += " = " + emit(assign->rhs, symbols, 0) + ";\n";
  } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    const std::string pad(depth * 2, ' ');
    out += pad + "if (" + emit((*guard)->condition, symbols, 0) + ") {\n";
    for (const ir::Stmt& s : (*guard)->then_body) {
      emit_stmt(s, symbols, options, privates, depth + 1, out);
    }
    out += pad + "}\n";
  } else {
    emit_loop(*std::get<ir::LoopPtr>(stmt), symbols, options, privates, depth,
              out, suppress_pragma);
  }
}

std::string array_dims(const ir::Symbol& sym) {
  std::string out;
  for (std::int64_t extent : sym.shape) {
    out += "[" + std::to_string(extent) + "]";
  }
  return out;
}

}  // namespace

std::string emit_expr_c(const ExprRef& expr, const SymbolTable& symbols) {
  return emit(expr, symbols, 0);
}

namespace {

/// Preamble + file-scope array definitions; returns the array ids.
std::vector<VarId> emit_prelude(const SymbolTable& symbols, std::string& out) {
  out += kPreamble;
  out += "\n";
  std::vector<VarId> arrays;
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const VarId id{raw};
    if (symbols.kind(id) == ir::SymbolKind::kArray) {
      arrays.push_back(id);
      out += "static double " + symbols.name(id) + array_dims(symbols[id]) +
             ";\n";
    }
  }
  out += "\n";
  return arrays;
}

/// One kernel function wrapping one root loop.
void emit_kernel(const Loop& root, const SymbolTable& symbols,
                 const EmitOptions& options, const std::string& name,
                 std::string& out) {
  std::vector<VarId> scalars;
  collect_assigned_scalars(root, scalars);
  out += "static void " + name + "(void) {\n";
  for (VarId s : scalars) {
    out += "  int64_t " + symbols.name(s) + " = 0;\n";
  }
  if (!scalars.empty()) out += "\n";
  emit_loop(root, symbols, options, scalars, 1, out);
  out += "}\n";
}

/// main(): deterministic init of every array, run the driver, dump arrays.
/// Element counts are emitted as INT64_C literals and printed through
/// PRId64 — never %lld, whose width is platform-defined for int64_t.
void emit_main(const std::vector<VarId>& arrays, const SymbolTable& symbols,
               const std::string& driver, std::string& out) {
  out += "\nint main(void) {\n";
  for (VarId a : arrays) {
    const ir::Symbol& sym = symbols[a];
    std::int64_t total = 1;
    for (std::int64_t extent : sym.shape) total *= extent;
    const std::string count = "INT64_C(" + std::to_string(total) + ")";
    out += "  { double* p = &" + sym.name +
           support::repeat("[0]", sym.shape.size()) +
           "; for (int64_t q = 0; q < " + count +
           "; ++q) p[q] = (double)((q * 31 + 17) % 97) / 7.0; }\n";
  }
  out += "  " + driver + "();\n";
  for (VarId a : arrays) {
    const ir::Symbol& sym = symbols[a];
    std::int64_t total = 1;
    for (std::int64_t extent : sym.shape) total *= extent;
    const std::string count = "INT64_C(" + std::to_string(total) + ")";
    out += "  { const double* p = &" + sym.name +
           support::repeat("[0]", sym.shape.size()) +
           "; printf(\"# " + sym.name + " %\" PRId64 \"\\n\", " + count +
           "); for (int64_t q = 0; q < " + count +
           "; ++q) printf(\"%.17g\\n\", p[q]); }\n";
  }
  out += "  return 0;\n}\n";
}

}  // namespace

std::string emit_c(const LoopNest& nest, const EmitOptions& options) {
  COALESCE_ASSERT(nest.root != nullptr);
  std::string out;
  const std::vector<VarId> arrays = emit_prelude(nest.symbols, out);
  emit_kernel(*nest.root, nest.symbols, options, options.kernel_name, out);
  if (options.standalone_main) {
    emit_main(arrays, nest.symbols, options.kernel_name, out);
  }
  return out;
}

std::string emit_c_program(const ir::Program& program,
                           const EmitOptions& options) {
  COALESCE_ASSERT(!program.roots.empty());
  std::string out;
  const std::vector<VarId> arrays = emit_prelude(program.symbols, out);

  const std::string base = options.kernel_name;
  for (std::size_t r = 0; r < program.roots.size(); ++r) {
    COALESCE_ASSERT(program.roots[r] != nullptr);
    emit_kernel(*program.roots[r], program.symbols, options,
                base + "_" + std::to_string(r), out);
    out += "\n";
  }
  out += "static void " + base + "(void) {\n";
  for (std::size_t r = 0; r < program.roots.size(); ++r) {
    out += "  " + base + "_" + std::to_string(r) + "();\n";
  }
  out += "}\n";
  if (options.standalone_main) {
    emit_main(arrays, program.symbols, base, out);
  }
  return out;
}

std::string emit_chunk_kernel(const PreparedNest& prepared,
                              const char* kernel_name) {
  const LoopNest& nest = prepared.normalized;
  COALESCE_ASSERT(nest.root != nullptr);
  COALESCE_ASSERT(!prepared.band.empty());
  COALESCE_ASSERT(prepared.band.size() == prepared.extents.size());
  const SymbolTable& symbols = nest.symbols;
  const std::size_t depth = prepared.band.size();

  // The innermost band loop: its body is the per-point work the kernel
  // runs once per flat index (the band levels above it are perfect).
  const Loop* inner = nest.root.get();
  for (std::size_t level = 1; level < depth; ++level) {
    inner = std::get<ir::LoopPtr>(inner->body.front()).get();
  }

  std::string out = kPreamble;
  out += "\nvoid ";
  out += kernel_name;
  out += "(int64_t cg_first, int64_t cg_last, double* const* cg_arrays) {\n";
  if (prepared.arrays.empty()) out += "  (void)cg_arrays;\n";
  // Positional array binding (PreparedNest::arrays order): rebind each slot
  // to a pointer with the array's row shape so the body's subscripts work
  // unchanged.
  for (std::size_t k = 0; k < prepared.arrays.size(); ++k) {
    const ir::Symbol& sym = symbols[prepared.arrays[k]];
    const std::string slot = "cg_arrays[" + std::to_string(k) + "]";
    if (sym.shape.size() <= 1) {
      out += "  double* " + sym.name + " = " + slot + ";\n";
    } else {
      std::string dims;
      for (std::size_t d = 1; d < sym.shape.size(); ++d) {
        dims += "[" + std::to_string(sym.shape[d]) + "]";
      }
      out += "  double (*" + sym.name + ")" + dims + " = (double (*)" + dims +
             ")" + slot + ";\n";
    }
  }
  out += "  if (cg_first >= cg_last) return;\n";

  // Decode the chunk's first flat index once — the only divisions in the
  // kernel. j in [1, total] maps to band indices innermost-fastest; the
  // operands are non-negative so C's truncating / and % are exact here.
  if (depth == 1) {
    out += "  int64_t " + symbols.name(prepared.band[0]) + " = cg_first;\n";
  } else {
    out += "  int64_t cg_rem = cg_first - 1;\n";
    for (std::size_t level = depth; level-- > 1;) {
      const std::string n =
          "INT64_C(" + std::to_string(prepared.extents[level]) + ")";
      out += "  int64_t " + symbols.name(prepared.band[level]) +
             " = cg_rem % " + n + " + 1;\n";
      out += "  cg_rem /= " + n + ";\n";
    }
    out += "  int64_t " + symbols.name(prepared.band[0]) + " = cg_rem + 1;\n";
  }

  std::vector<VarId> scalars;
  collect_assigned_scalars_body(inner->body, scalars);
  for (VarId s : scalars) {
    out += "  int64_t " + symbols.name(s) + " = 0;\n";
  }

  out += "  for (int64_t cg_j = cg_first; cg_j < cg_last; ++cg_j) {\n";
  EmitOptions options;  // no pragmas: scheduling belongs to the host runtime
  options.standalone_main = false;
  for (const ir::Stmt& s : inner->body) {
    emit_stmt(s, symbols, options, scalars, 2, out);
  }
  // Division-free incremental recovery: advance the band indices as a
  // mixed-radix odometer, innermost digit fastest.
  if (depth == 1) {
    out += "    ++" + symbols.name(prepared.band[0]) + ";\n";
  } else {
    std::string pad = "    ";
    for (std::size_t level = depth; level-- > 1;) {
      out += pad + "if (++" + symbols.name(prepared.band[level]) +
             " > INT64_C(" + std::to_string(prepared.extents[level]) +
             ")) {\n";
      pad += "  ";
      out += pad + symbols.name(prepared.band[level]) + " = 1;\n";
    }
    out += pad + "++" + symbols.name(prepared.band[0]) + ";\n";
    for (std::size_t level = 1; level < depth; ++level) {
      pad.resize(pad.size() - 2);
      out += pad + "}\n";
    }
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace coalesce::codegen
