// Source-to-source back end: emits a loop nest as a standalone, compilable C
// translation unit. This is the "compiler transformation" made inspectable —
// tests compile both the original and the coalesced emission with the host
// compiler, run them, and diff their output streams.
#pragma once

#include <string>

#include "codegen/pipeline.hpp"
#include "ir/stmt.hpp"

namespace coalesce::codegen {

struct EmitOptions {
  /// Emit `#pragma omp parallel for` (plus private clauses) on DOALL loops.
  /// Off by default: the default emission is plain sequential C so the
  /// equivalence tests do not depend on an OpenMP runtime.
  bool openmp = false;
  /// Emit a main() that deterministically initializes every array, runs the
  /// kernel, and prints all array contents (one value per line). Without it
  /// only the kernel function is emitted.
  bool standalone_main = true;
  /// Name of the emitted kernel function.
  const char* kernel_name = "kernel";
};

/// Emits the complete C source for the nest.
[[nodiscard]] std::string emit_c(const ir::LoopNest& nest,
                                 const EmitOptions& options = {});

/// Emits a multi-root program (the output of loop distribution): one
/// function per root, named `<kernel_name>_0`, `<kernel_name>_1`, ..., plus
/// a `<kernel_name>` driver calling them in order; standalone_main wraps
/// the driver exactly as emit_c does.
[[nodiscard]] std::string emit_c_program(const ir::Program& program,
                                         const EmitOptions& options = {});

/// Emits just one expression as C (used by tests and the E7 report).
[[nodiscard]] std::string emit_expr_c(const ir::ExprRef& expr,
                                      const ir::SymbolTable& symbols);

/// The emit pass of the JIT pipeline: a chunk-range kernel over a prepared
/// nest, no file-scope arrays and no main. Signature of the emitted symbol:
///
///   void <kernel_name>(int64_t cg_first, int64_t cg_last,
///                      double* const* cg_arrays);
///
/// [cg_first, cg_last) is a half-open slice of the flattened band space
/// j in [1, total] — the exact contract the runtime dispatchers hand out,
/// so cancellation, deadlines, and every schedule keep working. Arrays are
/// bound positionally in PreparedNest::arrays order. Index recovery is
/// division-free after entry: cg_first is decoded once with divisions,
/// then the band indices advance as a mixed-radix odometer (compare
/// index/incremental.hpp, measured in E4/E7).
inline constexpr const char* kJitKernelSymbol = "coalesce_jit_kernel";
[[nodiscard]] std::string emit_chunk_kernel(
    const PreparedNest& prepared, const char* kernel_name = kJitKernelSymbol);

}  // namespace coalesce::codegen
