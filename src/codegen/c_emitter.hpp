// Source-to-source back end: emits a loop nest as a standalone, compilable C
// translation unit. This is the "compiler transformation" made inspectable —
// tests compile both the original and the coalesced emission with the host
// compiler, run them, and diff their output streams.
#pragma once

#include <string>

#include "ir/stmt.hpp"

namespace coalesce::codegen {

struct EmitOptions {
  /// Emit `#pragma omp parallel for` (plus private clauses) on DOALL loops.
  /// Off by default: the default emission is plain sequential C so the
  /// equivalence tests do not depend on an OpenMP runtime.
  bool openmp = false;
  /// Emit a main() that deterministically initializes every array, runs the
  /// kernel, and prints all array contents (one value per line). Without it
  /// only the kernel function is emitted.
  bool standalone_main = true;
  /// Name of the emitted kernel function.
  const char* kernel_name = "kernel";
};

/// Emits the complete C source for the nest.
[[nodiscard]] std::string emit_c(const ir::LoopNest& nest,
                                 const EmitOptions& options = {});

/// Emits a multi-root program (the output of loop distribution): one
/// function per root, named `<kernel_name>_0`, `<kernel_name>_1`, ..., plus
/// a `<kernel_name>` driver calling them in order; standalone_main wraps
/// the driver exactly as emit_c does.
[[nodiscard]] std::string emit_c_program(const ir::Program& program,
                                         const EmitOptions& options = {});

/// Emits just one expression as C (used by tests and the E7 report).
[[nodiscard]] std::string emit_expr_c(const ir::ExprRef& expr,
                                      const ir::SymbolTable& symbols);

}  // namespace coalesce::codegen
