#include "codegen/cost_model.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::codegen {

OpCounts& OpCounts::operator+=(const OpCounts& other) noexcept {
  adds += other.adds;
  muls += other.muls;
  divisions += other.divisions;
  minmax += other.minmax;
  memory += other.memory;
  calls += other.calls;
  assigns += other.assigns;
  return *this;
}

std::string OpCounts::summary() const {
  return support::format(
      "adds=%llu muls=%llu divs=%llu minmax=%llu mem=%llu calls=%llu "
      "assigns=%llu total=%llu",
      static_cast<unsigned long long>(adds),
      static_cast<unsigned long long>(muls),
      static_cast<unsigned long long>(divisions),
      static_cast<unsigned long long>(minmax),
      static_cast<unsigned long long>(memory),
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(assigns),
      static_cast<unsigned long long>(total()));
}

OpCounts count_ops(const ir::ExprRef& expr) {
  COALESCE_ASSERT(expr != nullptr);
  OpCounts c;
  switch (expr->op) {
    case ir::ExprOp::kAdd:
    case ir::ExprOp::kSub:
    case ir::ExprOp::kNeg:
      c.adds += 1;
      break;
    case ir::ExprOp::kMul:
      c.muls += 1;
      break;
    case ir::ExprOp::kFloorDiv:
    case ir::ExprOp::kCeilDiv:
    case ir::ExprOp::kMod:
      c.divisions += 1;
      break;
    case ir::ExprOp::kMin:
    case ir::ExprOp::kMax:
      c.minmax += 1;
      break;
    case ir::ExprOp::kArrayRead:
      c.memory += 1;
      break;
    case ir::ExprOp::kCall:
      c.calls += 1;
      break;
    case ir::ExprOp::kIntConst:
    case ir::ExprOp::kVarRef:
      break;
  }
  for (const auto& k : expr->kids) c += count_ops(k);
  return c;
}

namespace {

/// Guarded statements count in full (an upper bound on the dynamic cost);
/// nested loops do not — their iterations are not "this body".
void count_body(const std::vector<ir::Stmt>& body, OpCounts& c) {
  for (const ir::Stmt& s : body) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&s)) {
      c.assigns += 1;
      c += count_ops(assign->rhs);
      if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
        c.memory += 1;  // the store
        for (const auto& sub : access->subscripts) c += count_ops(sub);
      }
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      c += count_ops((*guard)->condition);
      count_body((*guard)->then_body, c);
    }
  }
}

}  // namespace

OpCounts count_body_ops(const ir::Loop& loop) {
  OpCounts c;
  count_body(loop.body, c);
  return c;
}

}  // namespace coalesce::codegen
