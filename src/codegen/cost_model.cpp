#include "codegen/cost_model.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/permute.hpp"

namespace coalesce::codegen {

OpCounts& OpCounts::operator+=(const OpCounts& other) noexcept {
  adds += other.adds;
  muls += other.muls;
  divisions += other.divisions;
  minmax += other.minmax;
  memory += other.memory;
  calls += other.calls;
  assigns += other.assigns;
  return *this;
}

std::string OpCounts::summary() const {
  return support::format(
      "adds=%llu muls=%llu divs=%llu minmax=%llu mem=%llu calls=%llu "
      "assigns=%llu total=%llu",
      static_cast<unsigned long long>(adds),
      static_cast<unsigned long long>(muls),
      static_cast<unsigned long long>(divisions),
      static_cast<unsigned long long>(minmax),
      static_cast<unsigned long long>(memory),
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(assigns),
      static_cast<unsigned long long>(total()));
}

OpCounts count_ops(const ir::ExprRef& expr) {
  COALESCE_ASSERT(expr != nullptr);
  OpCounts c;
  switch (expr->op) {
    case ir::ExprOp::kAdd:
    case ir::ExprOp::kSub:
    case ir::ExprOp::kNeg:
      c.adds += 1;
      break;
    case ir::ExprOp::kMul:
      c.muls += 1;
      break;
    case ir::ExprOp::kFloorDiv:
    case ir::ExprOp::kCeilDiv:
    case ir::ExprOp::kMod:
      c.divisions += 1;
      break;
    case ir::ExprOp::kMin:
    case ir::ExprOp::kMax:
      c.minmax += 1;
      break;
    case ir::ExprOp::kArrayRead:
      c.memory += 1;
      break;
    case ir::ExprOp::kCall:
      c.calls += 1;
      break;
    case ir::ExprOp::kIntConst:
    case ir::ExprOp::kVarRef:
      break;
  }
  for (const auto& k : expr->kids) c += count_ops(k);
  return c;
}

namespace {

/// Guarded statements count in full (an upper bound on the dynamic cost);
/// nested loops do not — their iterations are not "this body".
void count_body(const std::vector<ir::Stmt>& body, OpCounts& c) {
  for (const ir::Stmt& s : body) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&s)) {
      c.assigns += 1;
      c += count_ops(assign->rhs);
      if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
        c.memory += 1;  // the store
        for (const auto& sub : access->subscripts) c += count_ops(sub);
      }
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      c += count_ops((*guard)->condition);
      count_body((*guard)->then_body, c);
    }
  }
}

}  // namespace

OpCounts count_body_ops(const ir::Loop& loop) {
  OpCounts c;
  count_body(loop.body, c);
  return c;
}

double memory_cost_per_iteration(const analysis::ContiguityInfo& info,
                                 const std::vector<std::size_t>& order) {
  if (order.empty()) return 0.0;
  const std::size_t innermost = order.back();
  COALESCE_ASSERT(innermost < info.axes.size());
  return info.axes[innermost].miss_cost;
}

namespace {

std::vector<std::size_t> identity_perm(std::size_t depth) {
  std::vector<std::size_t> perm(depth);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  return perm;
}

/// Tile edges for the post-permutation order: a long innermost edge (runs
/// of whole cache lines) and short outer edges (keep the working set of
/// one tile small), each clamped to the axis's constant trip count when
/// known.
std::vector<std::int64_t> tile_hint_for(
    const std::vector<const ir::Loop*>& band,
    const std::vector<std::size_t>& perm) {
  constexpr std::int64_t kInnerEdge = 64;
  constexpr std::int64_t kOuterEdge = 8;
  if (perm.size() < 2) return {};
  std::vector<std::int64_t> hint(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    const std::int64_t edge = k + 1 == perm.size() ? kInnerEdge : kOuterEdge;
    const auto trip = ir::constant_trip_count(*band[perm[k]]);
    hint[k] = trip.has_value() && *trip >= 1 ? std::min(edge, *trip) : edge;
  }
  return hint;
}

}  // namespace

PermutationChoice choose_permutation(const ir::LoopNest& nest) {
  PermutationChoice choice;
  if (nest.root == nullptr) return choice;
  const std::vector<const ir::Loop*> band = ir::perfect_band(*nest.root);
  const analysis::ContiguityInfo info = analysis::analyze_contiguity(nest);
  choice.perm = identity_perm(band.size());
  choice.conservative = info.conservative;
  choice.cost_before = memory_cost_per_iteration(info, choice.perm);
  choice.cost_after = choice.cost_before;
  choice.tile_hint = tile_hint_for(band, choice.perm);
  if (band.size() < 2 || info.conservative) return choice;

  // The ranking IS the desired order: most-expensive axis outermost,
  // cheapest innermost.
  const std::vector<std::size_t>& desired = info.ranked;
  const double cost_after = memory_cost_per_iteration(info, desired);
  if (desired == choice.perm || cost_after >= choice.cost_before) {
    return choice;  // already optimal (or tied — prefer the given order)
  }
  const auto legal = transform::permutation_legal(nest, desired);
  if (!legal.ok() || !legal.value()) {
    choice.legal = false;  // profitable but dependence-illegal: keep order
    return choice;
  }
  choice.perm = desired;
  choice.cost_after = cost_after;
  choice.tile_hint = tile_hint_for(band, choice.perm);
  return choice;
}

ir::LoopNest permute_for_locality(const ir::LoopNest& nest) {
  const PermutationChoice choice = choose_permutation(nest);
  if (choice.worthwhile()) {
    auto permuted = transform::permute(nest, choice.perm);
    if (permuted.ok()) return std::move(permuted).value();
    // permute re-verifies against the shadow oracle internally; a failure
    // here means "don't touch it", not "give up on the nest".
  }
  return ir::LoopNest{nest.symbols,
                      nest.root != nullptr ? ir::clone(*nest.root) : nullptr};
}

}  // namespace coalesce::codegen
