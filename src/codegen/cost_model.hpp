// Static operation counting for emitted code — the reproduction's analogue
// of the paper era's "number of instructions" accounting. Experiment E7
// reports these counts for the two index-recovery styles next to measured
// per-iteration times.
#pragma once

#include <cstdint>
#include <string>

#include "ir/stmt.hpp"

namespace coalesce::codegen {

struct OpCounts {
  std::uint64_t adds = 0;      ///< add/sub/neg
  std::uint64_t muls = 0;
  std::uint64_t divisions = 0; ///< floor-div, ceil-div, mod
  std::uint64_t minmax = 0;
  std::uint64_t memory = 0;    ///< array element reads + writes
  std::uint64_t calls = 0;
  std::uint64_t assigns = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return adds + muls + divisions + minmax + memory + calls + assigns;
  }
  OpCounts& operator+=(const OpCounts& other) noexcept;
  [[nodiscard]] std::string summary() const;
};

/// Ops performed by evaluating this expression once.
[[nodiscard]] OpCounts count_ops(const ir::ExprRef& expr);

/// Ops performed by one execution of the loop's *own body statements*,
/// excluding iterations of nested loops (their headers count as nothing;
/// use transform::compute_stats for whole-nest dynamic counts).
[[nodiscard]] OpCounts count_body_ops(const ir::Loop& loop);

}  // namespace coalesce::codegen
