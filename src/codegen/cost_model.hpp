// Static cost modelling for emitted code.
//
// Two layers:
//  * OpCounts — the reproduction's analogue of the paper era's "number of
//    instructions" accounting (experiment E7 reports these next to
//    measured per-iteration times);
//  * the memory term — a cache-miss estimate over the contiguity analysis
//    (analysis/contiguity.hpp) that choose_permutation() uses to pick the
//    axis order a nest should be coalesced in: most-contiguous axis
//    innermost, so the flattened dispatch order walks memory sequentially.
//    permute_for_locality() is the pipeline stage form — contiguity ->
//    transform/permute -> (caller's) transform/coalesce — surfaced as
//    --locality in coalescec and LaunchOptions::locality at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/contiguity.hpp"
#include "ir/stmt.hpp"

namespace coalesce::codegen {

struct OpCounts {
  std::uint64_t adds = 0;      ///< add/sub/neg
  std::uint64_t muls = 0;
  std::uint64_t divisions = 0; ///< floor-div, ceil-div, mod
  std::uint64_t minmax = 0;
  std::uint64_t memory = 0;    ///< array element reads + writes
  std::uint64_t calls = 0;
  std::uint64_t assigns = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return adds + muls + divisions + minmax + memory + calls + assigns;
  }
  OpCounts& operator+=(const OpCounts& other) noexcept;
  [[nodiscard]] std::string summary() const;
};

/// Ops performed by evaluating this expression once.
[[nodiscard]] OpCounts count_ops(const ir::ExprRef& expr);

/// Ops performed by one execution of the loop's *own body statements*,
/// excluding iterations of nested loops (their headers count as nothing;
/// use transform::compute_stats for whole-nest dynamic counts).
[[nodiscard]] OpCounts count_body_ops(const ir::Loop& loop);

// ---- memory term -----------------------------------------------------------

/// Estimated cache-miss cost per innermost iteration of executing the band
/// in the level order `order` (a permutation of 0..depth-1, outermost
/// first): the miss cost of the axis that runs innermost. Outer axes
/// advance once per full inner sweep, so their misses amortize to noise;
/// the innermost axis advances every iteration and dominates.
[[nodiscard]] double memory_cost_per_iteration(
    const analysis::ContiguityInfo& info,
    const std::vector<std::size_t>& order);

/// The cost model's verdict on how a nest's band should be ordered before
/// coalescing fixes the dispatch order.
struct PermutationChoice {
  /// Band permutation, outermost first: new level k runs old level
  /// perm[k]. Identity when no reorder is wanted (or allowed).
  std::vector<std::size_t> perm;
  /// Per-level tile-size hint for the POST-permutation order (usable as
  /// LaunchOptions::tile_sizes): generous innermost edge (line-friendly
  /// runs), short outer edges. Empty when depth < 2.
  std::vector<std::int64_t> tile_hint;
  double cost_before = 0.0;  ///< memory cost/iter of the original order
  double cost_after = 0.0;   ///< memory cost/iter of `perm`
  /// The contiguity analysis could not score every reference; perm is the
  /// identity and the costs are not trustworthy.
  bool conservative = false;
  /// False when the profitable order failed the dependence legality check
  /// (perm is then the identity).
  bool legal = true;

  [[nodiscard]] bool is_identity() const noexcept {
    for (std::size_t k = 0; k < perm.size(); ++k) {
      if (perm[k] != k) return false;
    }
    return true;
  }
  /// True when applying `perm` is expected to pay: a legal, confidently
  /// scored, non-identity order with strictly lower memory cost.
  [[nodiscard]] bool worthwhile() const noexcept {
    return !conservative && legal && !is_identity() &&
           cost_after < cost_before;
  }
};

/// Ranks the nest's band by contiguity and picks the axis order with the
/// cheapest innermost axis, validated against the dependence legality
/// check (transform::permutation_legal). Falls back to the identity when
/// the analysis is conservative, the band is trivial, the ranking already
/// matches, or the reorder is illegal.
[[nodiscard]] PermutationChoice choose_permutation(const ir::LoopNest& nest);

/// Pipeline-stage form: applies choose_permutation's order via
/// transform::permute (shadow-oracle-verified inside) when worthwhile;
/// otherwise returns a clone of the nest unchanged. Compose as
/// contiguity -> permute_for_locality -> transform/coalesce.
[[nodiscard]] ir::LoopNest permute_for_locality(const ir::LoopNest& nest);

}  // namespace coalesce::codegen
