#include "codegen/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "codegen/c_emitter.hpp"
#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::codegen {

namespace {

std::string resolve_compiler(const JitOptions& options) {
  if (!options.compiler.empty()) return options.compiler;
  if (const char* env = std::getenv("COALESCE_JIT_CC");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  if (const char* env = std::getenv("CC"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "cc";
}

std::string shell_quote(const std::string& s) { return "'" + s + "'"; }

/// Last ~12 lines of the compiler log, for the error message.
std::string log_tail(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::string tail;
  const std::size_t from = lines.size() > 12 ? lines.size() - 12 : 0;
  for (std::size_t k = from; k < lines.size(); ++k) {
    tail += "\n  " + lines[k];
  }
  return tail;
}

}  // namespace

CompiledKernel::~CompiledKernel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

bool compiler_available(const JitOptions& options) {
  static std::mutex mutex;
  static std::unordered_map<std::string, bool> probed;
  const std::string compiler = resolve_compiler(options);
  std::scoped_lock lock(mutex);
  auto it = probed.find(compiler);
  if (it != probed.end()) return it->second;
  const std::string cmd =
      "command -v " + shell_quote(compiler) + " > /dev/null 2>&1";
  const bool available = std::system(cmd.c_str()) == 0;
  probed.emplace(compiler, available);
  return available;
}

struct JitCache::Entry {
  enum class State { kCompiling, kReady, kFailed };
  State state = State::kCompiling;
  std::shared_ptr<const CompiledKernel> kernel;
  support::Error error{support::ErrorCode::kUnavailable, ""};
  std::list<std::string>::iterator lru_pos{};
  bool in_lru = false;
};

JitCache::JitCache(JitOptions options) : options_(std::move(options)) {
  if (options_.cache_capacity == 0) options_.cache_capacity = 1;
  std::error_code ec;
  const auto base = std::filesystem::temp_directory_path(ec);
  if (ec) return;  // no scratch space: every compile reports kUnavailable
  std::string tmpl = (base / "coalesce-jit-XXXXXX").string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) != nullptr) work_dir_ = buf.data();
}

JitCache::~JitCache() {
  entries_.clear();  // dlclose before the .so files disappear
  if (!work_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(work_dir_, ec);
  }
}

void JitCache::touch(const std::string& key) {
  auto it = entries_.find(key);
  COALESCE_ASSERT(it != entries_.end());
  Entry& entry = *it->second;
  if (entry.in_lru) lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  entry.in_lru = true;
}

void JitCache::evict_over_capacity() {
  while (lru_.size() > options_.cache_capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);  // running regions keep their shared_ptr alive
  }
}

JitCache::Stats JitCache::stats() const {
  std::scoped_lock lock(mutex_);
  Stats s;
  s.compiles = compiles_;
  s.hits = hits_;
  s.failures = failures_;
  s.entries = entries_.size();
  return s;
}

support::Expected<std::shared_ptr<const CompiledKernel>>
JitCache::get_or_compile(const PreparedNest& prepared) {
  const std::string& key = prepared.cache_key;
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;
    Entry& entry = *it->second;
    if (entry.state == Entry::State::kCompiling) {
      // Single flight: someone else is compiling this key; wait for the
      // publish instead of racing a second compiler process.
      ready_cv_.wait(lock);
      continue;  // re-find: the entry may have been evicted since
    }
    ++hits_;
    trace::count(trace::Counter::kJitCacheHits);
    touch(key);
    if (entry.state == Entry::State::kReady) return entry.kernel;
    return entry.error;  // negative cache: don't shell out again
  }

  const std::size_t sequence = next_sequence_++;
  entries_.emplace(key, std::make_unique<Entry>());
  lock.unlock();

  auto result = compile(prepared, sequence);

  lock.lock();
  Entry& entry = *entries_.at(key);  // compiling entries are never evicted
  if (result.ok()) {
    entry.state = Entry::State::kReady;
    entry.kernel = result.value();
    ++compiles_;
    trace::count(trace::Counter::kJitCompiles);
  } else {
    entry.state = Entry::State::kFailed;
    entry.error = result.error();
    ++failures_;
  }
  touch(key);
  evict_over_capacity();
  ready_cv_.notify_all();
  return result;
}

support::Expected<std::shared_ptr<const CompiledKernel>> JitCache::compile(
    const PreparedNest& prepared, std::size_t sequence) {
  if (!compiler_available(options_)) {
    return support::make_error(
        support::ErrorCode::kUnavailable,
        "jit compiler '" + resolve_compiler(options_) + "' not found");
  }
  if (work_dir_.empty()) {
    return support::make_error(support::ErrorCode::kUnavailable,
                               "jit scratch directory unavailable");
  }

  std::string source = emit_chunk_kernel(prepared);
  const std::string stem =
      work_dir_ + "/k" + std::to_string(sequence);
  const std::string c_path = stem + ".c";
  const std::string so_path = stem + ".so";
  const std::string log_path = stem + ".log";
  {
    std::ofstream out(c_path);
    if (!out) {
      return support::make_error(support::ErrorCode::kUnavailable,
                                 "cannot write " + c_path);
    }
    out << source;
  }

  const std::string cmd = shell_quote(resolve_compiler(options_)) +
                          " -O2 -fPIC -shared " + options_.extra_flags +
                          " -x c " + shell_quote(c_path) + " -o " +
                          shell_quote(so_path) + " > " +
                          shell_quote(log_path) + " 2>&1";
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const int rc = std::system(cmd.c_str());
  trace::observe(trace::Hist::kJitCompileNs,
                 static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now() - start)
                         .count()));
  if (rc != 0) {
    return support::make_error(
        support::ErrorCode::kUnavailable,
        "jit compile failed (exit " + std::to_string(rc) + "):" +
            log_tail(log_path));
  }

  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* why = ::dlerror();
    return support::make_error(
        support::ErrorCode::kUnavailable,
        std::string("dlopen failed: ") + (why != nullptr ? why : "?"));
  }
  void* sym = ::dlsym(handle, kJitKernelSymbol);
  if (sym == nullptr) {
    ::dlclose(handle);
    return support::make_error(
        support::ErrorCode::kUnavailable,
        std::string("dlsym failed for ") + kJitKernelSymbol);
  }
  return std::shared_ptr<const CompiledKernel>(new CompiledKernel(
      handle, reinterpret_cast<JitKernelFn>(sym), std::move(source)));
}

JitCache& default_jit_cache() {
  static JitCache cache;
  return cache;
}

}  // namespace coalesce::codegen
