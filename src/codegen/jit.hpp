// The compile pass of the codegen pipeline: turn an emitted chunk kernel
// into executable native code and cache it.
//
//   prepare(nest) -> emit_chunk_kernel -> JitCache::get_or_compile
//     -> CompiledKernel::run_chunk(first, last, arrays)
//
// Compilation shells out to the system C compiler ($COALESCE_JIT_CC, then
// $CC, then "cc") to build a shared object, then dlopen()s it. The cache is
// keyed on PreparedNest::cache_key — the canonical alpha-renamed
// serialization of the normalized IR — so alpha-equivalent nests share one
// kernel and repeat traffic (Engine, src/service/) pays the compile cost
// once. Concurrent first compiles of one key are single-flighted: exactly
// one thread compiles, the rest wait on the entry. Eviction is LRU over a
// fixed entry cap; running regions hold shared_ptr ownership, so evicting a
// kernel mid-run is safe.
//
// Failure is a value, never an abort: a missing compiler or a failed
// compile returns ErrorCode::kUnavailable and callers fall back to the
// interpreter (counted as Counter::kJitFallbacks).
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "codegen/pipeline.hpp"
#include "support/error.hpp"

namespace coalesce::codegen {

/// Signature of the emitted kernel symbol (see emit_chunk_kernel).
using JitKernelFn = void (*)(std::int64_t first, std::int64_t last,
                             double* const* arrays);

/// One dlopen()ed kernel. Immutable after construction; share freely.
class CompiledKernel {
 public:
  ~CompiledKernel();
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  /// Runs the kernel over the half-open flat range [first, last); `arrays`
  /// is the positional binding from PreparedNest::arrays.
  void run_chunk(std::int64_t first, std::int64_t last,
                 double* const* arrays) const {
    fn_(first, last, arrays);
  }

  /// The C source this kernel was compiled from (tests, debugging).
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

 private:
  friend class JitCache;
  CompiledKernel(void* handle, JitKernelFn fn, std::string source)
      : handle_(handle), fn_(fn), source_(std::move(source)) {}

  void* handle_;
  JitKernelFn fn_;
  std::string source_;
};

struct JitOptions {
  /// Compiler executable; "" resolves $COALESCE_JIT_CC, then $CC, then "cc".
  std::string compiler;
  /// Extra flags appended after the defaults (-O2 -fPIC -shared).
  std::string extra_flags;
  /// Max cached kernels; the least recently used entry is evicted beyond
  /// this (in-flight compiles never count against the cap).
  std::size_t cache_capacity = 64;
};

class JitCache {
 public:
  explicit JitCache(JitOptions options = {});
  ~JitCache();
  JitCache(const JitCache&) = delete;
  JitCache& operator=(const JitCache&) = delete;

  /// The pipeline's compile pass. Cached kernels return immediately
  /// (Counter::kJitCacheHits); a miss emits, compiles (kJitCompiles,
  /// latency in Hist::kJitCompileNs), and publishes. Failed compiles are
  /// negatively cached so a bad nest shells out once, not per request.
  [[nodiscard]] support::Expected<std::shared_ptr<const CompiledKernel>>
  get_or_compile(const PreparedNest& prepared);

  /// Monotonic totals since construction (trace-recorder independent, so
  /// the CLI can report them without installing a Recorder).
  struct Stats {
    std::uint64_t compiles = 0;  ///< compiler invocations that succeeded
    std::uint64_t hits = 0;      ///< lookups served from the cache
    std::uint64_t failures = 0;  ///< compiler invocations that failed
    std::size_t entries = 0;     ///< resident entries right now
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry;

  support::Expected<std::shared_ptr<const CompiledKernel>> compile(
      const PreparedNest& prepared, std::size_t sequence);
  void touch(const std::string& key);  // LRU bump; lock held
  void evict_over_capacity();          // lock held

  JitOptions options_;
  std::string work_dir_;  ///< scratch dir for .c/.so/.log; removed in dtor

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  std::list<std::string> lru_;  ///< most recent at front
  std::size_t next_sequence_ = 0;
  std::uint64_t compiles_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t failures_ = 0;
};

/// The process-wide cache shared by the runtime launch path, the Engine,
/// the service, and coalescec --jit.
[[nodiscard]] JitCache& default_jit_cache();

/// True when the configured compiler exists and can build a shared object
/// (probed once per distinct compiler string, result cached). The runtime
/// uses this to fall back to the interpreter without shelling out per nest.
[[nodiscard]] bool compiler_available(const JitOptions& options = {});

}  // namespace coalesce::codegen
