#include "codegen/pipeline.hpp"

#include <unordered_map>
#include <utility>

#include "support/assert.hpp"
#include "transform/normalize.hpp"

namespace coalesce::codegen {

using ir::ExprOp;
using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::SymbolTable;
using ir::VarId;
using support::i64;

namespace {

// ---- type gate -------------------------------------------------------------

/// True when the interpreter evaluates `e` to an int64 and the emitted C
/// computes the identical value as int64_t: constants, variable reads
/// (induction variables, and scalars — which the gate below forces to be
/// integer-assigned), and closed integer arithmetic over those. Array reads
/// and calls yield doubles; params are unbound in the kernel.
bool integer_typed(const ExprRef& e, const SymbolTable& symbols) {
  switch (e->op) {
    case ExprOp::kIntConst:
      return true;
    case ExprOp::kVarRef:
      return symbols.kind(e->var) != ir::SymbolKind::kParam;
    case ExprOp::kArrayRead:
    case ExprOp::kCall:
      return false;
    default:
      for (const ExprRef& kid : e->kids) {
        if (!integer_typed(kid, symbols)) return false;
      }
      return true;
  }
}

/// The emitter prints kFloorDiv/kCeilDiv/kMod/kMin/kMax as int64_t helper
/// calls and declares assigned scalars as int64_t; reject any tree where
/// those assumptions would silently truncate a double.
bool expr_compatible(const ExprRef& e, const SymbolTable& symbols,
                     std::string* why) {
  switch (e->op) {
    case ExprOp::kFloorDiv:
    case ExprOp::kCeilDiv:
    case ExprOp::kMod:
    case ExprOp::kMin:
    case ExprOp::kMax:
      if (!integer_typed(e, symbols)) {
        if (why != nullptr) {
          *why = std::string(ir::to_string(e->op)) +
                 " over non-integer operands";
        }
        return false;
      }
      break;
    case ExprOp::kVarRef:
      if (symbols.kind(e->var) == ir::SymbolKind::kParam) {
        if (why != nullptr) {
          *why = "param " + symbols.name(e->var) + " unbound in a kernel";
        }
        return false;
      }
      break;
    default:
      break;
  }
  for (const ExprRef& kid : e->kids) {
    if (!expr_compatible(kid, symbols, why)) return false;
  }
  return true;
}

bool body_compatible(const std::vector<ir::Stmt>& body,
                     const SymbolTable& symbols, std::string* why);

bool stmt_compatible(const ir::Stmt& stmt, const SymbolTable& symbols,
                     std::string* why) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    if (const auto* scalar = std::get_if<VarId>(&assign->lhs)) {
      if (!integer_typed(assign->rhs, symbols)) {
        if (why != nullptr) {
          *why = "scalar " + symbols.name(*scalar) +
                 " assigned a non-integer value (emitted as int64_t)";
        }
        return false;
      }
    } else {
      const auto& access = std::get<ir::ArrayAccess>(assign->lhs);
      for (const ExprRef& sub : access.subscripts) {
        if (!expr_compatible(sub, symbols, why)) return false;
      }
    }
    return expr_compatible(assign->rhs, symbols, why);
  }
  if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    if (!expr_compatible((*guard)->condition, symbols, why)) return false;
    return body_compatible((*guard)->then_body, symbols, why);
  }
  const Loop& loop = *std::get<ir::LoopPtr>(stmt);
  if (!expr_compatible(loop.lower, symbols, why) ||
      !expr_compatible(loop.upper, symbols, why)) {
    return false;
  }
  return body_compatible(loop.body, symbols, why);
}

bool body_compatible(const std::vector<ir::Stmt>& body,
                     const SymbolTable& symbols, std::string* why) {
  for (const ir::Stmt& s : body) {
    if (!stmt_compatible(s, symbols, why)) return false;
  }
  return true;
}

// ---- canonical serialization -----------------------------------------------

/// Serializer with alpha renaming: every variable becomes "v<N>" by first
/// appearance, every array "@<K>" with its shape recorded at first mention.
/// Names never enter the key, so alpha-equivalent nests collide — which is
/// the point. The array first-appearance order doubles as the kernel's
/// positional binding order.
struct KeyBuilder {
  const SymbolTable& symbols;
  std::string out;
  std::unordered_map<std::uint32_t, std::size_t> var_ords;
  std::unordered_map<std::uint32_t, std::size_t> array_ords;
  std::vector<VarId> arrays;

  void var(VarId v) {
    auto [it, fresh] = var_ords.try_emplace(v.raw, var_ords.size());
    out += "v" + std::to_string(it->second);
  }

  void array(VarId a) {
    auto [it, fresh] = array_ords.try_emplace(a.raw, array_ords.size());
    out += "@" + std::to_string(it->second);
    if (fresh) {
      arrays.push_back(a);
      for (i64 extent : symbols[a].shape) {
        out += "x" + std::to_string(extent);
      }
    }
  }

  void expr(const ExprRef& e) {
    switch (e->op) {
      case ExprOp::kIntConst:
        out += std::to_string(e->literal);
        return;
      case ExprOp::kVarRef:
        var(e->var);
        return;
      case ExprOp::kArrayRead:
        array(e->var);
        break;
      case ExprOp::kCall:
        out += e->callee;
        break;
      default:
        out += ir::to_string(e->op);
        break;
    }
    out += "(";
    for (std::size_t k = 0; k < e->kids.size(); ++k) {
      if (k > 0) out += ",";
      expr(e->kids[k]);
    }
    out += ")";
  }

  void stmt(const ir::Stmt& s) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&s)) {
      if (const auto* scalar = std::get_if<VarId>(&assign->lhs)) {
        var(*scalar);
      } else {
        const auto& access = std::get<ir::ArrayAccess>(assign->lhs);
        array(access.array);
        out += "[";
        for (std::size_t k = 0; k < access.subscripts.size(); ++k) {
          if (k > 0) out += ",";
          expr(access.subscripts[k]);
        }
        out += "]";
      }
      out += "=";
      expr(assign->rhs);
      out += ";";
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      out += "if(";
      expr((*guard)->condition);
      out += "){";
      for (const ir::Stmt& inner : (*guard)->then_body) stmt(inner);
      out += "}";
    } else {
      loop(*std::get<ir::LoopPtr>(s));
    }
  }

  void loop(const Loop& l) {
    out += l.parallel ? "doall(" : "do(";
    var(l.var);
    out += "=";
    expr(l.lower);
    out += ",";
    expr(l.upper);
    out += ",";
    out += std::to_string(l.step);
    out += "){";
    for (const ir::Stmt& s : l.body) stmt(s);
    out += "}";
  }
};

}  // namespace

bool jit_compatible(const LoopNest& nest, std::string* why) {
  COALESCE_ASSERT(nest.root != nullptr);
  return stmt_compatible(ir::Stmt{nest.root}, nest.symbols, why);
}

support::Expected<PreparedNest> prepare(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);

  // ---- analysis: DOALL + bounds + types ------------------------------------
  if (!nest.root->parallel) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "jit requires a DOALL root (run analyze_and_mark)");
  }
  if (!ir::constant_trip_count(*nest.root).has_value()) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "jit requires constant root bounds");
  }
  std::string why;
  if (!jit_compatible(nest, &why)) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "nest not jit-compatible: " + why);
  }

  // ---- transform: normalize + band extraction ------------------------------
  auto normalized = transform::normalize_nest(nest);
  if (!normalized.ok()) return normalized.error();

  PreparedNest prepared;
  prepared.normalized = std::move(normalized).value();

  // The coalesced band: the longest parallel perfect prefix whose levels
  // all have constant trip counts. Triangular or variable-bound inner
  // levels stop the band and run inside the kernel body instead.
  prepared.total = 1;
  for (const Loop* level : ir::parallel_band(*prepared.normalized.root)) {
    const auto trips = ir::constant_trip_count(*level);
    if (!trips.has_value()) break;
    prepared.band.push_back(level->var);
    prepared.extents.push_back(*trips);
    i64 total = 0;
    if (__builtin_mul_overflow(prepared.total, *trips, &total)) {
      return support::make_error(support::ErrorCode::kOverflow,
                                 "flattened trip count exceeds 64 bits");
    }
    prepared.total = total;
  }
  COALESCE_ASSERT(!prepared.band.empty());
  if (prepared.total == 0) {
    // A zero-trip level would put `% 0` constants in the emitted kernel;
    // the interpreter handles empty iteration spaces naturally, so bail.
    return support::make_error(support::ErrorCode::kUnsupported,
                               "empty iteration space");
  }

  KeyBuilder key{prepared.normalized.symbols, {}, {}, {}, {}};
  key.loop(*prepared.normalized.root);
  prepared.arrays = std::move(key.arrays);
  prepared.cache_key = std::move(key.out);
  return prepared;
}

}  // namespace coalesce::codegen
