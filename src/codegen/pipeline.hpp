// The explicit codegen pass pipeline: analysis -> transform -> emit ->
// compile. This header covers the first two passes; emit lives in
// c_emitter.hpp (emit_chunk_kernel) and compile in jit.hpp (JitCache).
//
//   prepare(nest)            analysis: DOALL/bounds/type checks
//                            transform: normalize (transform/normalize) +
//                            band extraction + canonical cache key
//   emit_chunk_kernel(...)   emit: chunk-range C kernel, division-free
//                            incremental index recovery
//   JitCache::get_or_compile compile: shared object + dlopen, cached on
//                            the canonical key
//
// Keeping the passes separate is what lets another backend slot in later:
// an OpenMP-collapse emitter would reuse prepare() verbatim and replace
// only the emit/compile pair.
#pragma once

#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "support/error.hpp"
#include "support/int_math.hpp"

namespace coalesce::codegen {

/// A nest that passed the analysis pass and is ready for the emit pass.
struct PreparedNest {
  /// The nest after transform/normalize (every constant-bound loop rewritten
  /// to lower 1, step 1). Its symbol table extends the input's: array ids
  /// are valid in both.
  ir::LoopNest normalized;
  /// Induction variables of the coalesced band, outermost first. The band
  /// is the maximal parallel perfect prefix with constant bounds; depth >= 1.
  std::vector<ir::VarId> band;
  /// Trip count per band level (after normalization: the upper bounds).
  std::vector<support::i64> extents;
  /// Flattened iteration count: product of extents.
  support::i64 total = 0;
  /// Arrays the nest touches, in canonical first-appearance order. This is
  /// the positional binding order of the kernel's `cg_arrays` parameter —
  /// alpha-equivalent nests bind their arrays to the same slots, which is
  /// what makes sharing one compiled kernel across them sound.
  std::vector<ir::VarId> arrays;
  /// Canonical serialization of the normalized nest with alpha-renamed
  /// variables (structure, bounds, steps, shapes — not names). Two nests
  /// get the same key iff the same machine code can run both.
  std::string cache_key;
};

/// The analysis + transform passes. Errors:
///   kIllegalTransform  root not marked DOALL (run analyze_and_mark first)
///   kUnsupported       non-constant root bounds, or a construct the C
///                      emitter types differently from the interpreter
///                      (scalar assigned from an array read or call,
///                      div/mod/min/max over non-integer operands, params)
///   kOverflow          flattened trip count exceeds 64 bits
[[nodiscard]] support::Expected<PreparedNest> prepare(const ir::LoopNest& nest);

/// The type gate of the analysis pass, exposed for tests: true when every
/// scalar assignment and every integer intrinsic in the tree is integer-
/// typed under both the interpreter and the emitted C.
[[nodiscard]] bool jit_compatible(const ir::LoopNest& nest,
                                  std::string* why = nullptr);

}  // namespace coalesce::codegen
