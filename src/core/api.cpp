#include "core/api.hpp"

#include <cmath>

#include "analysis/doall.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "support/assert.hpp"

namespace coalesce::core {

const char* version() noexcept { return "1.0.0"; }

namespace {

/// Deterministic array initialization shared with the codegen main():
/// element q of every array gets ((q*31 + 17) mod 97) / 7.0.
void seed_arrays(ir::Evaluator& eval, const ir::SymbolTable& symbols) {
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const ir::VarId id{raw};
    if (symbols.kind(id) != ir::SymbolKind::kArray) continue;
    auto data = eval.store().data(id);
    for (std::size_t q = 0; q < data.size(); ++q) {
      data[q] = static_cast<double>((q * 31 + 17) % 97) / 7.0;
    }
  }
}

bool bits_equal(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

}  // namespace

namespace {

/// Runs nest `a` and the given roots over `b_symbols`, then compares all
/// arrays of `a` against same-named arrays of the other universe.
bool equivalent_impl(const ir::LoopNest& a, const ir::SymbolTable& b_symbols,
                     const std::vector<ir::LoopPtr>& b_roots) {
  ir::Evaluator eval_a(a.symbols);
  ir::Evaluator eval_b(b_symbols);
  seed_arrays(eval_a, a.symbols);
  seed_arrays(eval_b, b_symbols);
  eval_a.run(*a.root);
  for (const ir::LoopPtr& root : b_roots) {
    COALESCE_ASSERT(root != nullptr);
    eval_b.run(*root);
  }

  // Compare array-by-array, matched by name (tables may differ in scalars).
  for (std::uint32_t raw = 0; raw < a.symbols.size(); ++raw) {
    const ir::VarId id_a{raw};
    if (a.symbols.kind(id_a) != ir::SymbolKind::kArray) continue;
    const auto id_b = b_symbols.lookup(a.symbols.name(id_a));
    if (!id_b.has_value() ||
        b_symbols.kind(*id_b) != ir::SymbolKind::kArray) {
      return false;
    }
    const auto da = eval_a.store().data(id_a);
    const auto db = eval_b.store().data(*id_b);
    if (da.size() != db.size()) return false;
    for (std::size_t q = 0; q < da.size(); ++q) {
      if (!bits_equal(da[q], db[q])) return false;
    }
  }
  return true;
}

}  // namespace

bool equivalent_by_execution(const ir::LoopNest& a, const ir::LoopNest& b) {
  return equivalent_impl(a, b.symbols, {b.root});
}

bool equivalent_by_execution(const ir::LoopNest& a, const ir::Program& b) {
  return equivalent_impl(a, b.symbols, b.roots);
}

support::Expected<PipelineResult> analyze_coalesce_verify(
    const ir::LoopNest& nest, const transform::CoalesceOptions& options) {
  COALESCE_ASSERT(nest.root != nullptr);

  // Work on a marked copy; the caller's nest is untouched.
  ir::LoopNest marked{nest.symbols, ir::clone(*nest.root)};
  analysis::analyze_and_mark(marked);

  auto coalesced = transform::coalesce_nest(marked, options);
  if (!coalesced.ok()) return coalesced.error();

  PipelineResult result{std::move(coalesced).value(),
                        ir::to_string(marked), std::string{}, false};
  result.coalesced_source = ir::to_string(result.coalesced.nest);
  result.verified = equivalent_by_execution(marked, result.coalesced.nest);
  if (!result.verified) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "coalesced nest diverged from the original under interpretation "
        "(library bug — please report)");
  }
  return result;
}

}  // namespace coalesce::core
