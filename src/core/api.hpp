// High-level one-call drivers built on the module APIs: the operations every
// example and experiment performs, packaged so downstream users get the
// analyze -> transform -> verify pipeline in one call.
#pragma once

#include <string>

#include "ir/stmt.hpp"
#include "support/error.hpp"
#include "transform/coalesce.hpp"

namespace coalesce::core {

/// Library version string.
[[nodiscard]] const char* version() noexcept;

/// The full pipeline: prove DOALL flags on a copy of the nest, coalesce the
/// root band, and verify semantic equivalence by interpreting both versions
/// on identically initialized arrays (bit-exact comparison). Fails when
/// analysis finds no band, the transform is illegal, or — which would be a
/// library bug — the verification mismatches.
struct PipelineResult {
  transform::CoalesceResult coalesced;
  std::string original_source;   ///< pretty-printed input (after marking)
  std::string coalesced_source;  ///< pretty-printed output
  bool verified = false;         ///< interpreter equivalence check passed
};
[[nodiscard]] support::Expected<PipelineResult> analyze_coalesce_verify(
    const ir::LoopNest& nest,
    const transform::CoalesceOptions& options = {});

/// Interpreter-level equivalence of two nests over the same symbol universe:
/// runs both on deterministically initialized arrays and compares all array
/// contents bit-exactly. The nests may have different symbol tables as long
/// as array names and shapes agree (the transformed nest adds scalars).
[[nodiscard]] bool equivalent_by_execution(const ir::LoopNest& a,
                                           const ir::LoopNest& b);

/// Same check against a multi-root program (the shape loop distribution
/// produces): the program's roots run in order through one interpreter.
[[nodiscard]] bool equivalent_by_execution(const ir::LoopNest& a,
                                           const ir::Program& b);

}  // namespace coalesce::core
