// Forwarder: the umbrella header moved to the include root in PR 5 so
// downstream code writes `#include "coalesce.hpp"`. This spelling keeps
// old includes compiling; prefer the new one.
#pragma once

// Relative path, not "coalesce.hpp": quoted lookup searches this file's
// own directory first, which would resolve to this file itself.
#include "../coalesce.hpp"
