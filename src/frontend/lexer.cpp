#include "frontend/lexer.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace coalesce::frontend {

const char* to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

support::Expected<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  int column = 1;
  std::size_t pos = 0;

  auto error = [&](const std::string& what) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("%d:%d: %s", line, column, what.c_str()));
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && pos < source.size(); ++k) {
      if (source[pos] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++pos;
    }
  };
  auto peek = [&](std::size_t ahead = 0) -> char {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  };
  auto push = [&](TokenKind kind, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    out.push_back(std::move(t));
  };

  while (pos < source.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (pos < source.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      const int tl = line, tc = column;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        text += peek();
        advance();
      }
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::move(text);
      t.line = tl;
      t.column = tc;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      const int tl = line, tc = column;
      while (pos < source.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        text += peek();
        advance();
      }
      Token t;
      t.kind = TokenKind::kNumber;
      errno = 0;
      t.number = std::strtoll(text.c_str(), nullptr, 10);
      t.text = std::move(text);
      t.line = tl;
      t.column = tc;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '+': push(TokenKind::kPlus); advance(); break;
      case '-': push(TokenKind::kMinus); advance(); break;
      case '*': push(TokenKind::kStar); advance(); break;
      case '(': push(TokenKind::kLParen); advance(); break;
      case ')': push(TokenKind::kRParen); advance(); break;
      case '{': push(TokenKind::kLBrace); advance(); break;
      case '}': push(TokenKind::kRBrace); advance(); break;
      case '[': push(TokenKind::kLBracket); advance(); break;
      case ']': push(TokenKind::kRBracket); advance(); break;
      case ',': push(TokenKind::kComma); advance(); break;
      case ';': push(TokenKind::kSemicolon); advance(); break;
      case '=':
        if (peek(1) == '=') {
          push(TokenKind::kEq);
          advance(2);
        } else {
          push(TokenKind::kAssign);
          advance();
        }
        break;
      case '<':
        if (peek(1) == '=') {
          push(TokenKind::kLe);
          advance(2);
        } else {
          push(TokenKind::kLt);
          advance();
        }
        break;
      case '>':
        if (peek(1) == '=') {
          push(TokenKind::kGe);
          advance(2);
        } else {
          push(TokenKind::kGt);
          advance();
        }
        break;
      case '!':
        if (peek(1) == '=') {
          push(TokenKind::kNe);
          advance(2);
          break;
        }
        return error("unexpected '!'");
      case '&':
        if (peek(1) == '&') {
          push(TokenKind::kAndAnd);
          advance(2);
          break;
        }
        return error("unexpected '&'");
      case '|':
        if (peek(1) == '|') {
          push(TokenKind::kOrOr);
          advance(2);
          break;
        }
        return error("unexpected '|'");
      default:
        return error(support::format("unexpected character '%c'", c));
    }
  }
  push(TokenKind::kEnd);
  return out;
}

}  // namespace coalesce::frontend
