// Lexer for the textual loop language.
//
// The language is exactly what ir/printer.hpp emits, plus declarations:
//
//   array A[10][20];
//   scalar t;
//   doall i = 1, 10 {
//     do k = 1, 20, 2 {
//       A[i][k] = fdiv(A[i][k] + 1, 2);
//       if (k <= i && i != 3) { t = k; }
//     }
//   }
//
// so every printed program parses back (round-trip property tests rely on
// this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace coalesce::frontend {

enum class TokenKind : std::uint8_t {
  kIdentifier,  ///< names and keywords (keywords resolved by the parser)
  kNumber,      ///< integer literal
  kPlus, kMinus, kStar,
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon,
  kAssign,      ///< '='
  kLt, kLe, kGt, kGe, kEq, kNe,  ///< '<' '<=' '>' '>=' '==' '!='
  kAndAnd, kOrOr,
  kEnd,         ///< end of input
};

[[nodiscard]] const char* to_string(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< identifier name or number literal
  std::int64_t number = 0; ///< value for kNumber
  int line = 1;
  int column = 1;
};

/// Tokenizes the whole input. Fails on unknown characters or malformed
/// numbers, with line/column in the message. `//` comments run to the end
/// of the line.
[[nodiscard]] support::Expected<std::vector<Token>> tokenize(
    std::string_view source);

}  // namespace coalesce::frontend
