#include "frontend/parser.hpp"

#include <algorithm>

#include "frontend/lexer.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::frontend {

using ir::ExprRef;
using ir::VarId;
using support::Error;
using support::Expected;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<ir::Program> parse() {
    ir::Program program;
    symbols_ = &program.symbols;

    while (true) {
      if (at_keyword("array") || at_keyword("scalar") || at_keyword("param")) {
        if (auto err = parse_decl()) return *err;
        continue;
      }
      break;
    }
    while (at_keyword("doall") || at_keyword("do")) {
      auto loop = parse_loop();
      if (!loop.ok()) return loop.error();
      program.roots.push_back(std::move(loop).value());
    }
    if (program.roots.empty()) {
      return fail("expected at least one loop");
    }
    if (peek().kind != TokenKind::kEnd) {
      return fail(support::format("unexpected %s after the last loop",
                                  to_string(peek().kind)));
    }
    return program;
  }

 private:
  // ---- token plumbing ------------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool at_keyword(std::string_view word) const {
    return peek().kind == TokenKind::kIdentifier && peek().text == word;
  }
  bool consume(TokenKind kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  Error fail(const std::string& what) const {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("%d:%d: %s", peek().line, peek().column,
                        what.c_str()));
  }
  std::optional<Error> expect(TokenKind kind) {
    if (consume(kind)) return std::nullopt;
    return fail(support::format("expected %s, found %s", to_string(kind),
                                to_string(peek().kind)));
  }

  // ---- declarations --------------------------------------------------------

  std::optional<Error> parse_decl() {
    const std::string kind_word = advance().text;  // array | scalar | param
    if (!at(TokenKind::kIdentifier)) {
      return fail("expected a name in declaration");
    }
    const std::string name = advance().text;
    if (symbols_->lookup(name).has_value()) {
      return fail(support::format("'%s' already declared", name.c_str()));
    }
    if (kind_word == "array") {
      std::vector<std::int64_t> shape;
      while (consume(TokenKind::kLBracket)) {
        if (!at(TokenKind::kNumber)) {
          return fail("array extents must be integer literals");
        }
        shape.push_back(advance().number);
        if (auto err = expect(TokenKind::kRBracket)) return err;
      }
      if (shape.empty()) return fail("array needs at least one extent");
      symbols_->declare(name, ir::SymbolKind::kArray, std::move(shape));
    } else if (kind_word == "scalar") {
      symbols_->declare(name, ir::SymbolKind::kScalar);
    } else {
      symbols_->declare(name, ir::SymbolKind::kParam);
    }
    return expect(TokenKind::kSemicolon);
  }

  // ---- loops and statements ------------------------------------------------

  Expected<ir::LoopPtr> parse_loop() {
    const bool parallel = peek().text == "doall";
    const ir::SourceLoc loc{peek().line, peek().column};
    advance();  // doall | do
    if (!at(TokenKind::kIdentifier)) {
      return fail("expected induction variable name");
    }
    const std::string name = advance().text;

    VarId var;
    if (auto existing = symbols_->lookup(name)) {
      if (symbols_->kind(*existing) != ir::SymbolKind::kInduction) {
        return fail(support::format(
            "'%s' is already declared as a non-loop symbol", name.c_str()));
      }
      if (std::find(live_.begin(), live_.end(), *existing) != live_.end()) {
        return fail(support::format("loop variable '%s' shadows an enclosing "
                                    "loop's variable",
                                    name.c_str()));
      }
      var = *existing;  // sequentially reused induction name: same symbol
    } else {
      var = symbols_->declare(name, ir::SymbolKind::kInduction);
    }

    if (auto err = expect(TokenKind::kAssign)) return *err;
    auto lower = parse_expr();
    if (!lower.ok()) return lower.error();
    if (auto err = expect(TokenKind::kComma)) return *err;
    auto upper = parse_expr();
    if (!upper.ok()) return upper.error();
    std::int64_t step = 1;
    if (consume(TokenKind::kComma)) {
      if (!at(TokenKind::kNumber)) return fail("step must be a literal");
      step = advance().number;
      if (step < 1) return fail("step must be positive");
    }

    auto loop = std::make_shared<ir::Loop>();
    loop->var = var;
    loop->lower = std::move(lower).value();
    loop->upper = std::move(upper).value();
    loop->step = step;
    loop->parallel = parallel;
    loop->loc = loc;

    live_.push_back(var);
    auto body = parse_block();
    live_.pop_back();
    if (!body.ok()) return body.error();
    loop->body = std::move(body).value();
    return loop;
  }

  Expected<std::vector<ir::Stmt>> parse_block() {
    if (auto err = expect(TokenKind::kLBrace)) return *err;
    std::vector<ir::Stmt> body;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) return fail("unterminated block");
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.error();
      body.push_back(std::move(stmt).value());
    }
    advance();  // }
    return body;
  }

  Expected<ir::Stmt> parse_stmt() {
    if (at_keyword("doall") || at_keyword("do")) {
      auto loop = parse_loop();
      if (!loop.ok()) return loop.error();
      return ir::Stmt{std::move(loop).value()};
    }
    if (at_keyword("if")) {
      advance();
      if (auto err = expect(TokenKind::kLParen)) return *err;
      auto condition = parse_expr();
      if (!condition.ok()) return condition.error();
      if (auto err = expect(TokenKind::kRParen)) return *err;
      auto body = parse_block();
      if (!body.ok()) return body.error();
      auto guard = std::make_shared<ir::IfStmt>();
      guard->condition = std::move(condition).value();
      guard->then_body = std::move(body).value();
      return ir::Stmt{std::move(guard)};
    }
    // Assignment.
    if (!at(TokenKind::kIdentifier)) {
      return fail("expected a statement");
    }
    const std::string name = advance().text;
    auto target = symbols_->lookup(name);
    if (!target.has_value()) {
      // Plain-name assignment implicitly declares the target: the printed
      // form of coalesced code assigns recovered index variables that have
      // no declaration syntax. They are declared kInduction (matching what
      // the transform produces), so re-printing is exact. Subscripted
      // targets must still be declared.
      if (at(TokenKind::kAssign)) {
        target = symbols_->declare(name, ir::SymbolKind::kInduction);
      } else {
        return fail(support::format("assignment to undeclared '%s'",
                                    name.c_str()));
      }
    }
    ir::LValue lhs;
    if (symbols_->kind(*target) == ir::SymbolKind::kArray) {
      std::vector<ExprRef> subs;
      while (consume(TokenKind::kLBracket)) {
        auto sub = parse_expr();
        if (!sub.ok()) return sub.error();
        subs.push_back(std::move(sub).value());
        if (auto err = expect(TokenKind::kRBracket)) return *err;
      }
      if (subs.empty()) return fail("array assignment needs subscripts");
      lhs = ir::ArrayAccess{*target, std::move(subs)};
    } else {
      lhs = *target;
    }
    if (auto err = expect(TokenKind::kAssign)) return *err;
    auto rhs = parse_expr();
    if (!rhs.ok()) return rhs.error();
    if (auto err = expect(TokenKind::kSemicolon)) return *err;
    return ir::Stmt{ir::AssignStmt{std::move(lhs), std::move(rhs).value()}};
  }

  // ---- expressions -----------------------------------------------------------

  Expected<ExprRef> parse_expr() { return parse_or(); }

  Expected<ExprRef> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    while (consume(TokenKind::kOrOr)) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      lhs = ir::logical_or(std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Expected<ExprRef> parse_and() {
    auto lhs = parse_cmp();
    if (!lhs.ok()) return lhs;
    while (consume(TokenKind::kAndAnd)) {
      auto rhs = parse_cmp();
      if (!rhs.ok()) return rhs;
      lhs = ir::logical_and(std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Expected<ExprRef> parse_cmp() {
    auto lhs = parse_add();
    if (!lhs.ok()) return lhs;
    const TokenKind kind = peek().kind;
    switch (kind) {
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
      case TokenKind::kEq:
      case TokenKind::kNe:
        break;
      default:
        return lhs;
    }
    advance();
    auto rhs = parse_add();
    if (!rhs.ok()) return rhs;
    ExprRef a = std::move(lhs).value();
    ExprRef b = std::move(rhs).value();
    switch (kind) {
      case TokenKind::kLt: return ir::cmp_lt(std::move(a), std::move(b));
      case TokenKind::kLe: return ir::cmp_le(std::move(a), std::move(b));
      case TokenKind::kGt: return ir::cmp_gt(std::move(a), std::move(b));
      case TokenKind::kGe: return ir::cmp_ge(std::move(a), std::move(b));
      case TokenKind::kEq: return ir::cmp_eq(std::move(a), std::move(b));
      default: return ir::cmp_ne(std::move(a), std::move(b));
    }
  }

  Expected<ExprRef> parse_add() {
    auto lhs = parse_mul();
    if (!lhs.ok()) return lhs;
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const bool plus = advance().kind == TokenKind::kPlus;
      auto rhs = parse_mul();
      if (!rhs.ok()) return rhs;
      lhs = plus ? ir::add(std::move(lhs).value(), std::move(rhs).value())
                 : ir::sub(std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Expected<ExprRef> parse_mul() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    while (consume(TokenKind::kStar)) {
      auto rhs = parse_unary();
      if (!rhs.ok()) return rhs;
      lhs = ir::mul(std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Expected<ExprRef> parse_unary() {
    if (consume(TokenKind::kMinus)) {
      auto inner = parse_unary();
      if (!inner.ok()) return inner;
      return ir::simplify(ir::neg(std::move(inner).value()));
    }
    return parse_primary();
  }

  Expected<ExprRef> parse_primary() {
    if (at(TokenKind::kNumber)) {
      return ir::int_const(advance().number);
    }
    if (consume(TokenKind::kLParen)) {
      auto inner = parse_expr();
      if (!inner.ok()) return inner;
      if (auto err = expect(TokenKind::kRParen)) return *err;
      return inner;
    }
    if (!at(TokenKind::kIdentifier)) {
      return fail(support::format("expected an expression, found %s",
                                  to_string(peek().kind)));
    }
    const std::string name = advance().text;

    if (at(TokenKind::kLParen)) {
      // Intrinsic or opaque call.
      advance();
      std::vector<ExprRef> args;
      if (!at(TokenKind::kRParen)) {
        while (true) {
          auto arg = parse_expr();
          if (!arg.ok()) return arg.error();
          args.push_back(std::move(arg).value());
          if (!consume(TokenKind::kComma)) break;
        }
      }
      if (auto err = expect(TokenKind::kRParen)) return *err;
      auto binary = [&](auto&& make) -> Expected<ExprRef> {
        if (args.size() != 2) {
          return fail(support::format("%s takes two arguments",
                                      name.c_str()));
        }
        return make(std::move(args[0]), std::move(args[1]));
      };
      if (name == "fdiv") return binary([](ExprRef a, ExprRef b) { return ir::floor_div(std::move(a), std::move(b)); });
      if (name == "cdiv") return binary([](ExprRef a, ExprRef b) { return ir::ceil_div(std::move(a), std::move(b)); });
      if (name == "mod") return binary([](ExprRef a, ExprRef b) { return ir::mod(std::move(a), std::move(b)); });
      if (name == "min") return binary([](ExprRef a, ExprRef b) { return ir::min_expr(std::move(a), std::move(b)); });
      if (name == "max") return binary([](ExprRef a, ExprRef b) { return ir::max_expr(std::move(a), std::move(b)); });
      return ir::call(name, std::move(args));
    }

    const auto id = symbols_->lookup(name);
    if (!id.has_value()) {
      return fail(support::format("use of undeclared '%s'", name.c_str()));
    }
    if (symbols_->kind(*id) == ir::SymbolKind::kArray) {
      std::vector<ExprRef> subs;
      while (consume(TokenKind::kLBracket)) {
        auto sub = parse_expr();
        if (!sub.ok()) return sub.error();
        subs.push_back(std::move(sub).value());
        if (auto err = expect(TokenKind::kRBracket)) return *err;
      }
      if (subs.empty()) {
        return fail(support::format("array '%s' used without subscripts",
                                    name.c_str()));
      }
      return ir::array_read(*id, std::move(subs));
    }
    return ir::var_ref(*id);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ir::SymbolTable* symbols_ = nullptr;
  std::vector<VarId> live_;  ///< induction vars of enclosing loops
};

}  // namespace

Expected<ir::Program> parse_program(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).value());
  return parser.parse();
}

Expected<ir::LoopNest> parse_nest(std::string_view source) {
  auto program = parse_program(source);
  if (!program.ok()) return program.error();
  if (program.value().roots.size() != 1) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("expected exactly one top-level loop, found %zu",
                        program.value().roots.size()));
  }
  return ir::LoopNest{std::move(program.value().symbols),
                      std::move(program.value().roots.front())};
}

std::string declarations_to_string(const ir::SymbolTable& symbols) {
  std::string out;
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const ir::VarId id{raw};
    const ir::Symbol& sym = symbols[id];
    switch (sym.kind) {
      case ir::SymbolKind::kArray: {
        out += "array " + sym.name;
        for (std::int64_t extent : sym.shape) {
          out += "[" + std::to_string(extent) + "]";
        }
        out += ";\n";
        break;
      }
      case ir::SymbolKind::kScalar:
        out += "scalar " + sym.name + ";\n";
        break;
      case ir::SymbolKind::kParam:
        out += "param " + sym.name + ";\n";
        break;
      case ir::SymbolKind::kInduction:
        break;  // declared by loops
    }
  }
  return out;
}

}  // namespace coalesce::frontend
