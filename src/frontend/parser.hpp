// Recursive-descent parser for the textual loop language (see lexer.hpp for
// the grammar's surface). Produces an ir::Program; the printer's output
// parses back exactly (modulo constant folding), which the round-trip tests
// assert.
//
// Grammar:
//
//   program    := decl* loop+
//   decl       := ("array" ident ("[" number "]")+ | "scalar" ident
//                 | "param" ident) ";"
//   loop       := ("doall" | "do") ident "=" expr "," expr ("," number)?
//                 "{" stmt* "}"
//   stmt       := loop | "if" "(" expr ")" "{" stmt* "}" | lvalue "=" expr ";"
//   expr       := or-expr with C-like precedence; fdiv/cdiv/mod/min/max are
//                 call-syntax intrinsics; other calls are opaque builtins.
#pragma once

#include <string_view>

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::frontend {

/// Parses a whole program (declarations + one or more top-level loops).
[[nodiscard]] support::Expected<ir::Program> parse_program(
    std::string_view source);

/// Convenience: parses a program that must have exactly one top-level loop.
[[nodiscard]] support::Expected<ir::LoopNest> parse_nest(
    std::string_view source);

/// Renders the declarations of a symbol table in the language's syntax
/// (arrays, scalars, params; induction variables are declared by loops).
/// `declarations_to_string(s) + to_string(nest)` re-parses to the program.
[[nodiscard]] std::string declarations_to_string(const ir::SymbolTable& symbols);

}  // namespace coalesce::frontend
