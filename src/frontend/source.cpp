#include "frontend/source.hpp"

#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>

namespace coalesce::frontend {

support::Expected<std::string> read_source(const std::string& path) {
  if (path.empty() || path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path);
  if (!in) {
    return support::make_error(support::ErrorCode::kNotFound,
                               "cannot open " + path);
  }
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string source_name(const std::string& path) {
  return (path.empty() || path == "-") ? "<stdin>" : path;
}

}  // namespace coalesce::frontend
