// The one program-loading path shared by coalescec, coalesce-client, and
// the coalesced daemon: bytes come from a file or stdin here, and from a
// wire frame in the daemon — all three then feed the same
// frontend::parse_program buffer entry point.
#pragma once

#include <string>

#include "support/error.hpp"

namespace coalesce::frontend {

/// Reads a whole program source. An empty path or "-" reads stdin (the
/// CLI's --stdin spelling); anything else is opened as a file. The error
/// carries the path so tools can print it verbatim.
[[nodiscard]] support::Expected<std::string> read_source(
    const std::string& path);

/// The name tools should report for a source loaded via `path` —
/// "<stdin>" for the stdin spellings, the path itself otherwise.
[[nodiscard]] std::string source_name(const std::string& path);

}  // namespace coalesce::frontend
