#include "index/chunk.hpp"

#include "support/assert.hpp"
#include "support/int_math.hpp"

namespace coalesce::index {

void for_each_in_chunk(const CoalescedSpace& space, Chunk chunk,
                       const std::function<void(std::span<const i64>)>& body) {
  if (chunk.empty()) return;
  COALESCE_ASSERT(chunk.first >= 1 && chunk.last <= space.total() + 1);
  IncrementalDecoder decoder(space, chunk.first);
  while (true) {
    body(decoder.original());
    if (decoder.position() + 1 >= chunk.last) break;
    decoder.advance();
  }
}

std::vector<Chunk> static_blocks(i64 total, i64 parts) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(parts >= 1);
  std::vector<Chunk> out;
  out.reserve(static_cast<std::size_t>(parts));
  const i64 base = total / parts;
  const i64 extra = total % parts;
  i64 next = 1;
  for (i64 p = 0; p < parts; ++p) {
    const i64 size = base + (p < extra ? 1 : 0);
    out.push_back(Chunk{next, next + size});
    next += size;
  }
  COALESCE_ASSERT(next == total + 1);
  return out;
}

std::vector<std::vector<i64>> static_cyclic(i64 total, i64 parts) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(parts >= 1);
  std::vector<std::vector<i64>> out(static_cast<std::size_t>(parts));
  for (i64 j = 1; j <= total; ++j) {
    out[static_cast<std::size_t>((j - 1) % parts)].push_back(j);
  }
  return out;
}

i64 UnitPolicy::next_chunk(i64 remaining) {
  COALESCE_ASSERT(remaining > 0);
  return 1;
}

FixedChunkPolicy::FixedChunkPolicy(i64 k) : k_(k) {
  COALESCE_ASSERT(k >= 1);
}

i64 FixedChunkPolicy::next_chunk(i64 remaining) {
  COALESCE_ASSERT(remaining > 0);
  return std::min(k_, remaining);
}

GuidedPolicy::GuidedPolicy(i64 processors, i64 min_chunk)
    : processors_(processors), min_chunk_(min_chunk) {
  COALESCE_ASSERT(processors >= 1);
  COALESCE_ASSERT(min_chunk >= 1);
}

i64 GuidedPolicy::next_chunk(i64 remaining) {
  COALESCE_ASSERT(remaining > 0);
  const i64 guided = support::ceil_div(remaining, processors_);
  return std::min(remaining, std::max(guided, min_chunk_));
}

FactoringPolicy::FactoringPolicy(i64 processors) : processors_(processors) {
  COALESCE_ASSERT(processors >= 1);
}

i64 FactoringPolicy::next_chunk(i64 remaining) {
  COALESCE_ASSERT(remaining > 0);
  if (batch_left_ == 0) {
    // Start a new batch: P chunks covering half the remaining iterations.
    batch_chunk_ = std::max<i64>(
        1, support::ceil_div(remaining, 2 * processors_));
    batch_left_ = processors_;
  }
  --batch_left_;
  return std::min(remaining, batch_chunk_);
}

TrapezoidPolicy::TrapezoidPolicy(i64 total, i64 processors) {
  COALESCE_ASSERT(total >= 1);
  COALESCE_ASSERT(processors >= 1);
  // Classic TSS(first, last) with first = N/(2P), last = 1: the number of
  // dispatches is S = ceil(2N / (first + last)) and sizes decrease by
  // (first - last)/(S - 1) per dispatch.
  const i64 first = std::max<i64>(1, total / (2 * processors));
  const i64 last = 1;
  const i64 dispatches = support::ceil_div(2 * total, first + last);
  next_size_ = first;
  decrement_ = dispatches <= 1 ? 0 : (first - last) / std::max<i64>(1, dispatches - 1);
}

i64 TrapezoidPolicy::next_chunk(i64 remaining) {
  COALESCE_ASSERT(remaining > 0);
  const i64 take = std::min(remaining, std::max<i64>(1, next_size_));
  next_size_ -= decrement_;
  if (next_size_ < 1) next_size_ = 1;
  return take;
}

ChunkSchedule::ChunkSchedule(std::vector<i64> starts)
    : starts_(std::move(starts)) {}

ChunkSchedule ChunkSchedule::precompute(ChunkPolicy& policy, i64 total) {
  COALESCE_ASSERT(total >= 0);
  std::vector<i64> starts{1};
  i64 remaining = total;
  while (remaining > 0) {
    const i64 take = policy.next_chunk(remaining);
    COALESCE_ASSERT_MSG(take >= 1 && take <= remaining,
                        "policy returned an invalid chunk size");
    starts.push_back(starts.back() + take);
    remaining -= take;
  }
  return ChunkSchedule(std::move(starts));
}

std::vector<Chunk> ChunkSchedule::chunks() const {
  std::vector<Chunk> out;
  out.reserve(chunk_count());
  for (std::size_t i = 0; i < chunk_count(); ++i) out.push_back(chunk(i));
  return out;
}

std::vector<Chunk> dispatch_sequence(ChunkPolicy& policy, i64 total) {
  COALESCE_ASSERT(total >= 0);
  std::vector<Chunk> out;
  i64 next = 1;
  i64 remaining = total;
  while (remaining > 0) {
    const i64 take = policy.next_chunk(remaining);
    COALESCE_ASSERT_MSG(take >= 1 && take <= remaining,
                        "policy returned an invalid chunk size");
    out.push_back(Chunk{next, next + take});
    next += take;
    remaining -= take;
  }
  return out;
}

}  // namespace coalesce::index
