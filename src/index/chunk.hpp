// Chunk algebra over the coalesced index space.
//
// Schedulers hand out half-open ranges [first, last) of the 1-based
// coalesced index. This header provides the helpers both the real runtime
// and the simulator share: iterating a chunk with the strength-reduced
// decoder, splitting the space into static blocks, and the chunk-size
// sequences of the self-scheduling family (unit, fixed-size chunking,
// guided self-scheduling, trapezoid self-scheduling).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "index/coalesced_space.hpp"
#include "index/incremental.hpp"

namespace coalesce::index {

/// Half-open range of coalesced indices: iterations first..last-1 (1-based).
struct Chunk {
  i64 first = 1;
  i64 last = 1;

  [[nodiscard]] i64 size() const noexcept { return last - first; }
  [[nodiscard]] bool empty() const noexcept { return last <= first; }
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

/// Calls `body(original_indices)` for every iteration of the chunk, in
/// ascending coalesced order, using one full decode plus odometer advances.
void for_each_in_chunk(const CoalescedSpace& space, Chunk chunk,
                       const std::function<void(std::span<const i64>)>& body);

/// Static block partition of [1, total] into `parts` contiguous chunks whose
/// sizes differ by at most one (the first `total mod parts` chunks are one
/// larger). Empty chunks are included so the result always has `parts`
/// entries, mirroring processors that receive no work.
[[nodiscard]] std::vector<Chunk> static_blocks(i64 total, i64 parts);

/// Static cyclic partition: processor p takes iterations p+1, p+1+P, ...
/// Returned as per-processor iteration lists (not contiguous chunks).
[[nodiscard]] std::vector<std::vector<i64>> static_cyclic(i64 total,
                                                          i64 parts);

// ---- self-scheduling chunk-size policies -----------------------------------

/// Policy interface: given remaining iteration count, produce the size of
/// the next chunk to dispatch (>= 1 while remaining > 0).
class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;
  [[nodiscard]] virtual i64 next_chunk(i64 remaining) = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Unit self-scheduling: one iteration per dispatch (maximum balance,
/// maximum synchronization traffic).
class UnitPolicy final : public ChunkPolicy {
 public:
  i64 next_chunk(i64 remaining) override;
  const char* name() const noexcept override { return "self(1)"; }
};

/// Fixed-size chunking: k iterations per dispatch.
class FixedChunkPolicy final : public ChunkPolicy {
 public:
  explicit FixedChunkPolicy(i64 k);
  i64 next_chunk(i64 remaining) override;
  const char* name() const noexcept override { return "chunk(k)"; }

 private:
  i64 k_;
};

/// Guided self-scheduling (Polychronopoulos & Kuck 1987): each dispatch
/// takes ceil(remaining / P) iterations. O(P log(N/P)) dispatches total.
class GuidedPolicy final : public ChunkPolicy {
 public:
  explicit GuidedPolicy(i64 processors, i64 min_chunk = 1);
  i64 next_chunk(i64 remaining) override;
  const char* name() const noexcept override { return "gss"; }

 private:
  i64 processors_;
  i64 min_chunk_;
};

/// Factoring (Hummel/Schonberg/Flynn): chunks are handed out in *batches*
/// of P equal-sized chunks; each batch takes half of the remaining work
/// (chunk = ceil(remaining / (2P))). More robust than GSS when early
/// iterations are the expensive ones, at ~2x GSS's dispatch count.
class FactoringPolicy final : public ChunkPolicy {
 public:
  explicit FactoringPolicy(i64 processors);
  i64 next_chunk(i64 remaining) override;
  const char* name() const noexcept override { return "factoring"; }

 private:
  i64 processors_;
  i64 batch_left_ = 0;   ///< chunks remaining in the current batch
  i64 batch_chunk_ = 0;  ///< chunk size of the current batch
};

/// Trapezoid self-scheduling (Tzen & Ni): chunk sizes decrease linearly from
/// first to last. Dispatch count ~ 2N/(first+last).
class TrapezoidPolicy final : public ChunkPolicy {
 public:
  TrapezoidPolicy(i64 total, i64 processors);
  i64 next_chunk(i64 remaining) override;
  const char* name() const noexcept override { return "tss"; }

 private:
  i64 next_size_;
  i64 decrement_;
};

/// Runs a policy to exhaustion over `total` iterations and returns the
/// dispatched chunks in order. Used by tests and the analytic experiments.
[[nodiscard]] std::vector<Chunk> dispatch_sequence(ChunkPolicy& policy,
                                                   i64 total);

// ---- precomputed schedules --------------------------------------------------

/// The chunk sequence of a self-scheduling policy, materialized as a
/// boundary table.
///
/// Every policy above is a deterministic function of (total, P): the whole
/// sequence of chunk boundaries is known before the loop starts. Computing
/// it once at region entry turns variable-chunk dispatch into "claim the
/// next table slot" — a single fetch&add on the chunk index — which is
/// exactly the machine primitive the paper assumes, with no critical
/// section left (see runtime::ChunkScheduleDispatcher). Cost: O(#chunks)
/// time and space at entry, e.g. ~P·log(N/P) entries for GSS.
class ChunkSchedule {
 public:
  /// Runs `policy` to exhaustion over [1, total] and records the
  /// boundaries. total >= 0 (an empty schedule has zero chunks).
  [[nodiscard]] static ChunkSchedule precompute(ChunkPolicy& policy,
                                                i64 total);

  [[nodiscard]] i64 total() const noexcept { return starts_.back() - 1; }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return starts_.size() - 1;
  }
  [[nodiscard]] Chunk chunk(std::size_t i) const noexcept {
    return Chunk{starts_[i], starts_[i + 1]};
  }

  /// The whole sequence, materialized (tests and analytic experiments).
  [[nodiscard]] std::vector<Chunk> chunks() const;

 private:
  explicit ChunkSchedule(std::vector<i64> starts);

  /// starts_[i] is chunk i's first index; starts_[chunk_count()] == total+1.
  std::vector<i64> starts_;
};

}  // namespace coalesce::index
