#include "index/coalesced_space.hpp"

#include "support/assert.hpp"
#include "support/int_math.hpp"
#include "support/strings.hpp"

namespace coalesce::index {

using support::ceil_div;
using support::floor_div;

support::Expected<CoalescedSpace> CoalescedSpace::create(
    std::vector<i64> extents) {
  std::vector<LevelGeometry> levels;
  levels.reserve(extents.size());
  for (i64 n : extents) levels.push_back(LevelGeometry{1, n, 1});
  return create(std::move(levels));
}

support::Expected<CoalescedSpace> CoalescedSpace::create(
    std::vector<LevelGeometry> levels) {
  if (levels.empty()) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "coalesced space needs at least one level");
  }
  std::vector<i64> extents;
  extents.reserve(levels.size());
  for (std::size_t k = 0; k < levels.size(); ++k) {
    const LevelGeometry& g = levels[k];
    if (g.extent < 1) {
      return support::make_error(
          support::ErrorCode::kInvalidArgument,
          support::format("level %zu has extent %lld; empty and degenerate "
                          "loops must be handled before coalescing",
                          k, static_cast<long long>(g.extent)));
    }
    if (g.step < 1) {
      return support::make_error(
          support::ErrorCode::kInvalidArgument,
          support::format("level %zu has non-positive step", k));
    }
    extents.push_back(g.extent);
  }
  auto total = support::checked_product(extents);
  if (!total) {
    return support::make_error(support::ErrorCode::kOverflow,
                               "iteration-space size exceeds 64 bits");
  }
  std::vector<i64> suffix = support::suffix_products(extents);
  return CoalescedSpace(std::move(levels), std::move(extents),
                        std::move(suffix));
}

CoalescedSpace::CoalescedSpace(std::vector<LevelGeometry> levels,
                               std::vector<i64> extents,
                               std::vector<i64> suffix)
    : levels_(std::move(levels)),
      extents_(std::move(extents)),
      suffix_(std::move(suffix)) {
  suffix_magic_.reserve(suffix_.size());
  for (const i64 p : suffix_) suffix_magic_.emplace_back(p);
}

i64 CoalescedSpace::extent(std::size_t level) const {
  COALESCE_ASSERT(level < extents_.size());
  return extents_[level];
}

const LevelGeometry& CoalescedSpace::level(std::size_t k) const {
  COALESCE_ASSERT(k < levels_.size());
  return levels_[k];
}

i64 CoalescedSpace::suffix_product(std::size_t k) const {
  COALESCE_ASSERT(k < suffix_.size());
  return suffix_[k];
}

void CoalescedSpace::decode_paper(i64 j, std::span<i64> out) const {
  COALESCE_ASSERT(out.size() == depth());
  COALESCE_ASSERT_MSG(j >= 1 && j <= total(), "coalesced index out of range");
  // With j >= 1 and positive P's, ceil(j / P_{k+1}) == (j-1)/P_{k+1} + 1 and
  // floor((j-1) / P_k) == (j-1)/P_k, so both terms run on one non-negative
  // dividend through the precomputed multipliers.
  const support::u64 n = static_cast<support::u64>(j - 1);
  for (std::size_t k = 0; k < depth(); ++k) {
    // i_k(j) = ceil(j / P_{k+1}) - N_k * floor((j-1) / P_k)
    out[k] = static_cast<i64>(suffix_magic_[k + 1].divide(n)) + 1 -
             extents_[k] * static_cast<i64>(suffix_magic_[k].divide(n));
  }
}

void CoalescedSpace::decode_mixed_radix(i64 j, std::span<i64> out) const {
  COALESCE_ASSERT(out.size() == depth());
  COALESCE_ASSERT_MSG(j >= 1 && j <= total(), "coalesced index out of range");
  support::u64 rem = static_cast<support::u64>(j - 1);  // 0-based
  for (std::size_t k = 0; k < depth(); ++k) {
    const support::u64 q = suffix_magic_[k + 1].divide(rem);
    out[k] = static_cast<i64>(q) + 1;
    rem -= q * static_cast<support::u64>(suffix_[k + 1]);
  }
}

void CoalescedSpace::decode_paper_hwdiv(i64 j, std::span<i64> out) const {
  COALESCE_ASSERT(out.size() == depth());
  COALESCE_ASSERT_MSG(j >= 1 && j <= total(), "coalesced index out of range");
  for (std::size_t k = 0; k < depth(); ++k) {
    // i_k(j) = ceil(j / P_{k+1}) - N_k * floor((j-1) / P_k)
    out[k] = ceil_div(j, suffix_[k + 1]) -
             extents_[k] * floor_div(j - 1, suffix_[k]);
  }
}

void CoalescedSpace::decode_mixed_radix_hwdiv(i64 j, std::span<i64> out) const {
  COALESCE_ASSERT(out.size() == depth());
  COALESCE_ASSERT_MSG(j >= 1 && j <= total(), "coalesced index out of range");
  i64 rem = j - 1;  // 0-based
  for (std::size_t k = 0; k < depth(); ++k) {
    out[k] = rem / suffix_[k + 1] + 1;
    rem %= suffix_[k + 1];
  }
}

i64 CoalescedSpace::encode(std::span<const i64> normalized) const {
  COALESCE_ASSERT(normalized.size() == depth());
  i64 j = 0;
  for (std::size_t k = 0; k < depth(); ++k) {
    COALESCE_ASSERT_MSG(normalized[k] >= 1 && normalized[k] <= extents_[k],
                        "normalized index out of range");
    j += (normalized[k] - 1) * suffix_[k + 1];
  }
  return j + 1;
}

void CoalescedSpace::decode_original(i64 j, std::span<i64> out) const {
  decode_paper(j, out);
  for (std::size_t k = 0; k < depth(); ++k) {
    out[k] = original_value(k, out[k]);
  }
}

i64 CoalescedSpace::original_value(std::size_t k, i64 normalized) const {
  COALESCE_ASSERT(k < depth());
  COALESCE_ASSERT(normalized >= 1 && normalized <= extents_[k]);
  return levels_[k].lower + (normalized - 1) * levels_[k].step;
}

i64 CoalescedSpace::encode_original(std::span<const i64> original) const {
  COALESCE_ASSERT(original.size() == depth());
  std::vector<i64> normalized(depth());
  for (std::size_t k = 0; k < depth(); ++k) {
    const LevelGeometry& g = levels_[k];
    const i64 offset = original[k] - g.lower;
    COALESCE_ASSERT_MSG(offset >= 0 && offset % g.step == 0,
                        "value not on the level's lattice");
    normalized[k] = offset / g.step + 1;
  }
  return encode(normalized);
}

std::size_t CoalescedSpace::divisions_per_decode_paper() const noexcept {
  // One ceiling division and one floor division per level; the innermost
  // level's ceil(j / 1) and the outermost floor((j-1) / P_0) fold away in
  // generated code, but we report the formula's nominal cost.
  return 2 * depth();
}

std::size_t CoalescedSpace::divisions_per_decode_mixed_radix()
    const noexcept {
  return 2 * depth();
}

}  // namespace coalesce::index
