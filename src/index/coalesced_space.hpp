// The coalesced iteration space and its index-recovery maps.
//
// Coalescing an m-deep rectangular nest with trip counts N_1..N_m flattens
// the iteration space to a single index j in [1, N] with N = prod N_k. This
// class implements both directions of the bijection:
//
//  * decode_paper  — the closed form from the paper, one ceiling and one
//    floor division per level:
//        i_k(j) = ceil(j / P_{k+1}) - N_k * floor((j-1) / P_k)
//    where P_k = N_k * N_{k+1} * ... * N_m (suffix products, P_{m+1} = 1);
//  * decode_mixed_radix — the equivalent digit extraction
//        i_k(j) = ((j-1) / P_{k+1}) mod N_k + 1
//    (one truncating division + one modulus per level).
//
// Both produce *normalized* indices in [1, N_k]; `decode_original` maps them
// through each level's (lower, step) to the original loop values. Property
// tests assert the two decoders agree on every point of random spaces.
//
// The suffix products P_k are fixed for the lifetime of the space, so both
// decoders run division-free: a support::MagicDiv multiplier is precomputed
// per level at construction and every div/mod above becomes a widening
// multiply plus shift. The `_hwdiv` variants keep the plain hardware-divide
// forms callable as the differential-test oracle and the "before" side of
// the E16 benchmark.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "support/int_math.hpp"
#include "support/magic_div.hpp"

namespace coalesce::index {

using support::i64;

/// One loop level of the original (possibly unnormalized) nest:
/// values are lower, lower+step, ..., lower+(extent-1)*step.
struct LevelGeometry {
  i64 lower = 1;
  i64 extent = 1;  ///< trip count; must be >= 1
  i64 step = 1;    ///< must be >= 1
};

class CoalescedSpace {
 public:
  /// Normalized space: level k runs 1..extents[k].
  static support::Expected<CoalescedSpace> create(std::vector<i64> extents);

  /// General space with per-level lower bounds and steps.
  static support::Expected<CoalescedSpace> create(
      std::vector<LevelGeometry> levels);

  [[nodiscard]] std::size_t depth() const noexcept { return extents_.size(); }
  [[nodiscard]] i64 total() const noexcept { return suffix_[0]; }
  [[nodiscard]] i64 extent(std::size_t level) const;
  [[nodiscard]] const LevelGeometry& level(std::size_t k) const;

  /// P_k = extents[k] * ... * extents[m-1]; suffix_product(depth()) == 1.
  [[nodiscard]] i64 suffix_product(std::size_t k) const;

  /// Paper's closed form, strength-reduced: the per-level divisions run as
  /// precomputed multiply+shift. j in [1, total]; out.size() == depth().
  void decode_paper(i64 j, std::span<i64> out) const;

  /// Mixed-radix digit extraction, strength-reduced the same way.
  void decode_mixed_radix(i64 j, std::span<i64> out) const;

  /// Reference forms of the two decoders using hardware div/mod. Kept
  /// callable as the differential oracle (tests assert exact agreement with
  /// the magic-number forms) and for the E16 before/after measurement.
  void decode_paper_hwdiv(i64 j, std::span<i64> out) const;
  void decode_mixed_radix_hwdiv(i64 j, std::span<i64> out) const;

  /// Normalized indices (1-based per level) -> coalesced j in [1, total].
  [[nodiscard]] i64 encode(std::span<const i64> normalized) const;

  /// Decode j and map through (lower, step) to original loop values.
  void decode_original(i64 j, std::span<i64> out) const;

  /// Map one normalized index to the original value at a level.
  [[nodiscard]] i64 original_value(std::size_t level, i64 normalized) const;

  /// Original loop values -> coalesced j (inverse of decode_original).
  [[nodiscard]] i64 encode_original(std::span<const i64> original) const;

  /// Cost accounting for experiment E7: division-family ops per decode.
  [[nodiscard]] std::size_t divisions_per_decode_paper() const noexcept;
  [[nodiscard]] std::size_t divisions_per_decode_mixed_radix() const noexcept;

 private:
  CoalescedSpace(std::vector<LevelGeometry> levels, std::vector<i64> extents,
                 std::vector<i64> suffix);

  std::vector<LevelGeometry> levels_;
  std::vector<i64> extents_;
  std::vector<i64> suffix_;  ///< size depth()+1, suffix_[depth()] == 1
  /// Magic divider for each suffix product (same indexing as suffix_).
  std::vector<support::MagicDiv> suffix_magic_;
};

}  // namespace coalesce::index
