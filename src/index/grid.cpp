#include "index/grid.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace coalesce::index {

namespace {

/// Recursively assigns divisors of `remaining_p` to levels [k..m).
void search(const std::vector<i64>& extents, std::size_t k, i64 remaining_p,
            std::vector<i64>& grid, i64 load_so_far, GridAllocation& best) {
  const std::size_t m = extents.size();
  if (k == m - 1) {
    // Last level takes whatever remains.
    grid[k] = remaining_p;
    const i64 load =
        load_so_far * support::ceil_div(extents[k], remaining_p);
    if (best.max_load == 0 || load < best.max_load) {
      best.max_load = load;
      best.grid = grid;
    }
    return;
  }
  for (i64 g = 1; g <= remaining_p; ++g) {
    if (remaining_p % g != 0) continue;
    grid[k] = g;
    const i64 load = load_so_far * support::ceil_div(extents[k], g);
    // Prune: load only grows monotonically with the remaining factors' 1s.
    if (best.max_load != 0 && load >= best.max_load) continue;
    search(extents, k + 1, remaining_p / g, grid, load, best);
  }
}

i64 total_iterations(const std::vector<i64>& extents) {
  auto total = support::checked_product(extents);
  COALESCE_ASSERT(total.has_value());
  return *total;
}

}  // namespace

GridAllocation best_grid(const std::vector<i64>& extents, i64 processors) {
  COALESCE_ASSERT(!extents.empty());
  COALESCE_ASSERT(processors >= 1);
  for (i64 n : extents) COALESCE_ASSERT(n >= 1);

  GridAllocation best;
  std::vector<i64> grid(extents.size(), 1);
  search(extents, 0, processors, grid, 1, best);
  COALESCE_ASSERT(best.max_load > 0);
  best.efficiency =
      static_cast<double>(total_iterations(extents)) /
      (static_cast<double>(processors) * static_cast<double>(best.max_load));
  return best;
}

i64 coalesced_max_load(const std::vector<i64>& extents, i64 processors) {
  COALESCE_ASSERT(processors >= 1);
  return support::ceil_div(total_iterations(extents), processors);
}

double coalesced_efficiency(const std::vector<i64>& extents, i64 processors) {
  const i64 total = total_iterations(extents);
  const i64 load = coalesced_max_load(extents, processors);
  return static_cast<double>(total) /
         (static_cast<double>(processors) * static_cast<double>(load));
}

}  // namespace coalesce::index
