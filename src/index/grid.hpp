// Processor allocation: multi-dimensional grids vs the coalesced 1-D space.
//
// Without coalescing, assigning P processors to an m-deep nest means
// factoring P = g_1 * ... * g_m and block-partitioning level k among g_k
// processors; each processor then owns prod_k ceil(N_k / g_k) iterations.
// Whenever some g_k does not divide N_k the grid wastes capacity, and for
// prime or awkward P no good factorization exists at all. The coalesced
// loop needs no factorization: max load is ceil(prod N_k / P), within one
// iteration of ideal for every P.
//
// This module enumerates factorizations exactly (P is small) and reports
// the best grid — the quantitative form of the paper's processor-allocation
// argument (experiment E12).
#pragma once

#include <vector>

#include "support/int_math.hpp"

namespace coalesce::index {

using support::i64;

struct GridAllocation {
  std::vector<i64> grid;   ///< g_k per level, prod == P
  i64 max_load = 0;        ///< prod_k ceil(N_k / g_k)
  double efficiency = 0.0; ///< total iterations / (P * max_load)
};

/// The best (minimum max-load) factorization of `processors` over the
/// nest's extents. Exhaustive over all ordered factorizations.
[[nodiscard]] GridAllocation best_grid(const std::vector<i64>& extents,
                                       i64 processors);

/// Max load of the coalesced 1-D allocation: ceil(prod extents / P).
[[nodiscard]] i64 coalesced_max_load(const std::vector<i64>& extents,
                                     i64 processors);

/// Efficiency of the coalesced allocation (total / (P * max_load)).
[[nodiscard]] double coalesced_efficiency(const std::vector<i64>& extents,
                                          i64 processors);

}  // namespace coalesce::index
