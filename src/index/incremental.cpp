#include "index/incremental.hpp"

#include "support/assert.hpp"

namespace coalesce::index {

IncrementalDecoder::IncrementalDecoder(const CoalescedSpace& space,
                                       i64 start_j)
    : space_(&space),
      position_(0),
      normalized_(space.depth()),
      original_(space.depth()) {
  seek(start_j);
}

void IncrementalDecoder::seek(i64 j) {
  position_ = j;
  space_->decode_paper(j, normalized_);
  for (std::size_t k = 0; k < space_->depth(); ++k) {
    original_[k] = space_->original_value(k, normalized_[k]);
  }
}

void IncrementalDecoder::advance() noexcept {
  COALESCE_ASSERT_MSG(position_ < space_->total(),
                      "advance past end of space");
  ++position_;
  // Odometer: increment the innermost digit; on overflow reset it and carry
  // outward. Amortized cost is < 2 digit updates per call.
  for (std::size_t k = space_->depth(); k-- > 0;) {
    const LevelGeometry& g = space_->level(k);
    if (normalized_[k] < space_->extent(k)) {
      ++normalized_[k];
      original_[k] += g.step;
      return;
    }
    normalized_[k] = 1;
    original_[k] = g.lower;
    ++carries_;
  }
  COALESCE_ASSERT_MSG(false, "odometer overflowed a full space");
}

}  // namespace coalesce::index
