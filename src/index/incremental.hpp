// Division-free (strength-reduced) index recovery.
//
// A processor that executes a *contiguous* chunk of the coalesced loop only
// needs one full decode — for the chunk's first iteration — after which each
// subsequent iteration is an odometer increment: ++innermost digit, carry on
// overflow. This replaces 2m divisions per iteration with an expected
// O(1 + 1/N_m + 1/(N_m N_{m-1}) + ...) ≈ 1 addition/compare per iteration,
// which is the optimization measured by experiment E7.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/coalesced_space.hpp"

namespace coalesce::index {

class IncrementalDecoder {
 public:
  /// Positions the decoder at coalesced index `start_j` (one full decode).
  IncrementalDecoder(const CoalescedSpace& space, i64 start_j);

  /// Current coalesced index, in [1, total] (or total+1 after exhausting).
  [[nodiscard]] i64 position() const noexcept { return position_; }

  /// Normalized indices for the current position (1-based per level).
  [[nodiscard]] std::span<const i64> normalized() const noexcept {
    return normalized_;
  }

  /// Original loop values for the current position.
  [[nodiscard]] std::span<const i64> original() const noexcept {
    return original_;
  }

  /// Moves to position()+1. Division-free. Valid while position() < total.
  void advance() noexcept;

  /// Repositions with one full decode (used when a scheduler hands the
  /// worker a non-adjacent chunk).
  void seek(i64 j);

  /// Carries performed so far (statistics for the E7 report: how often the
  /// odometer rolls more than one digit).
  [[nodiscard]] std::uint64_t carries() const noexcept { return carries_; }

 private:
  const CoalescedSpace* space_;
  i64 position_;
  std::vector<i64> normalized_;
  std::vector<i64> original_;
  std::uint64_t carries_ = 0;
};

}  // namespace coalesce::index
