#include "ir/builder.hpp"

#include "support/assert.hpp"

namespace coalesce::ir {

VarId NestBuilder::array(std::string name, std::vector<std::int64_t> shape) {
  return symbols_.declare(std::move(name), SymbolKind::kArray,
                          std::move(shape));
}

VarId NestBuilder::scalar(std::string name) {
  return symbols_.declare(std::move(name), SymbolKind::kScalar);
}

VarId NestBuilder::param(std::string name) {
  return symbols_.declare(std::move(name), SymbolKind::kParam);
}

VarId NestBuilder::begin_loop(std::string name, std::int64_t lo,
                              std::int64_t hi, std::int64_t step,
                              bool parallel) {
  return begin_loop_expr(std::move(name), int_const(lo), int_const(hi), step,
                         parallel);
}

VarId NestBuilder::begin_parallel_loop(std::string name, std::int64_t lo,
                                       std::int64_t hi, std::int64_t step) {
  return begin_loop(std::move(name), lo, hi, step, /*parallel=*/true);
}

VarId NestBuilder::begin_loop_expr(std::string name, ExprRef lo, ExprRef hi,
                                   std::int64_t step, bool parallel) {
  COALESCE_ASSERT_MSG(step > 0, "loop steps must be positive; normalize first");
  const VarId var = symbols_.declare(std::move(name), SymbolKind::kInduction);
  auto loop = std::make_shared<Loop>();
  loop->var = var;
  loop->lower = std::move(lo);
  loop->upper = std::move(hi);
  loop->step = step;
  loop->parallel = parallel;
  open_.push_back(Frame{std::move(loop), nullptr});
  return var;
}

std::vector<Stmt>* NestBuilder::current_body() {
  if (open_.empty()) return nullptr;
  Frame& top = open_.back();
  return top.loop != nullptr ? &top.loop->body : &top.guard->then_body;
}

void NestBuilder::append(Stmt stmt) {
  std::vector<Stmt>* body = current_body();
  if (body == nullptr) {
    completed_.push_back(std::move(stmt));
  } else {
    body->push_back(std::move(stmt));
  }
}

void NestBuilder::end_loop() {
  COALESCE_ASSERT_MSG(!open_.empty() && open_.back().loop != nullptr,
                      "end_loop without a matching begin_loop");
  LoopPtr finished = std::move(open_.back().loop);
  open_.pop_back();
  append(std::move(finished));
}

void NestBuilder::begin_if(ExprRef condition) {
  COALESCE_ASSERT_MSG(!open_.empty(), "guard outside any loop");
  COALESCE_ASSERT(condition != nullptr);
  auto guard = std::make_shared<IfStmt>();
  guard->condition = std::move(condition);
  open_.push_back(Frame{nullptr, std::move(guard)});
}

void NestBuilder::end_if() {
  COALESCE_ASSERT_MSG(!open_.empty() && open_.back().guard != nullptr,
                      "end_if without a matching begin_if");
  IfPtr finished = std::move(open_.back().guard);
  open_.pop_back();
  append(std::move(finished));
}

void NestBuilder::assign(LValue lhs, ExprRef rhs) {
  COALESCE_ASSERT_MSG(!open_.empty(), "assignment outside any loop");
  COALESCE_ASSERT(rhs != nullptr);
  append(AssignStmt{std::move(lhs), std::move(rhs)});
}

LValue NestBuilder::element(VarId array, std::vector<VarId> subscripts) const {
  std::vector<ExprRef> subs;
  subs.reserve(subscripts.size());
  for (VarId v : subscripts) subs.push_back(var_ref(v));
  return ArrayAccess{array, std::move(subs)};
}

LValue NestBuilder::element_expr(VarId array,
                                 std::vector<ExprRef> subscripts) const {
  return ArrayAccess{array, std::move(subscripts)};
}

ExprRef NestBuilder::read(VarId array, std::vector<VarId> subscripts) const {
  std::vector<ExprRef> subs;
  subs.reserve(subscripts.size());
  for (VarId v : subscripts) subs.push_back(var_ref(v));
  return array_read(array, std::move(subs));
}

LoopNest NestBuilder::build() {
  COALESCE_ASSERT_MSG(open_.empty(), "build() with unclosed loops or guards");
  COALESCE_ASSERT_MSG(completed_.size() == 1,
                      "build() requires exactly one root loop");
  auto* root = std::get_if<LoopPtr>(&completed_.front());
  COALESCE_ASSERT_MSG(root != nullptr, "root statement must be a loop");
  return LoopNest{std::move(symbols_), std::move(*root)};
}

// ---- stock workloads -------------------------------------------------------

LoopNest make_matmul(std::int64_t n, std::int64_t m, std::int64_t p) {
  NestBuilder b;
  const VarId a = b.array("A", {n, p});
  const VarId bb = b.array("B", {p, m});
  const VarId c = b.array("C", {n, m});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId j = b.begin_parallel_loop("j", 1, m);
  b.assign(b.element(c, {i, j}), int_const(0));
  const VarId k = b.begin_loop("k", 1, p);  // sequential reduction
  b.assign(b.element(c, {i, j}),
           add(b.read(c, {i, j}), mul(b.read(a, {i, k}), b.read(bb, {k, j}))));
  b.end_loop();
  b.end_loop();
  b.end_loop();
  return b.build();
}

LoopNest make_gauss_jordan_backsolve(std::int64_t n, std::int64_t m) {
  // After elimination, AB is n x (n+m) holding [A' | B']; the solution is
  // X(i,j) = AB(i, j+n) / AB(i,i). Both loops are parallel; [Pol87]-style
  // coalescing fuses them into one (the optimization the mismatched thesis
  // also performs by hand in its Appendix A).
  NestBuilder b;
  const VarId ab = b.array("AB", {n, n + m});
  const VarId x = b.array("X", {n, m});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId j = b.begin_parallel_loop("j", 1, m);
  b.assign(b.element(x, {i, j}),
           call("real_div", {array_read(ab, {var_ref(i),
                                             add(var_ref(j), int_const(n))}),
                             b.read(ab, {i, i})}));
  b.end_loop();
  b.end_loop();
  return b.build();
}

LoopNest make_jacobi_step(std::int64_t n) {
  NestBuilder b;
  // Interior sweep of an (n+2)x(n+2) grid: loops run 2..n+1 (array
  // subscripts are 1-based), so the +/-1 halo accesses stay in bounds.
  // The non-unit lower bound also exercises normalization before coalescing.
  const VarId a = b.array("A", {n + 2, n + 2});
  const VarId out = b.array("B", {n + 2, n + 2});
  const VarId i = b.begin_parallel_loop("i", 2, n + 1);
  const VarId j = b.begin_parallel_loop("j", 2, n + 1);
  auto at = [&](std::int64_t di, std::int64_t dj) {
    return array_read(a, {add(var_ref(i), int_const(di)),
                          add(var_ref(j), int_const(dj))});
  };
  b.assign(b.element(out, {i, j}),
           call("avg4", {at(-1, 0), at(1, 0), at(0, -1), at(0, 1)}));
  b.end_loop();
  b.end_loop();
  return b.build();
}

LoopNest make_rectangular_witness(const std::vector<std::int64_t>& extents) {
  COALESCE_ASSERT(!extents.empty());
  NestBuilder b;
  const VarId out = b.array("OUT", extents);
  std::vector<VarId> ivs;
  ivs.reserve(extents.size());
  for (std::size_t d = 0; d < extents.size(); ++d) {
    ivs.push_back(b.begin_parallel_loop("i" + std::to_string(d), 1,
                                        extents[d]));
  }
  // OUT(i0,...,id) = i0*10^(d) + i1*10^(d-1) + ... + id — a distinct value
  // per cell whose digits reveal which indices wrote it.
  ExprRef value = int_const(0);
  for (VarId iv : ivs) {
    value = add(mul(value, int_const(10)), var_ref(iv));
  }
  b.assign(b.element(out, ivs), std::move(value));
  for (std::size_t d = 0; d < extents.size(); ++d) b.end_loop();
  return b.build();
}

LoopNest make_recurrence(std::int64_t n) {
  // Loop runs 2..n+1 so the A(i-1) read stays within the 1-based array.
  NestBuilder b;
  const VarId a = b.array("A", {n + 1});
  const VarId i = b.begin_loop("i", 2, n + 1);  // analyzer keeps this serial
  b.assign(b.element(a, {i}),
           mul(int_const(2),
               array_read(a, {sub(var_ref(i), int_const(1))})));
  b.end_loop();
  return b.build();
}

LoopNest make_triangular_witness(std::int64_t n) {
  COALESCE_ASSERT(n >= 1);
  NestBuilder b;
  const VarId out = b.array("OUT", {n, n});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId j =
      b.begin_loop_expr("j", int_const(1), var_ref(i), 1, /*parallel=*/true);
  b.assign(b.element(out, {i, j}),
           add(mul(var_ref(i), int_const(10)), var_ref(j)));
  b.end_loop();
  b.end_loop();
  return b.build();
}

LoopNest make_pivot_update(std::int64_t n, std::int64_t piv) {
  COALESCE_ASSERT(n >= 2);
  COALESCE_ASSERT(piv >= 1 && piv < n);
  NestBuilder b;
  const VarId ab = b.array("AB", {n, n});
  const VarId m = b.array("M", {n});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId kk = b.begin_parallel_loop("kk", piv + 1, n);
  b.begin_if(cmp_ne(var_ref(i), int_const(piv)));
  b.assign(b.element(ab, {i, kk}),
           sub(b.read(ab, {i, kk}),
               mul(b.read(m, {i}),
                   array_read(ab, {int_const(piv), var_ref(kk)}))));
  b.end_if();
  b.end_loop();
  b.end_loop();
  return b.build();
}

LoopNest make_pi_strips(std::int64_t strips, std::int64_t intervals_per_strip) {
  // SUM(t) accumulates the rectangle heights of strip t; strips are
  // independent (outer DOALL), intervals within a strip are a reduction.
  NestBuilder b;
  const VarId sum = b.array("SUM", {strips});
  const VarId t = b.begin_parallel_loop("t", 1, strips);
  b.assign(b.element(sum, {t}), int_const(0));
  const VarId r = b.begin_loop("r", 1, intervals_per_strip);
  b.assign(b.element(sum, {t}),
           add(b.read(sum, {t}),
               call("pi_height",
                    {var_ref(t), var_ref(r), int_const(strips),
                     int_const(intervals_per_strip)})));
  b.end_loop();
  b.end_loop();
  return b.build();
}

}  // namespace coalesce::ir
