// Fluent construction of loop nests, plus the stock workloads used across
// tests, examples, and the experiment harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/stmt.hpp"

namespace coalesce::ir {

/// Builds one loop nest imperatively:
///
///   NestBuilder b;
///   VarId c = b.array("C", {n, m});
///   VarId i = b.begin_parallel_loop("i", 1, n);
///   VarId j = b.begin_parallel_loop("j", 1, m);
///   b.assign(b.element(c, {i, j}), int_const(0));
///   b.end_loop();
///   b.end_loop();
///   LoopNest nest = b.build();
///
/// The builder asserts on structural misuse (unbalanced begin/end, zero or
/// multiple root loops) because those are programming errors, not inputs.
class NestBuilder {
 public:
  NestBuilder() = default;

  SymbolTable& symbols() noexcept { return symbols_; }

  // -- declarations --------------------------------------------------------
  VarId array(std::string name, std::vector<std::int64_t> shape);
  VarId scalar(std::string name);
  VarId param(std::string name);

  // -- loops ---------------------------------------------------------------
  /// Opens a loop with constant inclusive bounds. Returns the induction var.
  VarId begin_loop(std::string name, std::int64_t lo, std::int64_t hi,
                   std::int64_t step = 1, bool parallel = false);
  VarId begin_parallel_loop(std::string name, std::int64_t lo,
                            std::int64_t hi, std::int64_t step = 1);
  /// Opens a loop with expression bounds (e.g. referencing params).
  VarId begin_loop_expr(std::string name, ExprRef lo, ExprRef hi,
                        std::int64_t step = 1, bool parallel = false);
  void end_loop();

  /// Opens a guarded block: statements until end_if() execute only when
  /// `condition` is nonzero.
  void begin_if(ExprRef condition);
  void end_if();

  // -- statements ----------------------------------------------------------
  void assign(LValue lhs, ExprRef rhs);

  /// Shorthand for an ArrayAccess lvalue with induction-variable subscripts.
  [[nodiscard]] LValue element(VarId array, std::vector<VarId> subscripts) const;
  /// Shorthand for an ArrayAccess lvalue with expression subscripts.
  [[nodiscard]] LValue element_expr(VarId array,
                                    std::vector<ExprRef> subscripts) const;
  /// Shorthand for an array-element read with induction-variable subscripts.
  [[nodiscard]] ExprRef read(VarId array, std::vector<VarId> subscripts) const;

  /// Finalizes. Exactly one root loop must have been built and closed.
  [[nodiscard]] LoopNest build();

 private:
  /// One open construct (loop or guard) whose body is being filled.
  struct Frame {
    LoopPtr loop;  ///< exactly one of loop/guard is set
    IfPtr guard;
  };
  std::vector<Stmt>* current_body();
  void append(Stmt stmt);

  SymbolTable symbols_;
  std::vector<Frame> open_;        ///< stack of constructs under construction
  std::vector<Stmt> completed_;    ///< closed top-level statements
};

// ---- stock workloads -------------------------------------------------------
// Each returns a nest whose arrays are declared in the nest's symbol table;
// shapes are baked in so the evaluator can allocate storage directly.

/// C(i,j) = sum_k A(i,k)*B(k,j) — i/j parallel, k sequential reduction.
/// Perfect 2-deep parallel band over an inner sequential loop.
[[nodiscard]] LoopNest make_matmul(std::int64_t n, std::int64_t m,
                                   std::int64_t p);

/// X(i,j) = AB(i, j+n) / AB(i,i) — the back-substitution nest of
/// Gauss-Jordan elimination; a perfect 2-deep fully parallel nest.
[[nodiscard]] LoopNest make_gauss_jordan_backsolve(std::int64_t n,
                                                   std::int64_t m);

/// B(i,j) = (A(i-1,j) + A(i+1,j) + A(i,j-1) + A(i,j+1)) / 4 over the
/// interior of an (n+2)x(n+2) grid — Jacobi relaxation step, fully parallel.
[[nodiscard]] LoopNest make_jacobi_step(std::int64_t n);

/// A fully parallel rectangular d-deep nest writing OUT(i1,...,id) =
/// i1 + 10*i2 + 100*i3 + ... — trivially checkable contents for tests.
[[nodiscard]] LoopNest make_rectangular_witness(
    const std::vector<std::int64_t>& extents);

/// A(i) = 2*A(i-1) — a genuinely sequential loop (flow dependence), used to
/// verify the analyzer refuses to mark it DOALL.
[[nodiscard]] LoopNest make_recurrence(std::int64_t n);

/// Lower-triangular witness: OUT(i,j) = 10*i + j for j in 1..i — the
/// canonical non-rectangular band for guarded coalescing.
[[nodiscard]] LoopNest make_triangular_witness(std::int64_t n);

/// The Gauss-elimination style update band for a fixed pivot `piv`:
/// doall i = 1..n, doall kk = piv+1..n: AB(i,kk) -= M(i) * AB(piv,kk) —
/// rectangular but offset, with an interior guard skipping the pivot row.
[[nodiscard]] LoopNest make_pivot_update(std::int64_t n, std::int64_t piv);

/// The pi-integration nest: SUM(t) accumulates rectangle heights for a strip
/// of the [0,1] interval; outer loop over strips is parallel.
[[nodiscard]] LoopNest make_pi_strips(std::int64_t strips,
                                      std::int64_t intervals_per_strip);

}  // namespace coalesce::ir
