#include "ir/eval.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/int_math.hpp"

namespace coalesce::ir {

double as_double(const Value& v) noexcept {
  if (const auto* i = std::get_if<std::int64_t>(&v))
    return static_cast<double>(*i);
  return std::get<double>(v);
}

std::int64_t as_int(const Value& v) {
  const auto* i = std::get_if<std::int64_t>(&v);
  COALESCE_ASSERT_MSG(i != nullptr, "integer value required");
  return *i;
}

// ---- ArrayStore -----------------------------------------------------------

ArrayStore::ArrayStore(const SymbolTable& symbols) : symbols_(&symbols) {
  slots_.resize(symbols.size());
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const Symbol& sym = symbols[VarId{raw}];
    if (sym.kind != SymbolKind::kArray) continue;
    std::int64_t total = 1;
    for (std::int64_t extent : sym.shape) {
      COALESCE_ASSERT(extent >= 1);
      auto next = support::checked_mul(total, extent);
      COALESCE_ASSERT_MSG(next.has_value(), "array too large");
      total = *next;
    }
    slots_[raw].shape = sym.shape;
    slots_[raw].data.assign(static_cast<std::size_t>(total), 0.0);
  }
}

std::span<double> ArrayStore::data(VarId array) {
  COALESCE_ASSERT(array.valid() && array.raw < slots_.size());
  COALESCE_ASSERT_MSG(!slots_[array.raw].shape.empty() ||
                          !slots_[array.raw].data.empty(),
                      "not an array symbol");
  return slots_[array.raw].data;
}

std::span<const double> ArrayStore::data(VarId array) const {
  COALESCE_ASSERT(array.valid() && array.raw < slots_.size());
  return slots_[array.raw].data;
}

std::size_t ArrayStore::offset(VarId array,
                               std::span<const std::int64_t> subs) const {
  COALESCE_ASSERT(array.valid() && array.raw < slots_.size());
  const Slot& slot = slots_[array.raw];
  COALESCE_ASSERT_MSG(subs.size() == slot.shape.size(),
                      "subscript arity mismatch");
  std::size_t off = 0;
  for (std::size_t d = 0; d < subs.size(); ++d) {
    const std::int64_t s = subs[d];
    COALESCE_ASSERT_MSG(s >= 1 && s <= slot.shape[d],
                        "array subscript out of bounds");
    off = off * static_cast<std::size_t>(slot.shape[d]) +
          static_cast<std::size_t>(s - 1);
  }
  return off;
}

double ArrayStore::get(VarId array,
                       std::span<const std::int64_t> subscripts) const {
  return slots_[array.raw].data[offset(array, subscripts)];
}

void ArrayStore::set(VarId array, std::span<const std::int64_t> subscripts,
                     double value) {
  slots_[array.raw].data[offset(array, subscripts)] = value;
}

void ArrayStore::fill(VarId array, double value) {
  auto span = data(array);
  std::fill(span.begin(), span.end(), value);
}

bool ArrayStore::identical(const ArrayStore& a, const ArrayStore& b) {
  if (a.slots_.size() != b.slots_.size()) return false;
  for (std::size_t i = 0; i < a.slots_.size(); ++i) {
    if (a.slots_[i].shape != b.slots_[i].shape) return false;
    const auto& da = a.slots_[i].data;
    const auto& db = b.slots_[i].data;
    if (da.size() != db.size()) return false;
    for (std::size_t k = 0; k < da.size(); ++k) {
      // Bit comparison: transformations must not perturb results at all.
      if (!(da[k] == db[k]) && !(std::isnan(da[k]) && std::isnan(db[k])))
        return false;
    }
  }
  return true;
}

// ---- Evaluator ------------------------------------------------------------

Evaluator::Evaluator(const SymbolTable& symbols)
    : symbols_(&symbols),
      owned_store_(std::make_unique<ArrayStore>(symbols)),
      store_(owned_store_.get()),
      env_(symbols.size()) {
  register_default_builtins();
}

Evaluator::Evaluator(const SymbolTable& symbols, ArrayStore& shared)
    : symbols_(&symbols), store_(&shared), env_(symbols.size()) {
  register_default_builtins();
}

void Evaluator::register_default_builtins() {
  register_builtin("real_div", [](std::span<const Value> args) -> Value {
    COALESCE_ASSERT(args.size() == 2);
    const double denom = as_double(args[1]);
    COALESCE_ASSERT_MSG(denom != 0.0, "real_div by zero");
    return as_double(args[0]) / denom;
  });
  register_builtin("avg4", [](std::span<const Value> args) -> Value {
    COALESCE_ASSERT(args.size() == 4);
    return (as_double(args[0]) + as_double(args[1]) + as_double(args[2]) +
            as_double(args[3])) /
           4.0;
  });
  register_builtin("pi_height", [](std::span<const Value> args) -> Value {
    // pi_height(strip, r, strips, intervals_per_strip): the area of global
    // rectangle g = (strip-1)*ips + r under 4/(1+x^2) with width 1/total.
    COALESCE_ASSERT(args.size() == 4);
    const std::int64_t strip = as_int(args[0]);
    const std::int64_t r = as_int(args[1]);
    const std::int64_t strips = as_int(args[2]);
    const std::int64_t ips = as_int(args[3]);
    const double total = static_cast<double>(strips * ips);
    const double g = static_cast<double>((strip - 1) * ips + r);
    const double x = (g - 0.5) / total;
    return (4.0 / (1.0 + x * x)) / total;
  });
}

void Evaluator::run_body_once(const Loop& loop, std::int64_t value) {
  env_[loop.var.raw] = Value{value};
  ++iterations_;
  if (observer_ != nullptr) observer_->on_iteration(loop, value);
  for (const Stmt& s : loop.body) exec(s);
}

void Evaluator::set_param(VarId param, std::int64_t value) {
  COALESCE_ASSERT(symbols_->kind(param) == SymbolKind::kParam);
  env_[param.raw] = Value{value};
}

void Evaluator::bind_scalar(VarId scalar, Value value) {
  COALESCE_ASSERT(symbols_->kind(scalar) == SymbolKind::kScalar);
  env_[scalar.raw] = value;
}

void Evaluator::register_builtin(std::string name, Builtin fn) {
  builtins_[std::move(name)] = std::move(fn);
}

std::optional<Value> Evaluator::scalar_value(VarId v) const {
  COALESCE_ASSERT(v.valid());
  if (v.raw >= env_.size()) return std::nullopt;
  return env_[v.raw];
}

void Evaluator::run(const Loop& root) {
  const std::int64_t lo = eval_int(root.lower);
  const std::int64_t hi = eval_int(root.upper);
  COALESCE_ASSERT(root.step > 0);
  for (std::int64_t v = lo; v <= hi; v += root.step) {
    run_body_once(root, v);
  }
  if (observer_ != nullptr && lo <= hi) observer_->on_loop_exit(root);
  env_[root.var.raw].reset();  // induction var dead outside its loop
}

void Evaluator::exec(const Stmt& stmt) {
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    exec_assign(*assign);
  } else if (const auto* guard = std::get_if<IfPtr>(&stmt)) {
    if (eval_int((*guard)->condition) != 0) {
      for (const Stmt& s : (*guard)->then_body) exec(s);
    }
  } else {
    run(*std::get<LoopPtr>(stmt));
  }
}

void Evaluator::exec_assign(const AssignStmt& assign) {
  const Value rhs = eval(assign.rhs);
  if (const auto* scalar = std::get_if<VarId>(&assign.lhs)) {
    if (observer_ != nullptr &&
        symbols_->kind(*scalar) == SymbolKind::kScalar) {
      observer_->on_scalar_access(*scalar, /*is_write=*/true);
    }
    env_[scalar->raw] = rhs;
    return;
  }
  const auto& access = std::get<ArrayAccess>(assign.lhs);
  std::vector<std::int64_t> subs;
  subs.reserve(access.subscripts.size());
  for (const auto& sub : access.subscripts) subs.push_back(eval_int(sub));
  if (observer_ != nullptr) {
    observer_->on_array_access(access.array,
                               store_->offset(access.array, subs),
                               /*is_write=*/true);
  }
  store_->set(access.array, subs, as_double(rhs));
}

std::int64_t Evaluator::eval_int(const ExprRef& expr) {
  return as_int(eval(expr));
}

Value Evaluator::eval(const ExprRef& expr) {
  COALESCE_ASSERT(expr != nullptr);
  switch (expr->op) {
    case ExprOp::kIntConst:
      return Value{expr->literal};
    case ExprOp::kVarRef: {
      if (observer_ != nullptr &&
          symbols_->kind(expr->var) == SymbolKind::kScalar) {
        observer_->on_scalar_access(expr->var, /*is_write=*/false);
      }
      const auto& bound = env_[expr->var.raw];
      COALESCE_ASSERT_MSG(bound.has_value(), "read of unbound variable");
      return *bound;
    }
    case ExprOp::kArrayRead: {
      std::vector<std::int64_t> subs;
      subs.reserve(expr->kids.size());
      for (const auto& sub : expr->kids) subs.push_back(eval_int(sub));
      if (observer_ != nullptr) {
        observer_->on_array_access(expr->var,
                                   store_->offset(expr->var, subs),
                                   /*is_write=*/false);
      }
      return Value{store_->get(expr->var, subs)};
    }
    case ExprOp::kCall: {
      std::vector<Value> args;
      args.reserve(expr->kids.size());
      for (const auto& arg : expr->kids) args.push_back(eval(arg));
      auto it = builtins_.find(expr->callee);
      COALESCE_ASSERT_MSG(it != builtins_.end(), "unknown builtin");
      return it->second(args);
    }
    case ExprOp::kNeg: {
      const Value v = eval(expr->kids[0]);
      if (const auto* i = std::get_if<std::int64_t>(&v)) return Value{-*i};
      return Value{-std::get<double>(v)};
    }
    default:
      break;
  }

  // Binary operators.
  const Value a = eval(expr->kids[0]);
  const Value b = eval(expr->kids[1]);
  const bool both_int = std::holds_alternative<std::int64_t>(a) &&
                        std::holds_alternative<std::int64_t>(b);

  switch (expr->op) {
    case ExprOp::kAdd:
      if (both_int) return Value{as_int(a) + as_int(b)};
      return Value{as_double(a) + as_double(b)};
    case ExprOp::kSub:
      if (both_int) return Value{as_int(a) - as_int(b)};
      return Value{as_double(a) - as_double(b)};
    case ExprOp::kMul:
      if (both_int) return Value{as_int(a) * as_int(b)};
      return Value{as_double(a) * as_double(b)};
    case ExprOp::kFloorDiv:
      return Value{support::floor_div(as_int(a), as_int(b))};
    case ExprOp::kCeilDiv:
      return Value{support::ceil_div(as_int(a), as_int(b))};
    case ExprOp::kMod:
      return Value{support::mod_floor(as_int(a), as_int(b))};
    case ExprOp::kMin:
      if (both_int) return Value{std::min(as_int(a), as_int(b))};
      return Value{std::min(as_double(a), as_double(b))};
    case ExprOp::kMax:
      if (both_int) return Value{std::max(as_int(a), as_int(b))};
      return Value{std::max(as_double(a), as_double(b))};
    case ExprOp::kCmpLt:
      return Value{std::int64_t{as_double(a) < as_double(b) ? 1 : 0}};
    case ExprOp::kCmpLe:
      return Value{std::int64_t{as_double(a) <= as_double(b) ? 1 : 0}};
    case ExprOp::kCmpGt:
      return Value{std::int64_t{as_double(a) > as_double(b) ? 1 : 0}};
    case ExprOp::kCmpGe:
      return Value{std::int64_t{as_double(a) >= as_double(b) ? 1 : 0}};
    case ExprOp::kCmpEq:
      if (both_int) return Value{std::int64_t{as_int(a) == as_int(b) ? 1 : 0}};
      return Value{std::int64_t{as_double(a) == as_double(b) ? 1 : 0}};
    case ExprOp::kCmpNe:
      if (both_int) return Value{std::int64_t{as_int(a) != as_int(b) ? 1 : 0}};
      return Value{std::int64_t{as_double(a) != as_double(b) ? 1 : 0}};
    case ExprOp::kAnd:
      return Value{std::int64_t{as_int(a) != 0 && as_int(b) != 0 ? 1 : 0}};
    case ExprOp::kOr:
      return Value{std::int64_t{as_int(a) != 0 || as_int(b) != 0 ? 1 : 0}};
    default:
      COALESCE_ASSERT_MSG(false, "unhandled expression op");
  }
  return Value{std::int64_t{0}};
}

}  // namespace coalesce::ir
