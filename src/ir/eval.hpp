// Reference interpreter for the loop-nest IR.
//
// The interpreter executes nests *sequentially* in program order (the DOALL
// flag is advisory; a legal DOALL produces the same result either way). Its
// job is to define the semantics against which every transformation is
// verified: tests run the original and the coalesced nest through this
// evaluator and demand bit-identical array contents.
//
// Arrays hold doubles and are subscripted 1-based (Fortran style, matching
// the builders). Index arithmetic is exact 64-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "ir/stmt.hpp"

namespace coalesce::ir {

using Value = std::variant<std::int64_t, double>;

[[nodiscard]] double as_double(const Value& v) noexcept;
[[nodiscard]] std::int64_t as_int(const Value& v);  // asserts if double

/// Row-major storage for every array in a symbol table.
class ArrayStore {
 public:
  explicit ArrayStore(const SymbolTable& symbols);

  [[nodiscard]] std::span<double> data(VarId array);
  [[nodiscard]] std::span<const double> data(VarId array) const;

  /// Element access with 1-based subscripts, bounds-asserted.
  [[nodiscard]] double get(VarId array,
                           std::span<const std::int64_t> subscripts) const;
  void set(VarId array, std::span<const std::int64_t> subscripts,
           double value);

  /// Flat row-major offset of 1-based subscripts.
  [[nodiscard]] std::size_t offset(VarId array,
                                   std::span<const std::int64_t> subs) const;

  void fill(VarId array, double value);

  /// True when every array has identical contents in both stores.
  [[nodiscard]] static bool identical(const ArrayStore& a, const ArrayStore& b);

 private:
  struct Slot {
    std::vector<std::int64_t> shape;
    std::vector<double> data;
  };
  const SymbolTable* symbols_;
  std::vector<Slot> slots_;  // indexed by VarId raw; empty for non-arrays
};

/// Builtin function: pure mapping from argument values to a value.
using Builtin = std::function<Value(std::span<const Value>)>;

/// Observation hooks for instrumented interpretation. The shadow-conflict
/// race oracle (runtime/race_oracle.hpp) installs one to log every memory
/// access with the iteration vector it happened under; all callbacks default
/// to no-ops and the evaluator pays one pointer test per site when none is
/// installed.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  /// A loop iteration begins: `loop`'s induction variable was just bound to
  /// `value`, before any body statement runs.
  virtual void on_iteration(const Loop& loop, std::int64_t value) {
    (void)loop;
    (void)value;
  }
  /// A sequential run() of `loop` finished its last iteration.
  virtual void on_loop_exit(const Loop& loop) { (void)loop; }
  /// An array element at flat row-major `offset` was read or written.
  virtual void on_array_access(VarId array, std::size_t offset,
                               bool is_write) {
    (void)array;
    (void)offset;
    (void)is_write;
  }
  /// A SymbolKind::kScalar variable was read or written (induction variables
  /// and parameters are not reported).
  virtual void on_scalar_access(VarId scalar, bool is_write) {
    (void)scalar;
    (void)is_write;
  }
};

class Evaluator {
 public:
  explicit Evaluator(const SymbolTable& symbols);

  /// Evaluator sharing an external array store. Used by the parallel IR
  /// executor: one store, one evaluator (with private scalar environment)
  /// per worker. The store must outlive the evaluator.
  Evaluator(const SymbolTable& symbols, ArrayStore& shared);

  /// Binds an integer parameter (SymbolKind::kParam) for the whole run.
  void set_param(VarId param, std::int64_t value);

  /// Pre-binds a scalar before execution. The race oracle binds every
  /// scalar to 0 so nests that read a scalar before assigning it — exactly
  /// the racy inputs it exists to execute — do not trip the unbound-variable
  /// assertion.
  void bind_scalar(VarId scalar, Value value);

  /// Installs (or clears, with nullptr) the access observer. The observer
  /// must outlive every run()/eval() call made while installed.
  void set_observer(ExecutionObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Registers/overrides a builtin callable by kCall expressions.
  /// "real_div", "avg4", and "pi_height" are pre-registered.
  void register_builtin(std::string name, Builtin fn);

  [[nodiscard]] ArrayStore& store() noexcept { return *store_; }
  [[nodiscard]] const ArrayStore& store() const noexcept { return *store_; }

  /// Executes a loop tree sequentially.
  void run(const Loop& root);

  /// Executes the loop's body once with the induction variable bound to
  /// `value` (no bounds check — the caller owns iteration-space slicing).
  /// This is the parallel executor's per-iteration entry point.
  void run_body_once(const Loop& loop, std::int64_t value);

  /// Evaluates an expression in the current environment.
  [[nodiscard]] Value eval(const ExprRef& expr);

  /// Final binding of a non-array variable after run(), or nullopt when it
  /// was never assigned. The differential post-pass oracle diffs scalar
  /// state through this.
  [[nodiscard]] std::optional<Value> scalar_value(VarId v) const;

  /// Number of loop-body iterations executed so far (innermost statements
  /// don't count; one per loop-variable binding). Useful in tests.
  [[nodiscard]] std::uint64_t iterations_executed() const noexcept {
    return iterations_;
  }

 private:
  void register_default_builtins();
  void exec(const Stmt& stmt);
  void exec_assign(const AssignStmt& assign);
  [[nodiscard]] std::int64_t eval_int(const ExprRef& expr);

  const SymbolTable* symbols_;
  std::unique_ptr<ArrayStore> owned_store_;  ///< null when sharing
  ArrayStore* store_;                        ///< owned or external
  std::vector<std::optional<Value>> env_;    // by VarId raw
  std::map<std::string, Builtin, std::less<>> builtins_;
  std::uint64_t iterations_ = 0;
  ExecutionObserver* observer_ = nullptr;
};

}  // namespace coalesce::ir
