#include "ir/expr.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/int_math.hpp"

namespace coalesce::ir {
namespace {

ExprRef make(ExprOp op, std::vector<ExprRef> kids) {
  auto node = std::make_shared<ExprNode>();
  node->op = op;
  node->kids = std::move(kids);
  for (const auto& k : node->kids) COALESCE_ASSERT(k != nullptr);
  return node;
}

}  // namespace

const char* to_string(ExprOp op) noexcept {
  switch (op) {
    case ExprOp::kIntConst: return "const";
    case ExprOp::kVarRef: return "var";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kFloorDiv: return "fdiv";
    case ExprOp::kCeilDiv: return "cdiv";
    case ExprOp::kMod: return "mod";
    case ExprOp::kMin: return "min";
    case ExprOp::kMax: return "max";
    case ExprOp::kNeg: return "neg";
    case ExprOp::kArrayRead: return "read";
    case ExprOp::kCall: return "call";
    case ExprOp::kCmpLt: return "<";
    case ExprOp::kCmpLe: return "<=";
    case ExprOp::kCmpGt: return ">";
    case ExprOp::kCmpGe: return ">=";
    case ExprOp::kCmpEq: return "==";
    case ExprOp::kCmpNe: return "!=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
  }
  return "?";
}

ExprRef int_const(std::int64_t v) {
  auto node = std::make_shared<ExprNode>();
  node->op = ExprOp::kIntConst;
  node->literal = v;
  return node;
}

ExprRef var_ref(VarId v) {
  COALESCE_ASSERT(v.valid());
  auto node = std::make_shared<ExprNode>();
  node->op = ExprOp::kVarRef;
  node->var = v;
  return node;
}

ExprRef add(ExprRef a, ExprRef b) { return make(ExprOp::kAdd, {std::move(a), std::move(b)}); }
ExprRef sub(ExprRef a, ExprRef b) { return make(ExprOp::kSub, {std::move(a), std::move(b)}); }
ExprRef mul(ExprRef a, ExprRef b) { return make(ExprOp::kMul, {std::move(a), std::move(b)}); }
ExprRef floor_div(ExprRef a, ExprRef b) { return make(ExprOp::kFloorDiv, {std::move(a), std::move(b)}); }
ExprRef ceil_div(ExprRef a, ExprRef b) { return make(ExprOp::kCeilDiv, {std::move(a), std::move(b)}); }
ExprRef mod(ExprRef a, ExprRef b) { return make(ExprOp::kMod, {std::move(a), std::move(b)}); }
ExprRef min_expr(ExprRef a, ExprRef b) { return make(ExprOp::kMin, {std::move(a), std::move(b)}); }
ExprRef max_expr(ExprRef a, ExprRef b) { return make(ExprOp::kMax, {std::move(a), std::move(b)}); }
ExprRef neg(ExprRef a) { return make(ExprOp::kNeg, {std::move(a)}); }

ExprRef array_read(VarId array, std::vector<ExprRef> subscripts) {
  COALESCE_ASSERT(array.valid());
  auto node = std::make_shared<ExprNode>();
  node->op = ExprOp::kArrayRead;
  node->var = array;
  node->kids = std::move(subscripts);
  return node;
}

ExprRef cmp_lt(ExprRef a, ExprRef b) { return make(ExprOp::kCmpLt, {std::move(a), std::move(b)}); }
ExprRef cmp_le(ExprRef a, ExprRef b) { return make(ExprOp::kCmpLe, {std::move(a), std::move(b)}); }
ExprRef cmp_gt(ExprRef a, ExprRef b) { return make(ExprOp::kCmpGt, {std::move(a), std::move(b)}); }
ExprRef cmp_ge(ExprRef a, ExprRef b) { return make(ExprOp::kCmpGe, {std::move(a), std::move(b)}); }
ExprRef cmp_eq(ExprRef a, ExprRef b) { return make(ExprOp::kCmpEq, {std::move(a), std::move(b)}); }
ExprRef cmp_ne(ExprRef a, ExprRef b) { return make(ExprOp::kCmpNe, {std::move(a), std::move(b)}); }
ExprRef logical_and(ExprRef a, ExprRef b) { return make(ExprOp::kAnd, {std::move(a), std::move(b)}); }
ExprRef logical_or(ExprRef a, ExprRef b) { return make(ExprOp::kOr, {std::move(a), std::move(b)}); }

ExprRef call(std::string callee, std::vector<ExprRef> args) {
  auto node = std::make_shared<ExprNode>();
  node->op = ExprOp::kCall;
  node->callee = std::move(callee);
  node->kids = std::move(args);
  return node;
}

bool equal(const ExprRef& a, const ExprRef& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->op != b->op || a->literal != b->literal || a->var != b->var ||
      a->callee != b->callee || a->kids.size() != b->kids.size())
    return false;
  for (std::size_t i = 0; i < a->kids.size(); ++i)
    if (!equal(a->kids[i], b->kids[i])) return false;
  return true;
}

bool references(const ExprRef& e, VarId v) {
  if (e == nullptr) return false;
  if ((e->op == ExprOp::kVarRef || e->op == ExprOp::kArrayRead) && e->var == v)
    return true;
  return std::any_of(e->kids.begin(), e->kids.end(),
                     [&](const ExprRef& k) { return references(k, v); });
}

namespace {
void collect_vars(const ExprRef& e, std::vector<VarId>& out) {
  if (e == nullptr) return;
  if (e->op == ExprOp::kVarRef || e->op == ExprOp::kArrayRead)
    out.push_back(e->var);
  for (const auto& k : e->kids) collect_vars(k, out);
}
}  // namespace

std::vector<VarId> referenced_vars(const ExprRef& e) {
  std::vector<VarId> out;
  collect_vars(e, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::int64_t> as_constant(const ExprRef& e) {
  ExprRef folded = simplify(e);
  if (folded->op == ExprOp::kIntConst) return folded->literal;
  return std::nullopt;
}

ExprRef substitute(const ExprRef& e, VarId v, const ExprRef& replacement) {
  COALESCE_ASSERT(e != nullptr);
  if (e->op == ExprOp::kVarRef) {
    return e->var == v ? replacement : e;
  }
  bool changed = false;
  std::vector<ExprRef> kids;
  kids.reserve(e->kids.size());
  for (const auto& k : e->kids) {
    ExprRef nk = substitute(k, v, replacement);
    changed = changed || nk != k;
    kids.push_back(std::move(nk));
  }
  if (!changed) return e;
  auto node = std::make_shared<ExprNode>(*e);
  node->kids = std::move(kids);
  return node;
}

namespace {

std::optional<std::int64_t> fold_binary(ExprOp op, std::int64_t a,
                                        std::int64_t b) {
  using support::checked_add;
  using support::checked_mul;
  switch (op) {
    case ExprOp::kAdd: return checked_add(a, b);
    case ExprOp::kSub: return checked_add(a, -b);
    case ExprOp::kMul: return checked_mul(a, b);
    case ExprOp::kFloorDiv:
      if (b == 0) return std::nullopt;
      return support::floor_div(a, b);
    case ExprOp::kCeilDiv:
      if (b == 0) return std::nullopt;
      return support::ceil_div(a, b);
    case ExprOp::kMod:
      if (b == 0) return std::nullopt;
      return support::mod_floor(a, b);
    case ExprOp::kMin: return std::min(a, b);
    case ExprOp::kMax: return std::max(a, b);
    case ExprOp::kCmpLt: return a < b ? 1 : 0;
    case ExprOp::kCmpLe: return a <= b ? 1 : 0;
    case ExprOp::kCmpGt: return a > b ? 1 : 0;
    case ExprOp::kCmpGe: return a >= b ? 1 : 0;
    case ExprOp::kCmpEq: return a == b ? 1 : 0;
    case ExprOp::kCmpNe: return a != b ? 1 : 0;
    case ExprOp::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case ExprOp::kOr: return (a != 0 || b != 0) ? 1 : 0;
    default: return std::nullopt;
  }
}

bool is_const(const ExprRef& e, std::int64_t v) {
  return e->op == ExprOp::kIntConst && e->literal == v;
}

}  // namespace

ExprRef simplify(const ExprRef& e) {
  COALESCE_ASSERT(e != nullptr);
  if (e->kids.empty()) return e;

  std::vector<ExprRef> kids;
  kids.reserve(e->kids.size());
  bool changed = false;
  for (const auto& k : e->kids) {
    ExprRef nk = simplify(k);
    changed = changed || nk != k;
    kids.push_back(std::move(nk));
  }

  auto rebuilt = [&]() -> ExprRef {
    if (!changed) return e;
    auto node = std::make_shared<ExprNode>(*e);
    node->kids = kids;
    return node;
  };

  // Constant folding for binary arithmetic.
  if (kids.size() == 2 && kids[0]->op == ExprOp::kIntConst &&
      kids[1]->op == ExprOp::kIntConst) {
    if (auto v = fold_binary(e->op, kids[0]->literal, kids[1]->literal))
      return int_const(*v);
  }
  if (e->op == ExprOp::kNeg && kids[0]->op == ExprOp::kIntConst)
    return int_const(-kids[0]->literal);

  // Algebraic identities.
  switch (e->op) {
    case ExprOp::kAdd:
      if (is_const(kids[0], 0)) return kids[1];
      if (is_const(kids[1], 0)) return kids[0];
      break;
    case ExprOp::kSub:
      if (is_const(kids[1], 0)) return kids[0];
      if (equal(kids[0], kids[1])) return int_const(0);
      break;
    case ExprOp::kMul:
      if (is_const(kids[0], 1)) return kids[1];
      if (is_const(kids[1], 1)) return kids[0];
      if (is_const(kids[0], 0) || is_const(kids[1], 0)) return int_const(0);
      break;
    case ExprOp::kFloorDiv:
    case ExprOp::kCeilDiv:
      if (is_const(kids[1], 1)) return kids[0];
      break;
    case ExprOp::kMod:
      if (is_const(kids[1], 1)) return int_const(0);
      break;
    case ExprOp::kMin:
    case ExprOp::kMax:
      if (equal(kids[0], kids[1])) return kids[0];
      break;
    case ExprOp::kNeg:
      if (kids[0]->op == ExprOp::kNeg) return kids[0]->kids[0];
      break;
    case ExprOp::kCmpLe:
    case ExprOp::kCmpGe:
    case ExprOp::kCmpEq:
      if (equal(kids[0], kids[1])) return int_const(1);
      break;
    case ExprOp::kCmpLt:
    case ExprOp::kCmpGt:
    case ExprOp::kCmpNe:
      if (equal(kids[0], kids[1])) return int_const(0);
      break;
    case ExprOp::kAnd:
      if (is_const(kids[0], 0) || is_const(kids[1], 0)) return int_const(0);
      if (is_const(kids[0], 1)) return kids[1];
      if (is_const(kids[1], 1)) return kids[0];
      break;
    case ExprOp::kOr:
      if (is_const(kids[0], 1) || is_const(kids[1], 1)) return int_const(1);
      if (is_const(kids[0], 0)) return kids[1];
      if (is_const(kids[1], 0)) return kids[0];
      break;
    default:
      break;
  }
  return rebuilt();
}

std::size_t tree_size(const ExprRef& e) {
  if (e == nullptr) return 0;
  std::size_t n = 1;
  for (const auto& k : e->kids) n += tree_size(k);
  return n;
}

std::size_t division_count(const ExprRef& e) {
  if (e == nullptr) return 0;
  std::size_t n = (e->op == ExprOp::kFloorDiv || e->op == ExprOp::kCeilDiv ||
                   e->op == ExprOp::kMod)
                      ? 1
                      : 0;
  for (const auto& k : e->kids) n += division_count(k);
  return n;
}

std::optional<AffineForm> to_affine(const ExprRef& e) {
  COALESCE_ASSERT(e != nullptr);
  switch (e->op) {
    case ExprOp::kIntConst:
      return AffineForm{e->literal, {}};
    case ExprOp::kVarRef: {
      AffineForm f;
      f.coeffs[e->var] = 1;
      return f;
    }
    case ExprOp::kNeg: {
      auto inner = to_affine(e->kids[0]);
      if (!inner) return std::nullopt;
      inner->constant = -inner->constant;
      for (auto& [v, c] : inner->coeffs) c = -c;
      return inner;
    }
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      auto lhs = to_affine(e->kids[0]);
      auto rhs = to_affine(e->kids[1]);
      if (!lhs || !rhs) return std::nullopt;
      const std::int64_t sign = e->op == ExprOp::kAdd ? 1 : -1;
      lhs->constant += sign * rhs->constant;
      for (const auto& [v, c] : rhs->coeffs) {
        lhs->coeffs[v] += sign * c;
        if (lhs->coeffs[v] == 0) lhs->coeffs.erase(v);
      }
      return lhs;
    }
    case ExprOp::kMul: {
      auto lhs = to_affine(e->kids[0]);
      auto rhs = to_affine(e->kids[1]);
      if (!lhs || !rhs) return std::nullopt;
      // Affine-preserving only when one side is constant.
      const AffineForm* konst = lhs->is_constant() ? &*lhs
                                : rhs->is_constant() ? &*rhs
                                                     : nullptr;
      if (konst == nullptr) return std::nullopt;
      const AffineForm* other = konst == &*lhs ? &*rhs : &*lhs;
      AffineForm out;
      out.constant = other->constant * konst->constant;
      for (const auto& [v, c] : other->coeffs) {
        const std::int64_t scaled = c * konst->constant;
        if (scaled != 0) out.coeffs[v] = scaled;
      }
      return out;
    }
    default:
      return std::nullopt;  // division, array reads, calls: not affine
  }
}

ExprRef from_affine(const AffineForm& form) {
  ExprRef acc = int_const(form.constant);
  for (const auto& [v, c] : form.coeffs) {
    if (c == 0) continue;
    ExprRef term = c == 1 ? var_ref(v) : mul(int_const(c), var_ref(v));
    acc = add(std::move(acc), std::move(term));
  }
  return simplify(acc);
}

}  // namespace coalesce::ir
