// Expression trees for the loop-nest IR.
//
// Expressions are immutable and shared (ExprRef is a shared_ptr-to-const), so
// transformations can freely splice subtrees without cloning. Two layers:
//
//  * the general tree (this file) — anything a loop body or bound can say,
//    including the floor/ceiling divisions produced by index recovery;
//  * AffineForm — the linear view `c0 + sum(ck * vk)` that the dependence
//    analyzer and the coalescing legality checks consume. `to_affine`
//    extracts it when the tree happens to be affine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/symbol.hpp"

namespace coalesce::ir {

enum class ExprOp : std::uint8_t {
  kIntConst,   ///< literal (field `literal`)
  kVarRef,     ///< scalar/induction/param reference (field `var`)
  kAdd,        ///< kids[0] + kids[1]
  kSub,        ///< kids[0] - kids[1]
  kMul,        ///< kids[0] * kids[1]
  kFloorDiv,   ///< floor(kids[0] / kids[1])   (mathematical floor)
  kCeilDiv,    ///< ceil(kids[0] / kids[1])    (mathematical ceiling)
  kMod,        ///< kids[0] mod kids[1]        (floor-style, sign of divisor)
  kMin,        ///< min(kids[0], kids[1])
  kMax,        ///< max(kids[0], kids[1])
  kNeg,        ///< -kids[0]
  kArrayRead,  ///< var[kids...] (element read; arrays hold doubles)
  kCall,       ///< opaque call `callee(kids...)`, assumed side-effect free
  // Comparisons yield integer 0/1; used by guard statements (IfStmt).
  kCmpLt,      ///< kids[0] <  kids[1]
  kCmpLe,      ///< kids[0] <= kids[1]
  kCmpGt,      ///< kids[0] >  kids[1]
  kCmpGe,      ///< kids[0] >= kids[1]
  kCmpEq,      ///< kids[0] == kids[1]
  kCmpNe,      ///< kids[0] != kids[1]
  kAnd,        ///< logical and of 0/1 operands
  kOr,         ///< logical or of 0/1 operands
};

[[nodiscard]] const char* to_string(ExprOp op) noexcept;

struct ExprNode;
using ExprRef = std::shared_ptr<const ExprNode>;

struct ExprNode {
  ExprOp op;
  std::int64_t literal = 0;         // kIntConst
  VarId var;                        // kVarRef, kArrayRead (the array)
  std::string callee;               // kCall
  std::vector<ExprRef> kids;
};

// ---- constructors -------------------------------------------------------

[[nodiscard]] ExprRef int_const(std::int64_t v);
[[nodiscard]] ExprRef var_ref(VarId v);
[[nodiscard]] ExprRef add(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef sub(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef mul(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef floor_div(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef ceil_div(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef mod(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef min_expr(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef max_expr(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef neg(ExprRef a);
[[nodiscard]] ExprRef array_read(VarId array, std::vector<ExprRef> subscripts);
[[nodiscard]] ExprRef call(std::string callee, std::vector<ExprRef> args);
[[nodiscard]] ExprRef cmp_lt(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef cmp_le(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef cmp_gt(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef cmp_ge(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef cmp_eq(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef cmp_ne(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef logical_and(ExprRef a, ExprRef b);
[[nodiscard]] ExprRef logical_or(ExprRef a, ExprRef b);

// ---- queries ------------------------------------------------------------

/// Structural equality (literals, vars, ops, children).
[[nodiscard]] bool equal(const ExprRef& a, const ExprRef& b);

/// True when the tree contains a reference to `v` (including array ids).
[[nodiscard]] bool references(const ExprRef& e, VarId v);

/// All variables referenced anywhere in the tree (dedicated, sorted).
[[nodiscard]] std::vector<VarId> referenced_vars(const ExprRef& e);

/// Constant value when the tree is a literal (after folding), else nullopt.
[[nodiscard]] std::optional<std::int64_t> as_constant(const ExprRef& e);

/// Rebuild the tree substituting every read of `v` with `replacement`.
[[nodiscard]] ExprRef substitute(const ExprRef& e, VarId v,
                                 const ExprRef& replacement);

/// Bottom-up constant folding plus algebraic identities (x*1, x+0, 0*x,
/// x/1, x mod 1, min/max of equal constants, double negation).
[[nodiscard]] ExprRef simplify(const ExprRef& e);

/// Number of nodes in the tree (for codegen cost reporting).
[[nodiscard]] std::size_t tree_size(const ExprRef& e);

/// Count of division-family operations (kFloorDiv, kCeilDiv, kMod); this is
/// the index-recovery cost metric used by experiment E7.
[[nodiscard]] std::size_t division_count(const ExprRef& e);

// ---- affine view --------------------------------------------------------

/// c0 + sum over vars of coeff*var, exact 64-bit coefficients.
struct AffineForm {
  std::int64_t constant = 0;
  std::map<VarId, std::int64_t> coeffs;

  [[nodiscard]] std::int64_t coeff(VarId v) const {
    auto it = coeffs.find(v);
    return it == coeffs.end() ? 0 : it->second;
  }
  [[nodiscard]] bool is_constant() const { return coeffs.empty(); }

  friend bool operator==(const AffineForm&, const AffineForm&) = default;
};

/// Affine extraction; nullopt when the tree is not affine (contains
/// division, array reads, calls, or products of two variables).
[[nodiscard]] std::optional<AffineForm> to_affine(const ExprRef& e);

/// Rebuild an expression tree from an affine form (canonical shape).
[[nodiscard]] ExprRef from_affine(const AffineForm& form);

}  // namespace coalesce::ir
