#include "ir/printer.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::ir {
namespace {

/// Precedence levels for minimal parenthesization.
int precedence(ExprOp op) {
  switch (op) {
    case ExprOp::kAnd:
    case ExprOp::kOr:
      return -2;
    case ExprOp::kCmpLt:
    case ExprOp::kCmpLe:
    case ExprOp::kCmpGt:
    case ExprOp::kCmpGe:
    case ExprOp::kCmpEq:
    case ExprOp::kCmpNe:
      return -1;
    default:
      break;
  }
  switch (op) {
    case ExprOp::kIntConst:
    case ExprOp::kVarRef:
    case ExprOp::kArrayRead:
    case ExprOp::kCall:
    case ExprOp::kFloorDiv:  // rendered as fdiv(a, b): call-like
    case ExprOp::kCeilDiv:
    case ExprOp::kMod:
    case ExprOp::kMin:
    case ExprOp::kMax:
      return 100;
    case ExprOp::kNeg:
      return 3;
    case ExprOp::kMul:
      return 2;
    case ExprOp::kAdd:
    case ExprOp::kSub:
      return 1;
  }
  return 0;
}

std::string render(const ExprRef& e, const SymbolTable& symbols,
                   int parent_prec) {
  COALESCE_ASSERT(e != nullptr);
  const int prec = precedence(e->op);
  std::string out;
  switch (e->op) {
    case ExprOp::kIntConst:
      out = std::to_string(e->literal);
      break;
    case ExprOp::kVarRef:
      out = symbols.name(e->var);
      break;
    case ExprOp::kAdd:
      out = render(e->kids[0], symbols, prec) + " + " +
            render(e->kids[1], symbols, prec);
      break;
    case ExprOp::kSub:
      // Right side needs the stricter context: a - (b - c) != a - b - c.
      out = render(e->kids[0], symbols, prec) + " - " +
            render(e->kids[1], symbols, prec + 1);
      break;
    case ExprOp::kMul:
      out = render(e->kids[0], symbols, prec) + " * " +
            render(e->kids[1], symbols, prec);
      break;
    case ExprOp::kNeg:
      out = "-" + render(e->kids[0], symbols, prec);
      break;
    case ExprOp::kFloorDiv:
      out = "fdiv(" + render(e->kids[0], symbols, 0) + ", " +
            render(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kCeilDiv:
      out = "cdiv(" + render(e->kids[0], symbols, 0) + ", " +
            render(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kMod:
      out = "mod(" + render(e->kids[0], symbols, 0) + ", " +
            render(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kMin:
      out = "min(" + render(e->kids[0], symbols, 0) + ", " +
            render(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kMax:
      out = "max(" + render(e->kids[0], symbols, 0) + ", " +
            render(e->kids[1], symbols, 0) + ")";
      break;
    case ExprOp::kCmpLt:
    case ExprOp::kCmpLe:
    case ExprOp::kCmpGt:
    case ExprOp::kCmpGe:
    case ExprOp::kCmpEq:
    case ExprOp::kCmpNe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
      out = render(e->kids[0], symbols, prec + 1) + " " +
            std::string(to_string(e->op)) + " " +
            render(e->kids[1], symbols, prec + 1);
      break;
    case ExprOp::kArrayRead: {
      out = symbols.name(e->var);
      for (const auto& sub : e->kids)
        out += "[" + render(sub, symbols, 0) + "]";
      break;
    }
    case ExprOp::kCall: {
      std::vector<std::string> args;
      args.reserve(e->kids.size());
      for (const auto& arg : e->kids) args.push_back(render(arg, symbols, 0));
      out = e->callee + "(" + support::join(args, ", ") + ")";
      break;
    }
  }
  if (prec < parent_prec) out = "(" + out + ")";
  return out;
}

std::string render_lvalue(const LValue& lhs, const SymbolTable& symbols) {
  if (const auto* scalar = std::get_if<VarId>(&lhs)) {
    return symbols.name(*scalar);
  }
  const auto& access = std::get<ArrayAccess>(lhs);
  std::string out = symbols.name(access.array);
  for (const auto& sub : access.subscripts)
    out += "[" + render(sub, symbols, 0) + "]";
  return out;
}

void render_stmt(const Stmt& stmt, const SymbolTable& symbols,
                 std::size_t depth, std::string& out);

void render_loop(const Loop& loop, const SymbolTable& symbols,
                 std::size_t depth, std::string& out) {
  const std::string pad(depth * 2, ' ');
  out += pad;
  out += loop.parallel ? "doall " : "do ";
  out += symbols.name(loop.var);
  out += " = " + render(loop.lower, symbols, 0);
  out += ", " + render(loop.upper, symbols, 0);
  if (loop.step != 1) out += ", " + std::to_string(loop.step);
  out += " {\n";
  for (const Stmt& s : loop.body) render_stmt(s, symbols, depth + 1, out);
  out += pad + "}\n";
}

void render_stmt(const Stmt& stmt, const SymbolTable& symbols,
                 std::size_t depth, std::string& out) {
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    out += std::string(depth * 2, ' ');
    out += render_lvalue(assign->lhs, symbols);
    out += " = " + render(assign->rhs, symbols, 0) + ";\n";
  } else if (const auto* guard = std::get_if<IfPtr>(&stmt)) {
    const std::string pad(depth * 2, ' ');
    out += pad + "if (" + render((*guard)->condition, symbols, -100) + ") {\n";
    for (const Stmt& s : (*guard)->then_body) {
      render_stmt(s, symbols, depth + 1, out);
    }
    out += pad + "}\n";
  } else {
    render_loop(*std::get<LoopPtr>(stmt), symbols, depth, out);
  }
}

}  // namespace

std::string to_string(const ExprRef& expr, const SymbolTable& symbols) {
  return render(expr, symbols, -100);  // lowest context: no outer parens
}

std::string to_string(const Stmt& stmt, const SymbolTable& symbols) {
  std::string out;
  render_stmt(stmt, symbols, 0, out);
  return out;
}

std::string to_string(const Loop& loop, const SymbolTable& symbols) {
  std::string out;
  render_loop(loop, symbols, 0, out);
  return out;
}

std::string to_string(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  return to_string(*nest.root, nest.symbols);
}

}  // namespace coalesce::ir
