// Human-readable rendering of IR expressions and loop nests. The codegen
// module builds on this for compilable C output; this printer targets eyes
// (tests' failure messages, examples' before/after dumps).
#pragma once

#include <string>

#include "ir/stmt.hpp"

namespace coalesce::ir {

/// Render an expression in infix form, e.g. "(i0 - 1) * 16 + i1".
[[nodiscard]] std::string to_string(const ExprRef& expr,
                                    const SymbolTable& symbols);

/// Render one statement (assignment or nested loop), newline-terminated.
[[nodiscard]] std::string to_string(const Stmt& stmt,
                                    const SymbolTable& symbols);

/// Render a loop tree:
///
///   doall i0 = 1, 16 {
///     doall i1 = 1, 8 {
///       C[i0][i1] = 0;
///     }
///   }
[[nodiscard]] std::string to_string(const Loop& loop,
                                    const SymbolTable& symbols);

/// Render a whole nest (its root loop).
[[nodiscard]] std::string to_string(const LoopNest& nest);

}  // namespace coalesce::ir
