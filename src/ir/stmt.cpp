#include "ir/stmt.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace coalesce::ir {

LoopPtr clone(const Loop& loop) {
  auto out = std::make_shared<Loop>();
  out->var = loop.var;
  out->lower = loop.lower;
  out->upper = loop.upper;
  out->step = loop.step;
  out->parallel = loop.parallel;
  out->loc = loop.loc;
  out->body.reserve(loop.body.size());
  for (const Stmt& s : loop.body) out->body.push_back(clone(s));
  return out;
}

Stmt clone(const Stmt& stmt) {
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    return *assign;  // expressions immutable; value copy is a deep-enough copy
  }
  if (const auto* guard = std::get_if<IfPtr>(&stmt)) {
    COALESCE_ASSERT(*guard != nullptr);
    auto out = std::make_shared<IfStmt>();
    out->condition = (*guard)->condition;
    out->then_body.reserve((*guard)->then_body.size());
    for (const Stmt& s : (*guard)->then_body) out->then_body.push_back(clone(s));
    return out;
  }
  const auto& loop = std::get<LoopPtr>(stmt);
  COALESCE_ASSERT(loop != nullptr);
  return clone(*loop);
}

LoopPtr substitute(const Loop& loop, VarId v, const ExprRef& replacement) {
  auto out = std::make_shared<Loop>();
  out->var = loop.var;
  out->lower = substitute(loop.lower, v, replacement);
  out->upper = substitute(loop.upper, v, replacement);
  out->step = loop.step;
  out->parallel = loop.parallel;
  out->loc = loop.loc;
  out->body.reserve(loop.body.size());
  for (const Stmt& s : loop.body) {
    out->body.push_back(substitute(s, v, replacement));
  }
  return out;
}

Stmt substitute(const Stmt& stmt, VarId v, const ExprRef& replacement) {
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    AssignStmt out = *assign;
    out.rhs = substitute(out.rhs, v, replacement);
    if (auto* access = std::get_if<ArrayAccess>(&out.lhs)) {
      for (auto& sub : access->subscripts) {
        sub = substitute(sub, v, replacement);
      }
    }
    return out;
  }
  if (const auto* guard = std::get_if<IfPtr>(&stmt)) {
    auto out = std::make_shared<IfStmt>();
    out->condition = substitute((*guard)->condition, v, replacement);
    out->then_body.reserve((*guard)->then_body.size());
    for (const Stmt& s : (*guard)->then_body) {
      out->then_body.push_back(substitute(s, v, replacement));
    }
    return out;
  }
  return substitute(*std::get<LoopPtr>(stmt), v, replacement);
}

std::vector<const Loop*> perfect_band(const Loop& root) {
  std::vector<const Loop*> band;
  const Loop* cur = &root;
  while (true) {
    band.push_back(cur);
    if (cur->body.size() != 1) break;
    const auto* inner = std::get_if<LoopPtr>(&cur->body.front());
    if (inner == nullptr) break;
    cur = inner->get();
  }
  return band;
}

std::vector<const Loop*> parallel_band(const Loop& root) {
  std::vector<const Loop*> band = perfect_band(root);
  std::size_t len = 0;
  while (len < band.size() && band[len]->parallel) ++len;
  band.resize(len);
  return band;
}

std::size_t perfect_depth(const Loop& root) {
  return perfect_band(root).size();
}

std::optional<std::int64_t> constant_trip_count(const Loop& loop) {
  auto lo = as_constant(loop.lower);
  auto hi = as_constant(loop.upper);
  if (!lo || !hi) return std::nullopt;
  COALESCE_ASSERT(loop.step > 0);
  if (*hi < *lo) return 0;
  return (*hi - *lo) / loop.step + 1;
}

bool is_normalized(const Loop& loop) {
  auto lo = as_constant(loop.lower);
  return lo.has_value() && *lo == 1 && loop.step == 1;
}

namespace {

std::size_t loop_count_body(const std::vector<Stmt>& body);

std::size_t loop_count_stmt(const Stmt& s) {
  if (const auto* inner = std::get_if<LoopPtr>(&s)) {
    return loop_count(**inner);
  }
  if (const auto* guard = std::get_if<IfPtr>(&s)) {
    return loop_count_body((*guard)->then_body);
  }
  return 0;
}

std::size_t loop_count_body(const std::vector<Stmt>& body) {
  std::size_t n = 0;
  for (const Stmt& s : body) n += loop_count_stmt(s);
  return n;
}

std::size_t assignment_count_body(const std::vector<Stmt>& body);

std::size_t assignment_count_stmt(const Stmt& s) {
  if (std::holds_alternative<AssignStmt>(s)) return 1;
  if (const auto* guard = std::get_if<IfPtr>(&s)) {
    return assignment_count_body((*guard)->then_body);
  }
  return assignment_count(*std::get<LoopPtr>(s));
}

std::size_t assignment_count_body(const std::vector<Stmt>& body) {
  std::size_t n = 0;
  for (const Stmt& s : body) n += assignment_count_stmt(s);
  return n;
}

}  // namespace

std::size_t loop_count(const Loop& root) {
  return 1 + loop_count_body(root.body);
}

std::size_t assignment_count(const Loop& root) {
  return assignment_count_body(root.body);
}

namespace {

void collect_body(const std::vector<Stmt>& body,
                  std::vector<const Loop*>& chain, bool guarded,
                  std::vector<NestedAssignment>& assigns,
                  std::vector<NestedGuard>& guards) {
  for (const Stmt& s : body) {
    if (const auto* assign = std::get_if<AssignStmt>(&s)) {
      assigns.push_back(NestedAssignment{chain, assign, guarded});
    } else if (const auto* guard = std::get_if<IfPtr>(&s)) {
      guards.push_back(NestedGuard{chain, &(*guard)->condition});
      collect_body((*guard)->then_body, chain, /*guarded=*/true, assigns,
                   guards);
    } else {
      const Loop& loop = *std::get<LoopPtr>(s);
      chain.push_back(&loop);
      collect_body(loop.body, chain, guarded, assigns, guards);
      chain.pop_back();
    }
  }
}

void collect_all(const Loop& root, std::vector<NestedAssignment>& assigns,
                 std::vector<NestedGuard>& guards) {
  std::vector<const Loop*> chain;
  chain.push_back(&root);
  collect_body(root.body, chain, /*guarded=*/false, assigns, guards);
}

void push_unique(std::vector<VarId>& xs, VarId v) {
  if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
}

void arrays_in_expr(const ExprRef& e, std::vector<VarId>& out) {
  if (e == nullptr) return;
  if (e->op == ExprOp::kArrayRead) push_unique(out, e->var);
  for (const auto& k : e->kids) arrays_in_expr(k, out);
}

}  // namespace

std::vector<NestedAssignment> collect_assignments(const Loop& root) {
  std::vector<NestedAssignment> assigns;
  std::vector<NestedGuard> guards;
  collect_all(root, assigns, guards);
  return assigns;
}

std::vector<NestedGuard> collect_guards(const Loop& root) {
  std::vector<NestedAssignment> assigns;
  std::vector<NestedGuard> guards;
  collect_all(root, assigns, guards);
  return guards;
}

std::vector<VarId> scalars_written(const Loop& root) {
  std::vector<VarId> out;
  for (const auto& na : collect_assignments(root)) {
    if (const auto* scalar = std::get_if<VarId>(&na.stmt->lhs)) {
      push_unique(out, *scalar);
    }
  }
  return out;
}

std::vector<VarId> arrays_touched(const Loop& root) {
  std::vector<VarId> out;
  for (const auto& na : collect_assignments(root)) {
    if (const auto* access = std::get_if<ArrayAccess>(&na.stmt->lhs)) {
      push_unique(out, access->array);
      for (const auto& sub : access->subscripts) arrays_in_expr(sub, out);
    }
    arrays_in_expr(na.stmt->rhs, out);
  }
  for (const auto& guard : collect_guards(root)) {
    arrays_in_expr(*guard.condition, out);
  }
  return out;
}

}  // namespace coalesce::ir
