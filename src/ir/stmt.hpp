// Statements and loops for the loop-nest IR.
//
// A program fragment is a list of statements; a statement is either an
// assignment (to a scalar or an array element) or a loop. Loops carry the
// DOALL flag that the dependence analyzer proves and the coalescing
// transformation consumes. Bounds are inclusive (`for v = lo .. hi step s`),
// matching the Fortran DO loops the paper transforms.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "ir/expr.hpp"
#include "ir/symbol.hpp"

namespace coalesce::ir {

struct ArrayAccess {
  VarId array;
  std::vector<ExprRef> subscripts;
};

/// Assignment target: a scalar variable or an array element.
using LValue = std::variant<VarId, ArrayAccess>;

struct AssignStmt {
  LValue lhs;
  ExprRef rhs;
};

struct Loop;
using LoopPtr = std::shared_ptr<Loop>;
struct IfStmt;
using IfPtr = std::shared_ptr<IfStmt>;

/// A statement is an assignment, a (nested) loop, or a guarded block.
/// Sequencing is positional within the enclosing body vector.
using Stmt = std::variant<AssignStmt, LoopPtr, IfPtr>;

/// Guard: execute `then_body` when `condition` evaluates nonzero. Guards are
/// what non-rectangular coalescing emits (bounding box + membership test).
struct IfStmt {
  ExprRef condition;
  std::vector<Stmt> then_body;
};

/// Position of a construct in the textual source it was parsed from.
/// Loops built programmatically (builders, transforms) carry the invalid
/// default; transforms propagate the location of the loop they rewrote so
/// diagnostics on transformed code still point at the original source.
struct SourceLoc {
  int line = 0;    ///< 1-based; 0 = unknown
  int column = 0;  ///< 1-based; 0 = unknown

  [[nodiscard]] bool valid() const noexcept { return line > 0; }
  friend bool operator==(SourceLoc, SourceLoc) = default;
};

struct Loop {
  VarId var;                 ///< induction variable
  ExprRef lower;             ///< inclusive lower bound
  ExprRef upper;             ///< inclusive upper bound
  std::int64_t step = 1;     ///< positive step
  bool parallel = false;     ///< DOALL: iterations independent
  std::vector<Stmt> body;
  SourceLoc loc;             ///< header position when parsed from text
};

/// A loop nest plus the symbol table its ids refer to. The unit every
/// analysis and transformation operates on.
struct LoopNest {
  SymbolTable symbols;
  LoopPtr root;
};

/// An ordered sequence of top-level loops over one symbol universe —
/// the result shape of root-level loop distribution.
struct Program {
  SymbolTable symbols;
  std::vector<LoopPtr> roots;  ///< executed in order
};

// ---- structural queries ---------------------------------------------------

/// Deep copy of a loop (fresh Loop objects; expression trees shared, which is
/// safe because expressions are immutable).
[[nodiscard]] LoopPtr clone(const Loop& loop);
[[nodiscard]] Stmt clone(const Stmt& stmt);

/// Deep copy substituting every expression read of `v` with `replacement`
/// (bounds, subscripts, right-hand sides, guard conditions). Scalar
/// assignments *to* `v` are left targeting `v` — callers renaming induction
/// variables must ensure `v` is not assigned in the tree.
[[nodiscard]] LoopPtr substitute(const Loop& loop, VarId v,
                                 const ExprRef& replacement);
[[nodiscard]] Stmt substitute(const Stmt& stmt, VarId v,
                              const ExprRef& replacement);

/// The maximal *perfect* band starting at `root`: root, then — as long as a
/// loop's body is exactly one statement and that statement is a loop — the
/// inner loop, and so on. Always non-empty.
[[nodiscard]] std::vector<const Loop*> perfect_band(const Loop& root);

/// Longest prefix of the perfect band in which every loop is parallel.
[[nodiscard]] std::vector<const Loop*> parallel_band(const Loop& root);

/// Depth of the maximal perfect band.
[[nodiscard]] std::size_t perfect_depth(const Loop& root);

/// Trip count when lower/upper fold to constants; nullopt otherwise.
[[nodiscard]] std::optional<std::int64_t> constant_trip_count(const Loop& loop);

/// True when lower == 1 and step == 1 (the paper's normalized form).
[[nodiscard]] bool is_normalized(const Loop& loop);

/// Total number of loops in the tree rooted at `root` (not just the band).
[[nodiscard]] std::size_t loop_count(const Loop& root);

/// Total number of assignment statements in the tree.
[[nodiscard]] std::size_t assignment_count(const Loop& root);

/// All assignments inside the tree, in execution order, paired with the
/// enclosing loop chain (outermost first; guards do not extend the chain but
/// set `guarded`). Used by the dependence analyzer.
struct NestedAssignment {
  std::vector<const Loop*> enclosing;  ///< outermost ... innermost
  const AssignStmt* stmt;
  bool guarded = false;  ///< true when under at least one IfStmt
};
[[nodiscard]] std::vector<NestedAssignment> collect_assignments(
    const Loop& root);

/// All guard conditions inside the tree with their enclosing loop chains
/// (for the analyzer: condition reads participate in dependences).
struct NestedGuard {
  std::vector<const Loop*> enclosing;
  const ExprRef* condition;
};
[[nodiscard]] std::vector<NestedGuard> collect_guards(const Loop& root);

/// All variables assigned (scalar lhs) anywhere in the tree.
[[nodiscard]] std::vector<VarId> scalars_written(const Loop& root);

/// All arrays read or written anywhere in the tree.
[[nodiscard]] std::vector<VarId> arrays_touched(const Loop& root);

}  // namespace coalesce::ir
