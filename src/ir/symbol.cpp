#include "ir/symbol.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::ir {

const char* to_string(SymbolKind kind) noexcept {
  switch (kind) {
    case SymbolKind::kInduction:
      return "induction";
    case SymbolKind::kScalar:
      return "scalar";
    case SymbolKind::kArray:
      return "array";
    case SymbolKind::kParam:
      return "param";
  }
  return "unknown";
}

VarId SymbolTable::declare(std::string name, SymbolKind kind,
                           std::vector<std::int64_t> shape) {
  COALESCE_ASSERT_MSG(!lookup(name).has_value(),
                      "symbol already declared");
  COALESCE_ASSERT_MSG(kind == SymbolKind::kArray || shape.empty(),
                      "shape only valid for arrays");
  symbols_.push_back(Symbol{std::move(name), kind, std::move(shape)});
  return VarId{static_cast<std::uint32_t>(symbols_.size() - 1)};
}

support::Expected<VarId> SymbolTable::declare_or_get(
    std::string name, SymbolKind kind, std::vector<std::int64_t> shape) {
  if (auto existing = lookup(name)) {
    if (symbols_[existing->raw].kind != kind) {
      return support::make_error(
          support::ErrorCode::kInvalidArgument,
          support::format("symbol '%s' redeclared with a different kind",
                          name.c_str()));
    }
    return *existing;
  }
  return declare(std::move(name), kind, std::move(shape));
}

std::optional<VarId> SymbolTable::lookup(std::string_view name) const {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name)
      return VarId{static_cast<std::uint32_t>(i)};
  }
  return std::nullopt;
}

const Symbol& SymbolTable::operator[](VarId id) const {
  COALESCE_ASSERT(id.valid() && id.raw < symbols_.size());
  return symbols_[id.raw];
}

const std::string& SymbolTable::name(VarId id) const {
  return (*this)[id].name;
}

SymbolKind SymbolTable::kind(VarId id) const { return (*this)[id].kind; }

VarId SymbolTable::fresh_induction(std::string_view prefix) {
  for (std::size_t n = 0;; ++n) {
    std::string candidate = std::string(prefix) + std::to_string(n);
    if (!lookup(candidate).has_value()) {
      return declare(std::move(candidate), SymbolKind::kInduction);
    }
  }
}

}  // namespace coalesce::ir
