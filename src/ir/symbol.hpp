// Symbol table for the loop-nest IR.
//
// Symbols are interned once and referenced by a small integral id everywhere
// else (expressions, loops, array accesses), which keeps IR nodes cheap to
// copy and makes identity comparisons trivial.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace coalesce::ir {

/// Index into a SymbolTable. Valid only for the table that produced it.
struct VarId {
  std::uint32_t raw = UINT32_MAX;

  [[nodiscard]] bool valid() const noexcept { return raw != UINT32_MAX; }
  friend bool operator==(VarId, VarId) = default;
  friend auto operator<=>(VarId, VarId) = default;
};

enum class SymbolKind : std::uint8_t {
  kInduction,  ///< loop induction variable (integer)
  kScalar,     ///< integer or floating scalar
  kArray,      ///< array of doubles, row-major
  kParam,      ///< integer parameter constant for a whole execution (e.g. N)
};

[[nodiscard]] const char* to_string(SymbolKind kind) noexcept;

struct Symbol {
  std::string name;
  SymbolKind kind;
  /// For kArray: extents per dimension (row-major). Empty otherwise.
  std::vector<std::int64_t> shape;
};

class SymbolTable {
 public:
  /// Interns a new symbol; name must not already exist.
  VarId declare(std::string name, SymbolKind kind,
                std::vector<std::int64_t> shape = {});

  /// Declares `name`, or returns the existing id when kinds match.
  support::Expected<VarId> declare_or_get(std::string name, SymbolKind kind,
                                          std::vector<std::int64_t> shape = {});

  [[nodiscard]] std::optional<VarId> lookup(std::string_view name) const;

  [[nodiscard]] const Symbol& operator[](VarId id) const;
  [[nodiscard]] const std::string& name(VarId id) const;
  [[nodiscard]] SymbolKind kind(VarId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }

  /// Fresh induction variable with an unused canonical name ("i0", "i1", ...
  /// or "<prefix>N" if the plain name is taken).
  VarId fresh_induction(std::string_view prefix = "i");

 private:
  std::vector<Symbol> symbols_;
};

}  // namespace coalesce::ir
