#include "ir/verify.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace coalesce::ir {

namespace {

/// Walk state: the symbol table, the live induction-variable stack, and the
/// accumulated issues. Locations are attributed to the nearest enclosing
/// loop that has one.
class Verifier {
 public:
  explicit Verifier(const SymbolTable& symbols) : symbols_(symbols) {}

  std::vector<VerifyIssue> take() { return std::move(issues_); }

  void check_loop(const Loop& loop) {
    const SourceLoc outer_loc = loc_;
    if (loop.loc.valid()) loc_ = loop.loc;

    if (!check_var(loop.var, "loop induction variable")) {
      loc_ = outer_loc;
      return;  // nothing below can be named sensibly
    }
    if (symbols_.kind(loop.var) != SymbolKind::kInduction) {
      report(support::format("loop variable '%s' is declared %s, not %s",
                             name(loop.var), kind_name(loop.var),
                             to_string(SymbolKind::kInduction)));
    }
    if (std::find(live_.begin(), live_.end(), loop.var) != live_.end()) {
      report(support::format("loop variable '%s' shadows an enclosing loop",
                             name(loop.var)));
    }
    if (loop.step < 1) {
      report(support::format("loop '%s' has non-positive step %lld",
                             name(loop.var),
                             static_cast<long long>(loop.step)));
    }
    check_bound(loop, loop.lower, "lower");
    check_bound(loop, loop.upper, "upper");

    live_.push_back(loop.var);
    for (const Stmt& s : loop.body) check_stmt(s);
    live_.pop_back();
    loc_ = outer_loc;
  }

 private:
  void report(std::string message) {
    issues_.push_back(VerifyIssue{std::move(message), loc_});
  }

  const char* name(VarId v) const { return symbols_.name(v).c_str(); }
  const char* kind_name(VarId v) const {
    return to_string(symbols_.kind(v));
  }

  bool check_var(VarId v, const char* role) {
    if (!v.valid() || v.raw >= symbols_.size()) {
      report(support::format("%s references symbol id %u outside the table "
                             "(size %zu)",
                             role, v.valid() ? v.raw : UINT32_MAX,
                             symbols_.size()));
      return false;
    }
    return true;
  }

  void check_bound(const Loop& loop, const ExprRef& bound, const char* which) {
    if (bound == nullptr) {
      report(support::format("loop '%s' has a null %s bound", name(loop.var),
                             which));
      return;
    }
    check_expr(bound, support::format("%s bound of loop '%s'", which,
                                      name(loop.var))
                          .c_str());
    if (references(bound, loop.var)) {
      report(support::format("%s bound of loop '%s' reads the loop's own "
                             "variable",
                             which, name(loop.var)));
    }
  }

  void check_stmt(const Stmt& stmt) {
    if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
      check_assign(*assign);
      return;
    }
    if (const auto* guard = std::get_if<IfPtr>(&stmt)) {
      if (*guard == nullptr) {
        report("null IfStmt in a statement list");
        return;
      }
      check_expr((*guard)->condition, "guard condition");
      for (const Stmt& s : (*guard)->then_body) check_stmt(s);
      return;
    }
    const auto& loop = std::get<LoopPtr>(stmt);
    if (loop == nullptr) {
      report("null Loop in a statement list");
      return;
    }
    check_loop(*loop);
  }

  void check_assign(const AssignStmt& assign) {
    if (const auto* scalar = std::get_if<VarId>(&assign.lhs)) {
      if (check_var(*scalar, "scalar assignment target")) {
        switch (symbols_.kind(*scalar)) {
          case SymbolKind::kArray:
            report(support::format("assignment to array '%s' without "
                                   "subscripts",
                                   name(*scalar)));
            break;
          case SymbolKind::kParam:
            report(support::format("assignment to parameter '%s'",
                                   name(*scalar)));
            break;
          case SymbolKind::kInduction:
            // Recovery assignments (coalescing) target induction variables
            // that are *not* live loops here; writing a live one would
            // change iteration semantics.
            if (std::find(live_.begin(), live_.end(), *scalar) !=
                live_.end()) {
              report(support::format("assignment to live induction variable "
                                     "'%s' of an enclosing loop",
                                     name(*scalar)));
            }
            break;
          case SymbolKind::kScalar:
            break;
        }
      }
    } else {
      const auto& access = std::get<ArrayAccess>(assign.lhs);
      check_array_use(access.array, access.subscripts, "assignment target");
    }
    check_expr(assign.rhs, "assignment right-hand side");
  }

  void check_array_use(VarId array, const std::vector<ExprRef>& subscripts,
                       const char* role) {
    if (!check_var(array, role)) return;
    if (symbols_.kind(array) != SymbolKind::kArray) {
      report(support::format("%s subscripts non-array '%s' (%s)", role,
                             name(array), kind_name(array)));
      return;
    }
    const std::size_t rank = symbols_[array].shape.size();
    if (subscripts.size() != rank) {
      report(support::format("%s of '%s' has %zu subscripts, array rank is "
                             "%zu",
                             role, name(array), subscripts.size(), rank));
    }
    for (const ExprRef& sub : subscripts) {
      check_expr(sub, support::format("subscript of '%s'", name(array))
                          .c_str());
    }
  }

  void check_expr(const ExprRef& e, const char* context) {
    if (e == nullptr) {
      report(support::format("null expression in %s", context));
      return;
    }
    const std::size_t kids = e->kids.size();
    switch (e->op) {
      case ExprOp::kIntConst:
      case ExprOp::kVarRef:
        if (kids != 0) {
          report(support::format("%s node with %zu children in %s",
                                 to_string(e->op), kids, context));
        }
        break;
      case ExprOp::kNeg:
        if (kids != 1) {
          report(support::format("%s node with %zu children (expects 1) in "
                                 "%s",
                                 to_string(e->op), kids, context));
        }
        break;
      case ExprOp::kArrayRead:
      case ExprOp::kCall:
        break;  // variadic; array arity checked below
      default:
        if (kids != 2) {
          report(support::format("%s node with %zu children (expects 2) in "
                                 "%s",
                                 to_string(e->op), kids, context));
        }
        break;
    }

    if (e->op == ExprOp::kVarRef) {
      if (check_var(e->var, context) &&
          symbols_.kind(e->var) == SymbolKind::kArray) {
        report(support::format("array '%s' read without subscripts in %s",
                               name(e->var), context));
      }
      return;
    }
    if (e->op == ExprOp::kArrayRead) {
      check_array_use(e->var, e->kids, context);
      return;
    }
    if (e->op == ExprOp::kFloorDiv || e->op == ExprOp::kCeilDiv ||
        e->op == ExprOp::kMod) {
      if (kids == 2) {
        const auto divisor = as_constant(e->kids[1]);
        if (divisor.has_value() && *divisor == 0) {
          report(support::format("constant zero divisor in %s", context));
        }
      }
    }
    for (const ExprRef& k : e->kids) check_expr(k, context);
  }

  const SymbolTable& symbols_;
  std::vector<VarId> live_;
  SourceLoc loc_;
  std::vector<VerifyIssue> issues_;
};

}  // namespace

std::string to_string(const VerifyIssue& issue) {
  if (!issue.loc.valid()) return issue.message;
  return support::format("%d:%d: %s", issue.loc.line, issue.loc.column,
                         issue.message.c_str());
}

std::vector<VerifyIssue> verify_loop(const SymbolTable& symbols,
                                     const Loop& root) {
  Verifier v(symbols);
  v.check_loop(root);
  return v.take();
}

std::vector<VerifyIssue> verify_nest(const LoopNest& nest) {
  if (nest.root == nullptr) {
    return {VerifyIssue{"loop nest has a null root", SourceLoc{}}};
  }
  return verify_loop(nest.symbols, *nest.root);
}

std::vector<VerifyIssue> verify_program(const Program& program) {
  std::vector<VerifyIssue> issues;
  if (program.roots.empty()) {
    issues.push_back(VerifyIssue{"program has no roots", SourceLoc{}});
  }
  for (const LoopPtr& root : program.roots) {
    if (root == nullptr) {
      issues.push_back(VerifyIssue{"program has a null root", SourceLoc{}});
      continue;
    }
    auto piece = verify_loop(program.symbols, *root);
    issues.insert(issues.end(), std::make_move_iterator(piece.begin()),
                  std::make_move_iterator(piece.end()));
  }
  return issues;
}

namespace {

support::Expected<bool> issues_to_expected(std::vector<VerifyIssue> issues,
                                           const char* context) {
  if (issues.empty()) return true;
  std::string message = support::format("IR verification failed after %s:",
                                        context);
  constexpr std::size_t kMaxReported = 4;
  for (std::size_t k = 0; k < issues.size() && k < kMaxReported; ++k) {
    message += "\n  " + to_string(issues[k]);
  }
  if (issues.size() > kMaxReported) {
    message += support::format("\n  ... and %zu more",
                               issues.size() - kMaxReported);
  }
  return support::make_error(support::ErrorCode::kVerifyFailed,
                             std::move(message));
}

}  // namespace

support::Expected<bool> verify_ok(const LoopNest& nest, const char* context) {
  return issues_to_expected(verify_nest(nest), context);
}

support::Expected<bool> verify_ok(const Program& program,
                                  const char* context) {
  return issues_to_expected(verify_program(program), context);
}

}  // namespace coalesce::ir
