// Structural verifier for the loop-nest IR.
//
// Checks the invariants every analysis and transformation in this codebase
// assumes but (before this existed) never re-validated: symbol references
// resolve into the nest's own table with the right kinds, loops are
// well-formed (positive step, bounds that do not read the loop's own
// variable, no shadowed induction variables), expressions have the arity
// their operator demands, and assignments do not clobber a live enclosing
// induction variable. Transformation passes re-run this after every rewrite
// (transform/postcheck.hpp), so a pass that corrupts the IR fails loudly at
// the pass boundary instead of as downstream UB.
//
// The verifier is purely structural: it never executes the nest and never
// runs dependence analysis. Semantic checks (DOALL provability, overflow of
// coalesced trip counts) live in analysis/lint.hpp, which builds on this.
#pragma once

#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::ir {

/// One invariant violation. `loc` is the nearest enclosing loop's source
/// position when the nest was parsed from text (invalid for built IR).
struct VerifyIssue {
  std::string message;
  SourceLoc loc;
};

/// Renders "line:col: message" (or just the message without a location).
[[nodiscard]] std::string to_string(const VerifyIssue& issue);

/// All structural violations in the tree rooted at `root`. Empty = valid.
[[nodiscard]] std::vector<VerifyIssue> verify_loop(const SymbolTable& symbols,
                                                   const Loop& root);

[[nodiscard]] std::vector<VerifyIssue> verify_nest(const LoopNest& nest);

/// Verifies every root of a multi-loop program against the shared table.
[[nodiscard]] std::vector<VerifyIssue> verify_program(const Program& program);

/// Convenience for pass boundaries: true when valid, otherwise a
/// kVerifyFailed Error carrying `context` and the first few issues.
[[nodiscard]] support::Expected<bool> verify_ok(const LoopNest& nest,
                                                const char* context);
[[nodiscard]] support::Expected<bool> verify_ok(const Program& program,
                                                const char* context);

}  // namespace coalesce::ir
