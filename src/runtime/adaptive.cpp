#include "runtime/adaptive.hpp"

#include <algorithm>
#include <limits>

#include "runtime/executor.hpp"
#include "support/assert.hpp"
#include "trace/counters.hpp"

namespace coalesce::runtime {

// Lived in parallel_for.cpp until the PR-5 shims were removed; the
// controller is the main consumer now (imbalance is one of its feedback
// signals and part of the service's exported stats).
double ForStats::imbalance() const {
  if (iterations_per_worker.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const std::uint64_t n : iterations_per_worker) {
    max = std::max(max, n);
    sum += n;
  }
  if (sum == 0) return 1.0;
  const double mean = static_cast<double>(sum) /
                      static_cast<double>(iterations_per_worker.size());
  return static_cast<double>(max) / mean;
}

/// Per-key controller state. Guarded by the owning controller's mutex_ —
/// a Ticket's shared_ptr only extends lifetime, it never grants lock-free
/// access.
struct AdaptiveController::KeyState {
  std::uint64_t epoch = 0;  ///< bumped on retune; stale tickets dropped
  bool settled = false;
  std::size_t choice = 0;  ///< winning candidate (valid when settled)
  double settled_cost = 0.0;  ///< winner's EMA at settle time (drift ref)
  std::size_t cursor = 0;  ///< next candidate to hand out while exploring
  std::size_t handed = 0;  ///< resolves handed for the current cursor
  std::vector<double> ema;            ///< ns/iteration EMA; < 0 = untried
  std::vector<std::uint32_t> samples;  ///< completed reports per candidate

  KeyState() : ema(kCandidates, -1.0), samples(kCandidates, 0) {}

  void reset_exploration() {
    settled = false;
    cursor = 0;
    handed = 0;
    std::fill(ema.begin(), ema.end(), -1.0);
    std::fill(samples.begin(), samples.end(), 0);
  }
};

ScheduleParams AdaptiveController::candidate(std::size_t index,
                                             ScheduleParams base, i64 total,
                                             std::size_t workers) {
  COALESCE_ASSERT(index < kCandidates);
  COALESCE_ASSERT(workers > 0);
  const i64 p = static_cast<i64>(workers);
  const i64 n = std::max<i64>(total, 1);
  ScheduleParams params = base;  // keep serialized/sharded
  params.chunk_size = 1;
  switch (index) {
    case 0:  // one contiguous block per worker (static-block equivalent)
      params.kind = Schedule::kChunked;
      params.chunk_size = (n + p - 1) / p;
      break;
    case 1:  // fixed medium grain: 8 chunks per worker
      params.kind = Schedule::kChunked;
      params.chunk_size = std::max<i64>(1, n / (8 * p));
      break;
    case 2:
      params.kind = Schedule::kGuided;
      break;
    case 3:
      params.kind = Schedule::kFactoring;
      break;
    default:
      params.kind = Schedule::kTrapezoid;
      break;
  }
  return params;
}

AdaptiveController::Resolution AdaptiveController::resolve(
    ScheduleParams params, std::string_view key, i64 total,
    std::size_t workers) {
  if (params.kind != Schedule::kAuto) {
    return Resolution{params, Ticket{}};
  }
  COALESCE_ASSERT(workers > 0);

  // The tuned choice depends on the shape, not just the nest: fold the
  // trip count and worker count into the key so one nest tuned at a large
  // N does not dictate the schedule for the same nest at a tiny N.
  std::string internal_key;
  internal_key.reserve(key.size() + 24);
  internal_key.append(key.empty() ? "anon" : key);
  internal_key.push_back('/');
  internal_key.append(std::to_string(total));
  internal_key.push_back('/');
  internal_key.append(std::to_string(workers));

  std::lock_guard<std::mutex> lock(mutex_);
  ++clock_;
  auto it = keys_.find(internal_key);
  if (it == keys_.end()) {
    if (keys_.size() >= config_.max_keys) {
      // Evict the least-recently-resolved key. In-flight tickets keep the
      // evicted state alive; a later re-creation starts a fresh KeyState,
      // so those tickets report into the orphan and are harmless.
      auto victim = keys_.begin();
      for (auto cur = keys_.begin(); cur != keys_.end(); ++cur) {
        if (cur->second.last_used < victim->second.last_used) victim = cur;
      }
      keys_.erase(victim);
    }
    it = keys_.emplace(internal_key, Entry{std::make_shared<KeyState>(), 0})
             .first;
  }
  Entry& entry = it->second;
  entry.last_used = clock_;
  KeyState& state = *entry.state;

  if (!state.settled && state.cursor >= kCandidates) {
    // Exploration handed out the full menu; settle on the cheapest
    // candidate that actually reported back. If nothing reported (every
    // trial was cancelled or is still in flight), run another round.
    std::size_t best = kCandidates;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < kCandidates; ++c) {
      if (state.samples[c] > 0 && state.ema[c] < best_cost) {
        best = c;
        best_cost = state.ema[c];
      }
    }
    if (best < kCandidates) {
      state.settled = true;
      state.choice = best;
      state.settled_cost = best_cost;
    } else {
      state.cursor = 0;
      state.handed = 0;
    }
  }

  std::size_t chosen = 0;
  if (state.settled) {
    chosen = state.choice;
    ++hits_;
    trace::count(trace::Counter::kAdaptiveHits);
  } else {
    chosen = state.cursor;
    if (++state.handed >= config_.explore_trials) {
      ++state.cursor;
      state.handed = 0;
    }
  }

  Resolution resolution;
  resolution.params = candidate(chosen, params, total, workers);
  resolution.ticket = Ticket{entry.state, chosen, state.epoch};
  return resolution;
}

void AdaptiveController::report(const Ticket& ticket, const ForStats& stats) {
  if (!ticket.active()) return;
  if (!stats.completed()) return;  // partial cost is not comparable
  const std::uint64_t iterations = stats.iterations_done();
  if (iterations == 0 || stats.wall_seconds <= 0.0) return;
  const double ns_per_iter =
      stats.wall_seconds * 1e9 / static_cast<double>(iterations);

  std::lock_guard<std::mutex> lock(mutex_);
  KeyState& state = *ticket.state;
  if (state.epoch != ticket.epoch) return;  // retuned/evicted since launch
  COALESCE_ASSERT(ticket.candidate < kCandidates);

  double& ema = state.ema[ticket.candidate];
  ema = ema < 0.0
            ? ns_per_iter
            : config_.ema_alpha * ns_per_iter + (1.0 - config_.ema_alpha) * ema;
  ++state.samples[ticket.candidate];

  if (state.settled && ticket.candidate == state.choice &&
      state.settled_cost > 0.0 &&
      ema > config_.retune_factor * state.settled_cost) {
    // The workload drifted under the key: re-explore under a new epoch so
    // still-in-flight tickets from this one cannot poison the fresh data.
    ++state.epoch;
    state.reset_exploration();
    ++retunes_;
    trace::count(trace::Counter::kAdaptiveRetunes);
  }
}

std::size_t AdaptiveController::key_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return keys_.size();
}

std::uint64_t AdaptiveController::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t AdaptiveController::retunes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retunes_;
}

std::vector<AdaptiveController::KeySnapshot> AdaptiveController::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<KeySnapshot> out;
  out.reserve(keys_.size());
  for (const auto& [key, entry] : keys_) {
    KeySnapshot snap;
    snap.key = key;
    snap.settled = entry.state->settled;
    snap.choice = entry.state->choice;
    snap.epoch = entry.state->epoch;
    snap.ema_ns_per_iter = entry.state->ema;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const KeySnapshot& a, const KeySnapshot& b) {
              return a.key < b.key;
            });
  return out;
}

AdaptiveController& default_controller() {
  static AdaptiveController controller;
  return controller;
}

}  // namespace coalesce::runtime
