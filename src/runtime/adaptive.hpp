// Adaptive schedule selection: the trace-fed controller behind
// Schedule::kAuto.
//
// The paper fixes one schedule per coalesced loop at compile time. Under a
// shifting region mix (the service workload) no single static choice stays
// fast, so kAuto defers the decision to run time: at every launch boundary
// the controller maps the region's shape key to concrete ScheduleParams,
// and after the region retires its measured cost feeds back in. Recurring
// shapes are keyed by the same canonical alpha-renamed IR key the JIT
// compile cache uses (codegen::prepare().cache_key), so a service replaying
// the same nest at the same trip counts converges onto one tuned schedule.
//
// Per-key state machine (deterministic — a pure function of the
// resolve/report call sequence, which is what the unit tests pin down):
//
//   Explore:  hand out each candidate schedule `explore_trials` times in
//             round-robin order, recording an EMA of ns/iteration from the
//             ForStats feedback of completed runs.
//   Settled:  once every candidate has been handed out, settle on the
//             argmin-EMA candidate; every later resolve returns it and
//             counts trace::Counter::kAdaptiveHits.
//   Retune:   while settled, feedback keeps updating the winner's EMA. If
//             it drifts past retune_factor x its settle-time cost (the
//             workload changed under the key), the key re-enters Explore
//             with a bumped epoch and counts kAdaptiveRetunes. Tickets from
//             the old epoch are dropped on report, so in-flight regions
//             can never poison the new exploration.
//
// Incomplete runs (cancelled, deadline-expired, faulted) report nothing:
// their ns/iteration is not comparable. Keys are evicted LRU past
// max_keys; a Ticket keeps its KeyState alive via shared_ptr, so a report
// racing an eviction is safe (and dropped by the epoch check).
//
// Two controller instances exist: a process-global one
// (default_controller()) serving the synchronous ThreadPool entry points,
// and one member per Engine (Engine::adaptive_controller()) so service
// traffic trains the engine that carries it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/dispatcher.hpp"

namespace coalesce::runtime {

struct ForStats;

/// Tuning knobs. The defaults are what the service and tools run with;
/// tests shrink them to force transitions quickly.
struct AdaptiveConfig {
  /// Distinct (key, total, workers) shapes tracked before LRU eviction.
  std::size_t max_keys = 256;
  /// Times each candidate is handed out during exploration.
  std::size_t explore_trials = 2;
  /// EMA smoothing factor for ns/iteration feedback (weight of the newest
  /// sample).
  double ema_alpha = 0.3;
  /// Re-explore when the settled candidate's EMA exceeds this multiple of
  /// its settle-time cost.
  double retune_factor = 1.5;
};

class AdaptiveController {
 public:
  struct KeyState;  // opaque; defined in adaptive.cpp

  /// Feedback handle returned by resolve(): identifies the key, the
  /// candidate that was handed out, and the exploration epoch it belongs
  /// to. Inactive (state == nullptr) when no feedback is expected — the
  /// schedule was not kAuto. Holding the KeyState alive through the
  /// shared_ptr makes reporting safe across LRU eviction.
  struct Ticket {
    std::shared_ptr<KeyState> state;
    std::size_t candidate = 0;
    std::uint64_t epoch = 0;

    [[nodiscard]] bool active() const noexcept { return state != nullptr; }
  };

  /// What a launch boundary gets back: concrete dispatchable params plus
  /// the feedback ticket to attach to the region.
  struct Resolution {
    ScheduleParams params;
    Ticket ticket;
  };

  /// Test/diagnostic view of one tracked key.
  struct KeySnapshot {
    std::string key;          ///< internal key: user key + "/total/workers"
    bool settled = false;
    std::size_t choice = 0;   ///< settled candidate index (when settled)
    std::uint64_t epoch = 0;  ///< bumped on every retune
    std::vector<double> ema_ns_per_iter;  ///< per candidate; < 0 = untried
  };

  /// The candidate menu size (see candidate()).
  static constexpr std::size_t kCandidates = 5;

  AdaptiveController() = default;
  explicit AdaptiveController(AdaptiveConfig config) : config_(config) {}

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  /// Resolves `params` for one region launch. Non-kAuto params pass
  /// through untouched with an inactive ticket; kAuto is replaced by the
  /// controller's pick for (key, total, workers). `key` names the region
  /// shape — the JIT cache key for IR launches, a shape tag for raw body
  /// launches; total and workers are folded into the internal key, so one
  /// user key tuned at N=1e6 does not pollute the same nest at N=100.
  [[nodiscard]] Resolution resolve(ScheduleParams params,
                                   std::string_view key, i64 total,
                                   std::size_t workers);

  /// Feeds one region's outcome back. No-op for inactive tickets,
  /// incomplete runs, zero-iteration runs, and tickets from a superseded
  /// epoch (retuned or evicted-and-recreated keys).
  void report(const Ticket& ticket, const ForStats& stats);

  /// The concrete schedule for candidate `index` over (total, workers).
  /// Preserves the caller's serialized/sharded bits so kAuto composes with
  /// --locality and the differential oracle. Menu:
  ///   0  kChunked ceil(total/workers)   — static-block equivalent
  ///   1  kChunked max(1, total/(8P))    — fixed medium grain
  ///   2  kGuided                        — GSS
  ///   3  kFactoring                     — batched halving
  ///   4  kTrapezoid                     — TSS
  [[nodiscard]] static ScheduleParams candidate(std::size_t index,
                                                ScheduleParams base,
                                                i64 total,
                                                std::size_t workers);

  // ---- introspection (tests, --stats style diagnostics) ----
  [[nodiscard]] std::size_t key_count() const;
  /// Resolves served from a settled key (mirrors kAdaptiveHits).
  [[nodiscard]] std::uint64_t hits() const;
  /// Settled keys sent back to exploration (mirrors kAdaptiveRetunes).
  [[nodiscard]] std::uint64_t retunes() const;
  [[nodiscard]] std::vector<KeySnapshot> snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<KeyState> state;
    std::uint64_t last_used = 0;  ///< resolve sequence number (for LRU)
  };

  mutable std::mutex mutex_;
  AdaptiveConfig config_;
  std::unordered_map<std::string, Entry> keys_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t retunes_ = 0;
};

/// Process-global controller used by the synchronous ThreadPool launch
/// paths (run/run_reduce/run_sum, execute_parallel). Engines carry their
/// own instance.
[[nodiscard]] AdaptiveController& default_controller();

}  // namespace coalesce::runtime
