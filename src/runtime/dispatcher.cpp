#include "runtime/dispatcher.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

FetchAddDispatcher::FetchAddDispatcher(i64 total, i64 chunk_size)
    : total_(total), chunk_(chunk_size) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(chunk_size >= 1);
}

namespace {

/// Shared instrumentation tail of Dispatcher::next(): one kChunkDispatch
/// span plus the dispatch-op counter and latency/size histograms. `t0` is
/// the timestamp captured at entry (0 when no recorder was installed).
void trace_dispatch(std::uint64_t t0, index::Chunk chunk) {
  if constexpr (trace::kEnabled) {
    trace::Recorder* rec = trace::Recorder::current();
    if (rec == nullptr) return;
    const std::uint64_t t1 = rec->now_ns();
    const std::uint32_t worker = trace::thread_worker();
    rec->record(trace::EventKind::kChunkDispatch, worker, t0, t1, chunk.first,
                chunk.size());
    trace::Counters& counters = rec->counters();
    counters.add(worker, trace::Counter::kDispatchOps);
    counters.observe(worker, trace::Hist::kDispatchLatencyNs, t1 - t0);
    counters.observe(worker, trace::Hist::kChunkSize,
                     static_cast<std::uint64_t>(chunk.size()));
  } else {
    (void)t0;
    (void)chunk;
  }
}

std::uint64_t trace_clock() {
  if constexpr (trace::kEnabled) {
    if (trace::Recorder* rec = trace::Recorder::current()) {
      return rec->now_ns();
    }
  }
  return 0;
}

}  // namespace

index::Chunk FetchAddDispatcher::next() {
  const std::uint64_t t0 = trace_clock();
  // The fetch&add: claim [first, first + k) in one wait-free operation.
  const i64 first = next_.fetch_add(chunk_, std::memory_order_relaxed);
  if (first > total_) {
    return index::Chunk{total_ + 1, total_ + 1};  // empty: exhausted
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  const index::Chunk chunk{first, std::min(first + chunk_, total_ + 1)};
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t FetchAddDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

PolicyDispatcher::PolicyDispatcher(i64 total,
                                   std::unique_ptr<index::ChunkPolicy> policy)
    : cursor_(1), remaining_(total), policy_(std::move(policy)) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(policy_ != nullptr);
}

index::Chunk PolicyDispatcher::next() {
  const std::uint64_t t0 = trace_clock();
  index::Chunk chunk;
  {
    std::scoped_lock lock(mutex_);
    if (remaining_ <= 0) {
      return index::Chunk{cursor_, cursor_};  // empty
    }
    const i64 take = policy_->next_chunk(remaining_);
    COALESCE_ASSERT(take >= 1 && take <= remaining_);
    chunk = index::Chunk{cursor_, cursor_ + take};
    cursor_ += take;
    remaining_ -= take;
    ops_.fetch_add(1, std::memory_order_relaxed);
  }
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t PolicyDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

}  // namespace coalesce::runtime
