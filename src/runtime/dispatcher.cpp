#include "runtime/dispatcher.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace coalesce::runtime {

FetchAddDispatcher::FetchAddDispatcher(i64 total, i64 chunk_size)
    : total_(total), chunk_(chunk_size) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(chunk_size >= 1);
}

index::Chunk FetchAddDispatcher::next() {
  // The fetch&add: claim [first, first + k) in one wait-free operation.
  const i64 first = next_.fetch_add(chunk_, std::memory_order_relaxed);
  if (first > total_) {
    return index::Chunk{total_ + 1, total_ + 1};  // empty: exhausted
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  return index::Chunk{first, std::min(first + chunk_, total_ + 1)};
}

std::uint64_t FetchAddDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

PolicyDispatcher::PolicyDispatcher(i64 total,
                                   std::unique_ptr<index::ChunkPolicy> policy)
    : cursor_(1), remaining_(total), policy_(std::move(policy)) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(policy_ != nullptr);
}

index::Chunk PolicyDispatcher::next() {
  std::scoped_lock lock(mutex_);
  if (remaining_ <= 0) {
    return index::Chunk{cursor_, cursor_};  // empty
  }
  const i64 take = policy_->next_chunk(remaining_);
  COALESCE_ASSERT(take >= 1 && take <= remaining_);
  const index::Chunk chunk{cursor_, cursor_ + take};
  cursor_ += take;
  remaining_ -= take;
  ops_.fetch_add(1, std::memory_order_relaxed);
  return chunk;
}

std::uint64_t PolicyDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

}  // namespace coalesce::runtime
