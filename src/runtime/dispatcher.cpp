#include "runtime/dispatcher.hpp"

#include <algorithm>
#include <thread>

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

const char* to_string(Schedule schedule) noexcept {
  switch (schedule) {
    case Schedule::kStaticBlock: return "static-block";
    case Schedule::kStaticCyclic: return "static-cyclic";
    case Schedule::kSelf: return "self(1)";
    case Schedule::kChunked: return "chunked";
    case Schedule::kGuided: return "guided";
    case Schedule::kFactoring: return "factoring";
    case Schedule::kTrapezoid: return "trapezoid";
    case Schedule::kAuto: return "auto";
  }
  return "?";
}

FetchAddDispatcher::FetchAddDispatcher(i64 total, i64 chunk_size)
    : total_(total), chunk_(chunk_size) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(chunk_size >= 1);
}

support::Expected<std::unique_ptr<FetchAddDispatcher>>
FetchAddDispatcher::create(i64 total, i64 chunk_size) {
  if (total < 0) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("dispatcher total must be >= 0, got %lld",
                        static_cast<long long>(total)));
  }
  if (chunk_size < 1) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("chunk size must be >= 1, got %lld",
                        static_cast<long long>(chunk_size)));
  }
  return std::make_unique<FetchAddDispatcher>(total, chunk_size);
}

namespace {

/// Shared instrumentation tail of Dispatcher::next(): one kChunkDispatch
/// span plus the dispatch-op counter and latency/size histograms. `t0` is
/// the timestamp captured at entry (0 when no recorder was installed).
void trace_dispatch(std::uint64_t t0, index::Chunk chunk) {
  if constexpr (trace::kEnabled) {
    trace::Recorder* rec = trace::Recorder::current();
    if (rec == nullptr) return;
    const std::uint64_t t1 = rec->now_ns();
    const std::uint32_t worker = trace::thread_worker();
    rec->record(trace::EventKind::kChunkDispatch, worker, t0, t1, chunk.first,
                chunk.size());
    trace::Counters& counters = rec->counters();
    counters.add(worker, trace::Counter::kDispatchOps);
    counters.observe(worker, trace::Hist::kDispatchLatencyNs, t1 - t0);
    counters.observe(worker, trace::Hist::kChunkSize,
                     static_cast<std::uint64_t>(chunk.size()));
  } else {
    (void)t0;
    (void)chunk;
  }
}

std::uint64_t trace_clock() {
  if constexpr (trace::kEnabled) {
    if (trace::Recorder* rec = trace::Recorder::current()) {
      return rec->now_ns();
    }
  }
  return 0;
}

}  // namespace

index::Chunk FetchAddDispatcher::next() {
  // Clamp once exhausted: repeated polling must not keep growing next_
  // (unbounded growth would eventually overflow i64) and must not pay the
  // trace clock. At most one overshooting fetch_add per thread can slip
  // past this check, so the cursor stays within total_ + P * chunk_.
  if (next_.load(std::memory_order_relaxed) > total_) {
    return index::Chunk{total_ + 1, total_ + 1};  // empty: exhausted
  }
  const std::uint64_t t0 = trace_clock();
  // The fetch&add: claim [first, first + k) in one wait-free operation.
  const i64 first = next_.fetch_add(chunk_, std::memory_order_relaxed);
  if (first > total_) {
    return index::Chunk{total_ + 1, total_ + 1};  // empty: exhausted
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  const index::Chunk chunk{first, std::min(first + chunk_, total_ + 1)};
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t FetchAddDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

void FetchAddDispatcher::cancel() noexcept {
  // Poison the shared counter past N: the exact state a normal drain ends
  // in, so every exhaustion check already in next() handles it. One plain
  // atomic store — wait-free, division-free, and racing fetch_adds only
  // move the cursor further past N (the overshoot the exhausted-poll clamp
  // already bounds).
  next_.store(total_ + 1, std::memory_order_relaxed);
}

ChunkScheduleDispatcher::ChunkScheduleDispatcher(index::ChunkSchedule schedule)
    : schedule_(std::move(schedule)) {}

index::Chunk ChunkScheduleDispatcher::next() {
  const std::uint64_t count = schedule_.chunk_count();
  const i64 total = schedule_.total();
  // Same clamp-and-accounting rule as FetchAddDispatcher: exhausted calls
  // are polls — no cursor growth, no dispatch_ops, no trace span.
  if (cursor_.load(std::memory_order_relaxed) >= count) {
    return index::Chunk{total + 1, total + 1};  // empty: exhausted
  }
  const std::uint64_t t0 = trace_clock();
  // The fetch&add: claim the next precomputed table slot.
  const std::uint64_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= count) {
    return index::Chunk{total + 1, total + 1};  // lost the race to the end
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  const index::Chunk chunk = schedule_.chunk(slot);
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t ChunkScheduleDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

void ChunkScheduleDispatcher::cancel() noexcept {
  // Jump the table cursor to one past the last slot; every subsequent
  // next() takes the exhausted-poll path. Racing fetch_adds overshoot
  // further, which next() already treats as "lost the race to the end".
  cursor_.store(schedule_.chunk_count(), std::memory_order_relaxed);
}

namespace {

// The sharded dispatcher's per-cluster state is one packed 64-bit word,
// (limit << 32) | next, both 1-based iteration numbers. The caps in the
// header guarantee the low half never carries into the high half: next
// stays below total + workers * chunk <= 2^30 + 2^10 * 2^20 < 2^32.
constexpr std::uint64_t lo32(std::uint64_t word) noexcept {
  return word & 0xffff'ffffu;
}
constexpr std::uint64_t hi32(std::uint64_t word) noexcept {
  return word >> 32;
}
constexpr std::uint64_t pack_range(std::uint64_t next,
                                   std::uint64_t limit) noexcept {
  return (limit << 32) | next;
}

/// Instrumentation tail of one completed steal: a kSteal span (arg0 =
/// first stolen iteration, arg1 = range size) plus the steals counter.
void trace_steal(std::uint64_t t0, i64 first, i64 size) {
  if constexpr (trace::kEnabled) {
    trace::Recorder* rec = trace::Recorder::current();
    if (rec == nullptr) return;
    const std::uint64_t t1 = rec->now_ns();
    const std::uint32_t worker = trace::thread_worker();
    rec->record(trace::EventKind::kSteal, worker, t0, t1, first, size);
    rec->counters().add(worker, trace::Counter::kSteals);
  } else {
    (void)t0;
    (void)first;
    (void)size;
  }
}

}  // namespace

ShardedDispatcher::ShardedDispatcher(i64 total, i64 chunk_size,
                                     std::size_t workers)
    : total_(total),
      chunk_(chunk_size),
      workers_(workers),
      shards_(std::max<std::size_t>(workers / kClusterWorkers, 1)) {
  COALESCE_ASSERT(total >= 0 && total <= kMaxTotal);
  COALESCE_ASSERT(chunk_size >= 1 && chunk_size <= kMaxChunk);
  COALESCE_ASSERT(workers >= 1 && workers <= kMaxWorkers);
  const auto blocks =
      index::static_blocks(total_, static_cast<i64>(shards_.size()));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].range.store(
        pack_range(static_cast<std::uint64_t>(blocks[s].first),
                   static_cast<std::uint64_t>(blocks[s].last)),
        std::memory_order_relaxed);
  }
}

support::Expected<std::unique_ptr<ShardedDispatcher>> ShardedDispatcher::create(
    i64 total, i64 chunk_size, std::size_t workers) {
  if (total < 0 || total > kMaxTotal) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("sharded dispatcher total must be in [0, 2^30], "
                        "got %lld",
                        static_cast<long long>(total)));
  }
  if (chunk_size < 1 || chunk_size > kMaxChunk) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("sharded chunk size must be in [1, 2^20], got %lld",
                        static_cast<long long>(chunk_size)));
  }
  if (workers == 0 || workers > kMaxWorkers) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("sharded dispatcher needs 1..1024 workers, got %zu",
                        workers));
  }
  return std::make_unique<ShardedDispatcher>(total, chunk_size, workers);
}

index::Chunk ShardedDispatcher::next() {
  const std::size_t home = cluster_of(trace::thread_worker());
  Shard& mine = shards_[home];
  for (;;) {
    // Fast path: one fetch&add on the home cluster's word. The pre-check
    // keeps exhausted polls from growing the cursor (same clamp rule as
    // FetchAddDispatcher); at most one overshooting fetch_add per cluster
    // mate can slip past it, bounded by workers * chunk < 2^31.
    const std::uint64_t word = mine.range.load(std::memory_order_relaxed);
    if (lo32(word) < hi32(word)) {
      const std::uint64_t t0 = trace_clock();
      const std::uint64_t prev = mine.range.fetch_add(
          static_cast<std::uint64_t>(chunk_), std::memory_order_relaxed);
      const i64 first = static_cast<i64>(lo32(prev));
      const i64 limit = static_cast<i64>(hi32(prev));
      // next and limit come from ONE atomic read (the fetch_add's return
      // value), so a concurrent steal of the upper half either happened
      // before the claim (limit already lowered) or after it (the CAS saw
      // our bumped next) — never overlapping the grant.
      if (first < limit) {
        mine.ops.fetch_add(1, std::memory_order_relaxed);
        const index::Chunk chunk{first, std::min(first + chunk_, limit)};
        trace_dispatch(t0, chunk);
        return chunk;
      }
    }
    // Slow path: home shard drained (or poisoned).
    if (cancelled_.load(std::memory_order_seq_cst)) return empty_chunk();
    if (try_steal(home)) continue;  // fresh range installed: re-claim
    if (exhausted()) return empty_chunk();
    std::this_thread::yield();
  }
}

bool ShardedDispatcher::try_steal(std::size_t home) {
  Shard& mine = shards_[home];
  if (mine.steal_lock.test_and_set(std::memory_order_acquire)) {
    // A cluster mate is already stealing on our behalf; re-poll the shard
    // and pick up whatever it installs.
    return false;
  }
  // Re-check under the lock: a mate may have refilled the shard while we
  // raced for the flag.
  const std::uint64_t current = mine.range.load(std::memory_order_seq_cst);
  if (lo32(current) < hi32(current)) {
    mine.steal_lock.clear(std::memory_order_release);
    return true;
  }
  // Steal protocol order matters for exhausted(): pending++ happens before
  // the victim CAS (which makes the range invisible) and pending-- after
  // the install CAS + epoch bump (which make it visible again).
  pending_steals_.fetch_add(1, std::memory_order_seq_cst);
  const std::uint64_t t0 = trace_clock();
  bool installed = false;
  for (std::size_t probe = 1; probe < shards_.size() && !installed; ++probe) {
    Shard& victim = shards_[(home + probe) % shards_.size()];
    std::uint64_t word = victim.range.load(std::memory_order_seq_cst);
    // Bounded CAS attempts per victim: under load the word moves with
    // every claim, so try a few times and move on rather than spin.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t next = lo32(word);
      const std::uint64_t limit = hi32(word);
      if (next >= limit) break;  // victim drained; move to the next one
      // Keep [next, mid) with the victim; take [mid, limit). A lone
      // iteration cannot be split, so take it whole (mid == next) — a
      // victim cluster with no active worker would otherwise strand it and
      // livelock every thief in the exhaustion poll. A full-word CAS: any
      // concurrent claim changes the word and fails us.
      const std::uint64_t mid = next + (limit - next) / 2;
      if (victim.range.compare_exchange_weak(word, pack_range(next, mid),
                                             std::memory_order_seq_cst)) {
        // Install the stolen range as the home shard's new word. Only
        // cluster mates' overshooting fetch_adds contend here (the steal
        // lock excludes other installers), so the retry loop terminates.
        std::uint64_t expected = mine.range.load(std::memory_order_seq_cst);
        while (!mine.range.compare_exchange_weak(
            expected, pack_range(mid, limit), std::memory_order_seq_cst)) {
        }
        install_epoch_.fetch_add(1, std::memory_order_seq_cst);
        mine.steal_count.fetch_add(1, std::memory_order_relaxed);
        trace_steal(t0, static_cast<i64>(mid), static_cast<i64>(limit - mid));
        if (cancelled_.load(std::memory_order_seq_cst)) {
          // cancel() may have poisoned the shards before our install
          // resurrected this one; re-poison so the stolen range dies too.
          mine.range.store(0, std::memory_order_seq_cst);
        }
        installed = true;
        break;
      }
      // compare_exchange reloaded `word`; retry against the fresh value.
    }
  }
  pending_steals_.fetch_sub(1, std::memory_order_seq_cst);
  mine.steal_lock.clear(std::memory_order_release);
  return installed;
}

bool ShardedDispatcher::exhausted() const {
  // Exact-exhaustion protocol; all five checks must pass. A steal that
  // completed before the epoch read left its range visible to the scan; one
  // in flight during the scan trips a pending check; one that completed
  // mid-scan (victim CAS after its shard was scanned, install before the
  // thief's shard was scanned) trips the epoch re-read.
  const std::uint64_t epoch =
      install_epoch_.load(std::memory_order_seq_cst);
  if (pending_steals_.load(std::memory_order_seq_cst) != 0) return false;
  for (const Shard& shard : shards_) {
    const std::uint64_t word = shard.range.load(std::memory_order_seq_cst);
    if (lo32(word) < hi32(word)) return false;
  }
  if (pending_steals_.load(std::memory_order_seq_cst) != 0) return false;
  return install_epoch_.load(std::memory_order_seq_cst) == epoch;
}

std::uint64_t ShardedDispatcher::dispatch_ops() const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.ops.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t ShardedDispatcher::steals() const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.steal_count.load(std::memory_order_relaxed);
  }
  return sum;
}

void ShardedDispatcher::cancel() noexcept {
  // Order matters: set the flag first, then poison. An install racing the
  // poison either sees the flag afterwards (and re-poisons itself) or its
  // install is overwritten by our store — either way the range dies.
  cancelled_.store(true, std::memory_order_seq_cst);
  for (Shard& shard : shards_) {
    shard.range.store(0, std::memory_order_seq_cst);
  }
}

PolicyDispatcher::PolicyDispatcher(i64 total,
                                   std::unique_ptr<index::ChunkPolicy> policy)
    : cursor_(1), remaining_(total), policy_(std::move(policy)) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(policy_ != nullptr);
}

support::Expected<std::unique_ptr<PolicyDispatcher>> PolicyDispatcher::create(
    i64 total, std::unique_ptr<index::ChunkPolicy> policy) {
  if (total < 0) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("dispatcher total must be >= 0, got %lld",
                        static_cast<long long>(total)));
  }
  if (policy == nullptr) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "PolicyDispatcher needs a chunk policy");
  }
  return std::make_unique<PolicyDispatcher>(total, std::move(policy));
}

index::Chunk PolicyDispatcher::next() {
  const std::uint64_t t0 = trace_clock();
  index::Chunk chunk;
  {
    std::scoped_lock lock(mutex_);
    if (remaining_ <= 0) {
      return index::Chunk{cursor_, cursor_};  // empty
    }
    const i64 take = policy_->next_chunk(remaining_);
    COALESCE_ASSERT(take >= 1 && take <= remaining_);
    chunk = index::Chunk{cursor_, cursor_ + take};
    cursor_ += take;
    remaining_ -= take;
    ops_.fetch_add(1, std::memory_order_relaxed);
  }
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t PolicyDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

void PolicyDispatcher::cancel() noexcept {
  std::scoped_lock lock(mutex_);
  remaining_ = 0;  // the serialized path's exhaustion condition
}

namespace {

/// The policy behind a dynamic variable-chunk schedule, or null for the
/// fixed-chunk kinds.
std::unique_ptr<index::ChunkPolicy> make_policy(Schedule kind, i64 total,
                                                i64 workers) {
  switch (kind) {
    case Schedule::kGuided:
      return std::make_unique<index::GuidedPolicy>(workers);
    case Schedule::kFactoring:
      return std::make_unique<index::FactoringPolicy>(workers);
    case Schedule::kTrapezoid:
      return std::make_unique<index::TrapezoidPolicy>(std::max<i64>(total, 1),
                                                      workers);
    default:
      return nullptr;
  }
}

/// True when a sharded shape fits the packed-word caps and has at least
/// two clusters (one cluster has nobody to steal from — the plain
/// single-counter dispatcher is strictly simpler there).
bool sharded_eligible(i64 total, i64 chunk, std::size_t workers) {
  return workers >= 2 * ShardedDispatcher::kClusterWorkers &&
         workers <= ShardedDispatcher::kMaxWorkers &&
         total <= ShardedDispatcher::kMaxTotal && chunk >= 1 &&
         chunk <= ShardedDispatcher::kMaxChunk;
}

}  // namespace

support::Expected<std::unique_ptr<Dispatcher>> make_dispatcher(
    ScheduleParams params, i64 total, std::size_t workers) {
  if (total < 0) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("parallel loop total must be >= 0, got %lld",
                        static_cast<long long>(total)));
  }
  if (workers == 0) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "dispatcher needs at least one worker");
  }
  switch (params.kind) {
    case Schedule::kStaticBlock:
    case Schedule::kStaticCyclic:
      return std::unique_ptr<Dispatcher>{};  // static: no dispatcher
    case Schedule::kSelf:
      if (params.sharded && sharded_eligible(total, 1, workers)) {
        return std::unique_ptr<Dispatcher>{
            std::make_unique<ShardedDispatcher>(total, 1, workers)};
      }
      return std::unique_ptr<Dispatcher>{
          std::make_unique<FetchAddDispatcher>(total, 1)};
    case Schedule::kChunked: {
      if (params.chunk_size < 1) {
        return support::make_error(
            support::ErrorCode::kInvalidArgument,
            support::format("chunk size must be >= 1, got %lld",
                            static_cast<long long>(params.chunk_size)));
      }
      if (params.sharded &&
          sharded_eligible(total, params.chunk_size, workers)) {
        return std::unique_ptr<Dispatcher>{std::make_unique<ShardedDispatcher>(
            total, params.chunk_size, workers)};
      }
      return std::unique_ptr<Dispatcher>{
          std::make_unique<FetchAddDispatcher>(total, params.chunk_size)};
    }
    case Schedule::kGuided:
    case Schedule::kFactoring:
    case Schedule::kTrapezoid: {
      if (params.sharded && !params.serialized) {
        // The decreasing-chunk policies assume one global counter; under
        // sharding, approximate their granularity with a fixed chunk of
        // ~total / (16 P) — small enough to balance, big enough to stay
        // off the counter.
        const i64 chunk = std::max<i64>(
            1, total / (static_cast<i64>(workers) * 16));
        if (sharded_eligible(total, chunk, workers)) {
          return std::unique_ptr<Dispatcher>{
              std::make_unique<ShardedDispatcher>(total, chunk, workers)};
        }
      }
      auto policy =
          make_policy(params.kind, total, static_cast<i64>(workers));
      if (params.serialized) {
        return std::unique_ptr<Dispatcher>{
            std::make_unique<PolicyDispatcher>(total, std::move(policy))};
      }
      // These chunk sequences are deterministic in (total, P): precompute
      // the boundary table once and dispatch wait-free over it.
      return std::unique_ptr<Dispatcher>{
          std::make_unique<ChunkScheduleDispatcher>(
              index::ChunkSchedule::precompute(*policy, total))};
    }
    case Schedule::kAuto:
      // kAuto is a launch-surface kind, not a dispatchable one: the
      // adaptive controller must replace it with a concrete schedule
      // before the region is built. Reaching here means a launch path
      // skipped the resolution step.
      return support::make_error(
          support::ErrorCode::kInvalidArgument,
          "Schedule::kAuto must be resolved by the adaptive controller "
          "before dispatch");
  }
  return support::make_error(support::ErrorCode::kInvalidArgument,
                             "unknown schedule kind");
}

}  // namespace coalesce::runtime
