#include "runtime/dispatcher.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

const char* to_string(Schedule schedule) noexcept {
  switch (schedule) {
    case Schedule::kStaticBlock: return "static-block";
    case Schedule::kStaticCyclic: return "static-cyclic";
    case Schedule::kSelf: return "self(1)";
    case Schedule::kChunked: return "chunked";
    case Schedule::kGuided: return "guided";
    case Schedule::kFactoring: return "factoring";
    case Schedule::kTrapezoid: return "trapezoid";
  }
  return "?";
}

FetchAddDispatcher::FetchAddDispatcher(i64 total, i64 chunk_size)
    : total_(total), chunk_(chunk_size) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(chunk_size >= 1);
}

support::Expected<std::unique_ptr<FetchAddDispatcher>>
FetchAddDispatcher::create(i64 total, i64 chunk_size) {
  if (total < 0) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("dispatcher total must be >= 0, got %lld",
                        static_cast<long long>(total)));
  }
  if (chunk_size < 1) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("chunk size must be >= 1, got %lld",
                        static_cast<long long>(chunk_size)));
  }
  return std::make_unique<FetchAddDispatcher>(total, chunk_size);
}

namespace {

/// Shared instrumentation tail of Dispatcher::next(): one kChunkDispatch
/// span plus the dispatch-op counter and latency/size histograms. `t0` is
/// the timestamp captured at entry (0 when no recorder was installed).
void trace_dispatch(std::uint64_t t0, index::Chunk chunk) {
  if constexpr (trace::kEnabled) {
    trace::Recorder* rec = trace::Recorder::current();
    if (rec == nullptr) return;
    const std::uint64_t t1 = rec->now_ns();
    const std::uint32_t worker = trace::thread_worker();
    rec->record(trace::EventKind::kChunkDispatch, worker, t0, t1, chunk.first,
                chunk.size());
    trace::Counters& counters = rec->counters();
    counters.add(worker, trace::Counter::kDispatchOps);
    counters.observe(worker, trace::Hist::kDispatchLatencyNs, t1 - t0);
    counters.observe(worker, trace::Hist::kChunkSize,
                     static_cast<std::uint64_t>(chunk.size()));
  } else {
    (void)t0;
    (void)chunk;
  }
}

std::uint64_t trace_clock() {
  if constexpr (trace::kEnabled) {
    if (trace::Recorder* rec = trace::Recorder::current()) {
      return rec->now_ns();
    }
  }
  return 0;
}

}  // namespace

index::Chunk FetchAddDispatcher::next() {
  // Clamp once exhausted: repeated polling must not keep growing next_
  // (unbounded growth would eventually overflow i64) and must not pay the
  // trace clock. At most one overshooting fetch_add per thread can slip
  // past this check, so the cursor stays within total_ + P * chunk_.
  if (next_.load(std::memory_order_relaxed) > total_) {
    return index::Chunk{total_ + 1, total_ + 1};  // empty: exhausted
  }
  const std::uint64_t t0 = trace_clock();
  // The fetch&add: claim [first, first + k) in one wait-free operation.
  const i64 first = next_.fetch_add(chunk_, std::memory_order_relaxed);
  if (first > total_) {
    return index::Chunk{total_ + 1, total_ + 1};  // empty: exhausted
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  const index::Chunk chunk{first, std::min(first + chunk_, total_ + 1)};
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t FetchAddDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

void FetchAddDispatcher::cancel() noexcept {
  // Poison the shared counter past N: the exact state a normal drain ends
  // in, so every exhaustion check already in next() handles it. One plain
  // atomic store — wait-free, division-free, and racing fetch_adds only
  // move the cursor further past N (the overshoot the exhausted-poll clamp
  // already bounds).
  next_.store(total_ + 1, std::memory_order_relaxed);
}

ChunkScheduleDispatcher::ChunkScheduleDispatcher(index::ChunkSchedule schedule)
    : schedule_(std::move(schedule)) {}

index::Chunk ChunkScheduleDispatcher::next() {
  const std::uint64_t count = schedule_.chunk_count();
  const i64 total = schedule_.total();
  // Same clamp-and-accounting rule as FetchAddDispatcher: exhausted calls
  // are polls — no cursor growth, no dispatch_ops, no trace span.
  if (cursor_.load(std::memory_order_relaxed) >= count) {
    return index::Chunk{total + 1, total + 1};  // empty: exhausted
  }
  const std::uint64_t t0 = trace_clock();
  // The fetch&add: claim the next precomputed table slot.
  const std::uint64_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= count) {
    return index::Chunk{total + 1, total + 1};  // lost the race to the end
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  const index::Chunk chunk = schedule_.chunk(slot);
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t ChunkScheduleDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

void ChunkScheduleDispatcher::cancel() noexcept {
  // Jump the table cursor to one past the last slot; every subsequent
  // next() takes the exhausted-poll path. Racing fetch_adds overshoot
  // further, which next() already treats as "lost the race to the end".
  cursor_.store(schedule_.chunk_count(), std::memory_order_relaxed);
}

PolicyDispatcher::PolicyDispatcher(i64 total,
                                   std::unique_ptr<index::ChunkPolicy> policy)
    : cursor_(1), remaining_(total), policy_(std::move(policy)) {
  COALESCE_ASSERT(total >= 0);
  COALESCE_ASSERT(policy_ != nullptr);
}

support::Expected<std::unique_ptr<PolicyDispatcher>> PolicyDispatcher::create(
    i64 total, std::unique_ptr<index::ChunkPolicy> policy) {
  if (total < 0) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("dispatcher total must be >= 0, got %lld",
                        static_cast<long long>(total)));
  }
  if (policy == nullptr) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "PolicyDispatcher needs a chunk policy");
  }
  return std::make_unique<PolicyDispatcher>(total, std::move(policy));
}

index::Chunk PolicyDispatcher::next() {
  const std::uint64_t t0 = trace_clock();
  index::Chunk chunk;
  {
    std::scoped_lock lock(mutex_);
    if (remaining_ <= 0) {
      return index::Chunk{cursor_, cursor_};  // empty
    }
    const i64 take = policy_->next_chunk(remaining_);
    COALESCE_ASSERT(take >= 1 && take <= remaining_);
    chunk = index::Chunk{cursor_, cursor_ + take};
    cursor_ += take;
    remaining_ -= take;
    ops_.fetch_add(1, std::memory_order_relaxed);
  }
  trace_dispatch(t0, chunk);
  return chunk;
}

std::uint64_t PolicyDispatcher::dispatch_ops() const noexcept {
  return ops_.load(std::memory_order_relaxed);
}

void PolicyDispatcher::cancel() noexcept {
  std::scoped_lock lock(mutex_);
  remaining_ = 0;  // the serialized path's exhaustion condition
}

namespace {

/// The policy behind a dynamic variable-chunk schedule, or null for the
/// fixed-chunk kinds.
std::unique_ptr<index::ChunkPolicy> make_policy(Schedule kind, i64 total,
                                                i64 workers) {
  switch (kind) {
    case Schedule::kGuided:
      return std::make_unique<index::GuidedPolicy>(workers);
    case Schedule::kFactoring:
      return std::make_unique<index::FactoringPolicy>(workers);
    case Schedule::kTrapezoid:
      return std::make_unique<index::TrapezoidPolicy>(std::max<i64>(total, 1),
                                                      workers);
    default:
      return nullptr;
  }
}

}  // namespace

support::Expected<std::unique_ptr<Dispatcher>> make_dispatcher(
    ScheduleParams params, i64 total, std::size_t workers) {
  if (total < 0) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("parallel loop total must be >= 0, got %lld",
                        static_cast<long long>(total)));
  }
  if (workers == 0) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "dispatcher needs at least one worker");
  }
  switch (params.kind) {
    case Schedule::kStaticBlock:
    case Schedule::kStaticCyclic:
      return std::unique_ptr<Dispatcher>{};  // static: no dispatcher
    case Schedule::kSelf:
      return std::unique_ptr<Dispatcher>{
          std::make_unique<FetchAddDispatcher>(total, 1)};
    case Schedule::kChunked: {
      if (params.chunk_size < 1) {
        return support::make_error(
            support::ErrorCode::kInvalidArgument,
            support::format("chunk size must be >= 1, got %lld",
                            static_cast<long long>(params.chunk_size)));
      }
      return std::unique_ptr<Dispatcher>{
          std::make_unique<FetchAddDispatcher>(total, params.chunk_size)};
    }
    case Schedule::kGuided:
    case Schedule::kFactoring:
    case Schedule::kTrapezoid: {
      auto policy =
          make_policy(params.kind, total, static_cast<i64>(workers));
      if (params.serialized) {
        return std::unique_ptr<Dispatcher>{
            std::make_unique<PolicyDispatcher>(total, std::move(policy))};
      }
      // These chunk sequences are deterministic in (total, P): precompute
      // the boundary table once and dispatch wait-free over it.
      return std::unique_ptr<Dispatcher>{
          std::make_unique<ChunkScheduleDispatcher>(
              index::ChunkSchedule::precompute(*policy, total))};
    }
  }
  return support::make_error(support::ErrorCode::kInvalidArgument,
                             "unknown schedule kind");
}

}  // namespace coalesce::runtime
