// Iteration dispatchers: the shared counter at the heart of self-scheduled
// DOALL execution.
//
// The paper's machine provides a fetch&add primitive; coalescing matters
// precisely because it reduces an m-level scheduling problem to fetch&adds
// on ONE counter. Two dispatchers:
//
//  * FetchAddDispatcher — fixed chunk size k: one std::atomic fetch_add per
//    dispatch, wait-free, exactly the paper's mechanism;
//  * PolicyDispatcher — variable chunk sizes (guided/trapezoid) need
//    remaining-count-dependent sizes, which a single fetch&add cannot
//    express; a small critical section plays the role of the synchronized
//    "allocation point".
//
// Both count their synchronized operations; that count is the runtime
// measurement experiment E6 reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "index/chunk.hpp"

namespace coalesce::runtime {

using support::i64;

/// Abstract source of work chunks over [1, total].
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Next chunk, or an empty chunk when the space is exhausted. Thread-safe.
  [[nodiscard]] virtual index::Chunk next() = 0;

  /// Synchronized dispatch operations performed so far.
  [[nodiscard]] virtual std::uint64_t dispatch_ops() const noexcept = 0;
};

/// Wait-free dispatcher for fixed chunk sizes (k = 1 is unit
/// self-scheduling). One atomic fetch_add per dispatch.
class FetchAddDispatcher final : public Dispatcher {
 public:
  FetchAddDispatcher(i64 total, i64 chunk_size);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;

 private:
  const i64 total_;
  const i64 chunk_;
  std::atomic<i64> next_{1};
  std::atomic<std::uint64_t> ops_{0};
};

/// Mutex-guarded dispatcher driven by a ChunkPolicy (guided, trapezoid, ...).
class PolicyDispatcher final : public Dispatcher {
 public:
  PolicyDispatcher(i64 total, std::unique_ptr<index::ChunkPolicy> policy);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;

 private:
  std::mutex mutex_;
  i64 cursor_;     // guarded by mutex_
  i64 remaining_;  // guarded by mutex_
  std::unique_ptr<index::ChunkPolicy> policy_;  // guarded by mutex_
  std::atomic<std::uint64_t> ops_{0};
};

}  // namespace coalesce::runtime
