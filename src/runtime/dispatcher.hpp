// Iteration dispatchers: the shared counter at the heart of self-scheduled
// DOALL execution.
//
// The paper's machine provides a fetch&add primitive; coalescing matters
// precisely because it reduces an m-level scheduling problem to fetch&adds
// on ONE counter. Three dispatchers:
//
//  * FetchAddDispatcher — fixed chunk size k: one std::atomic fetch_add per
//    dispatch, wait-free, exactly the paper's mechanism;
//  * ChunkScheduleDispatcher — variable chunk sizes whose sequence is a
//    deterministic function of (total, P) (guided/factoring/trapezoid):
//    the boundary table is precomputed at region entry
//    (index::ChunkSchedule) and each dispatch is one fetch_add on the
//    chunk index — wait-free, same primitive as the fixed-size case;
//  * PolicyDispatcher — a mutex-guarded critical section that consults the
//    policy per dispatch. Kept for genuinely state-dependent policies and
//    as the differential-test oracle the wait-free path is checked against
//    (and as the "serialized allocation point" E11 ablates).
//
// All of them count their synchronized operations; that count is the
// runtime measurement experiment E6 reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "index/chunk.hpp"
#include "support/error.hpp"

namespace coalesce::runtime {

using support::i64;

/// Scheduling discipline for dynamic (dispatcher-based) execution.
enum class Schedule : std::uint8_t {
  kStaticBlock,   ///< contiguous blocks, no dispatcher (one "dispatch" each)
  kStaticCyclic,  ///< round-robin single iterations, no dispatcher
  kSelf,          ///< unit self-scheduling: fetch&add, chunk 1
  kChunked,       ///< fetch&add, fixed chunk `chunk_size`
  kGuided,        ///< guided self-scheduling (GSS)
  kFactoring,     ///< factoring (batched halving)
  kTrapezoid,     ///< trapezoid self-scheduling (TSS)
  /// Defer the choice to the adaptive controller (runtime/adaptive.hpp):
  /// resolved into one of the concrete kinds at the launch boundary, per
  /// region-shape key. Never reaches make_dispatcher — passing it there is
  /// an error by design (the resolution step was skipped).
  kAuto,
};

[[nodiscard]] const char* to_string(Schedule schedule) noexcept;

struct ScheduleParams {
  Schedule kind = Schedule::kSelf;
  i64 chunk_size = 1;  ///< for kChunked
  /// Force the mutex PolicyDispatcher for guided/factoring/trapezoid
  /// instead of the precomputed wait-free path. The chunk sequence is
  /// identical; only the dispatch mechanism differs. Differential tests
  /// and the E16 before/after measurement use this as the oracle.
  bool serialized = false;
  /// Prefer the cache-sharded dispatcher (ShardedDispatcher): the space is
  /// split into per-worker-cluster contiguous ranges with inter-cluster
  /// stealing, so neighbors stay on adjacent iterations instead of
  /// interleaving the whole machine on one counter. Falls back to the
  /// single-counter path when the shape is ineligible (see
  /// make_dispatcher). Set by LaunchOptions::locality.
  bool sharded = false;
};

/// Stand-in used by call sites that validate a schedule BEFORE the kAuto
/// resolution point (admission checks, region builders): kAuto maps to
/// kSelf, everything else passes through. Sound because every candidate
/// the controller can hand out is dispatchable whenever kSelf is.
[[nodiscard]] inline ScheduleParams validation_schedule(
    ScheduleParams params) noexcept {
  if (params.kind == Schedule::kAuto) params.kind = Schedule::kSelf;
  return params;
}

/// Abstract source of work chunks over [1, total].
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Next chunk, or an empty chunk when the space is exhausted. Thread-safe.
  [[nodiscard]] virtual index::Chunk next() = 0;

  /// Synchronized dispatch operations performed so far. Exhausted calls
  /// (empty chunks) are polls, not dispatches, and are never counted.
  [[nodiscard]] virtual std::uint64_t dispatch_ops() const noexcept = 0;

  /// Poisons the dispatcher: every subsequent next() returns an empty
  /// chunk, so workers stop at their next chunk grant (cancel latency is
  /// bounded by the one chunk each worker already owns). Wait-free on the
  /// wait-free dispatchers — the shared counter is stored past the end,
  /// the same exhaustion the normal drain reaches; no check is added to
  /// the hot fetch&add. Thread-safe and idempotent; at most one already-
  /// in-flight grant per worker can still complete.
  virtual void cancel() noexcept = 0;

  /// Inter-cluster range steals performed so far. Only the sharded
  /// dispatcher steals; everything else reports 0.
  [[nodiscard]] virtual std::uint64_t steals() const noexcept { return 0; }
};

/// Wait-free dispatcher for fixed chunk sizes (k = 1 is unit
/// self-scheduling). One atomic fetch_add per dispatch.
class FetchAddDispatcher final : public Dispatcher {
 public:
  /// Validating factory: total >= 0 and chunk_size >= 1, else an error.
  [[nodiscard]] static support::Expected<std::unique_ptr<FetchAddDispatcher>>
  create(i64 total, i64 chunk_size);

  /// Asserting constructor; prefer create() for unvalidated inputs.
  FetchAddDispatcher(i64 total, i64 chunk_size);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  void cancel() noexcept override;

 private:
  const i64 total_;
  const i64 chunk_;
  std::atomic<i64> next_{1};
  std::atomic<std::uint64_t> ops_{0};
};

/// Wait-free dispatcher over a precomputed chunk boundary table: one
/// fetch_add on the chunk index per dispatch. The schedule is immutable
/// after construction, so workers read it without synchronization.
class ChunkScheduleDispatcher final : public Dispatcher {
 public:
  explicit ChunkScheduleDispatcher(index::ChunkSchedule schedule);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  void cancel() noexcept override;

  [[nodiscard]] const index::ChunkSchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  const index::ChunkSchedule schedule_;
  std::atomic<std::uint64_t> cursor_{0};  ///< next table slot to claim
  std::atomic<std::uint64_t> ops_{0};
};

/// Cache-sharded work dispatcher: the iteration space is partitioned into
/// one contiguous range per worker CLUSTER (a group of ~4 adjacent worker
/// ids, standing in for cores that share an L2/L3 slice), and each cluster
/// claims fixed-size chunks off its own counter. The fast path is the same
/// wait-free fetch&add as FetchAddDispatcher — but on a cluster-local
/// cache line, so high core counts stop serializing on one counter and
/// neighbors execute ADJACENT iterations (the locality the permuted decode
/// order set up). When a cluster drains it steals the upper half of the
/// fullest-looking sibling range, so imbalance costs a logarithmic number
/// of steals rather than idle workers.
///
/// Shard state is one 64-bit word, (limit << 32) | next, both 1-based
/// iteration numbers. Claiming fetch_adds the chunk size into the low half
/// (next and limit are read atomically with the claim, so a concurrent
/// steal of the upper half can never hand out overlapping work); stealing
/// CASes the whole word. A per-shard spinlock serializes the steal slow
/// path of one cluster's workers; a global in-flight count plus an install
/// epoch make the "everything is drained" verdict exact even while a
/// stolen range is mid-flight between two shards. The packed halves cap
/// the shape at total <= 2^30 and chunk <= 2^20; make_dispatcher falls
/// back to FetchAddDispatcher beyond that.
class ShardedDispatcher final : public Dispatcher {
 public:
  static constexpr i64 kMaxTotal = i64{1} << 30;
  static constexpr i64 kMaxChunk = i64{1} << 20;
  static constexpr std::size_t kMaxWorkers = std::size_t{1} << 10;
  /// Worker ids per cluster (the granularity of counter sharing).
  static constexpr std::size_t kClusterWorkers = 4;

  /// Validating factory; same domain as the asserting constructor.
  [[nodiscard]] static support::Expected<std::unique_ptr<ShardedDispatcher>>
  create(i64 total, i64 chunk_size, std::size_t workers);

  /// Asserts 0 <= total <= kMaxTotal, 1 <= chunk_size <= kMaxChunk,
  /// 1 <= workers <= kMaxWorkers.
  ShardedDispatcher(i64 total, i64 chunk_size, std::size_t workers);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  std::uint64_t steals() const noexcept override;
  void cancel() noexcept override;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return shards_.size();
  }
  /// Contiguous worker→cluster map (workers 0..k-1 share cluster 0, ...).
  [[nodiscard]] std::size_t cluster_of(std::size_t worker) const noexcept {
    return (worker % workers_) * shards_.size() / workers_;
  }

 private:
  struct alignas(64) Shard {
    /// (limit << 32) | next; next >= limit means drained.
    std::atomic<std::uint64_t> range{0};
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> steal_count{0};
    /// Serializes this cluster's steal slow path (kills the double-install
    /// race between cluster mates). Claims never touch it.
    std::atomic_flag steal_lock = ATOMIC_FLAG_INIT;
  };

  [[nodiscard]] index::Chunk empty_chunk() const noexcept {
    return index::Chunk{total_ + 1, total_ + 1};
  }
  /// Steal into `home` under its lock; true when a fresh range was
  /// installed (caller retries the claim fast path).
  bool try_steal(std::size_t home);
  /// Exact exhaustion: all shards drained AND no steal in flight.
  [[nodiscard]] bool exhausted() const;

  const i64 total_;
  const i64 chunk_;
  const std::size_t workers_;
  std::vector<Shard> shards_;
  /// Steals currently between the victim CAS and the install CAS: their
  /// range is visible in NO shard, so exhaustion must wait them out.
  std::atomic<std::uint64_t> pending_steals_{0};
  /// Bumped on every install; re-read around the exhaustion scan to catch
  /// steals that completed mid-scan.
  std::atomic<std::uint64_t> install_epoch_{0};
  std::atomic<bool> cancelled_{false};
};

/// Mutex-guarded dispatcher driven by a ChunkPolicy (guided, trapezoid, ...).
/// The serialized "allocation point": kept for state-dependent policies and
/// as the oracle the precomputed wait-free path is differentially tested
/// against.
class PolicyDispatcher final : public Dispatcher {
 public:
  /// Validating factory: total >= 0 and a non-null policy, else an error.
  [[nodiscard]] static support::Expected<std::unique_ptr<PolicyDispatcher>>
  create(i64 total, std::unique_ptr<index::ChunkPolicy> policy);

  /// Asserting constructor; prefer create() for unvalidated inputs.
  PolicyDispatcher(i64 total, std::unique_ptr<index::ChunkPolicy> policy);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  void cancel() noexcept override;

 private:
  std::mutex mutex_;
  i64 cursor_;     // guarded by mutex_
  i64 remaining_;  // guarded by mutex_
  std::unique_ptr<index::ChunkPolicy> policy_;  // guarded by mutex_
  std::atomic<std::uint64_t> ops_{0};
};

/// Builds the dispatcher for a schedule over `total` iterations (shared by
/// the runtime and tests). A null pointer (with ok() true) for the static
/// schedules; an error for total < 0, chunk_size < 1, or workers == 0.
///
/// With params.sharded set, every dynamic kind is served by a
/// ShardedDispatcher over locality-sized fixed chunks (kChunked keeps its
/// chunk_size; the policy kinds get ~total/(16*workers)) — provided the
/// shape is eligible: workers >= 2 * ShardedDispatcher::kClusterWorkers
/// (at least two clusters, otherwise there is nobody to steal from) and
/// total/chunk within the packed-word caps. Ineligible shapes take the
/// normal single-counter path for their kind.
[[nodiscard]] support::Expected<std::unique_ptr<Dispatcher>> make_dispatcher(
    ScheduleParams params, i64 total, std::size_t workers);

}  // namespace coalesce::runtime
