// Iteration dispatchers: the shared counter at the heart of self-scheduled
// DOALL execution.
//
// The paper's machine provides a fetch&add primitive; coalescing matters
// precisely because it reduces an m-level scheduling problem to fetch&adds
// on ONE counter. Three dispatchers:
//
//  * FetchAddDispatcher — fixed chunk size k: one std::atomic fetch_add per
//    dispatch, wait-free, exactly the paper's mechanism;
//  * ChunkScheduleDispatcher — variable chunk sizes whose sequence is a
//    deterministic function of (total, P) (guided/factoring/trapezoid):
//    the boundary table is precomputed at region entry
//    (index::ChunkSchedule) and each dispatch is one fetch_add on the
//    chunk index — wait-free, same primitive as the fixed-size case;
//  * PolicyDispatcher — a mutex-guarded critical section that consults the
//    policy per dispatch. Kept for genuinely state-dependent policies and
//    as the differential-test oracle the wait-free path is checked against
//    (and as the "serialized allocation point" E11 ablates).
//
// All of them count their synchronized operations; that count is the
// runtime measurement experiment E6 reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "index/chunk.hpp"
#include "support/error.hpp"

namespace coalesce::runtime {

using support::i64;

/// Scheduling discipline for dynamic (dispatcher-based) execution.
enum class Schedule : std::uint8_t {
  kStaticBlock,   ///< contiguous blocks, no dispatcher (one "dispatch" each)
  kStaticCyclic,  ///< round-robin single iterations, no dispatcher
  kSelf,          ///< unit self-scheduling: fetch&add, chunk 1
  kChunked,       ///< fetch&add, fixed chunk `chunk_size`
  kGuided,        ///< guided self-scheduling (GSS)
  kFactoring,     ///< factoring (batched halving)
  kTrapezoid,     ///< trapezoid self-scheduling (TSS)
};

[[nodiscard]] const char* to_string(Schedule schedule) noexcept;

struct ScheduleParams {
  Schedule kind = Schedule::kSelf;
  i64 chunk_size = 1;  ///< for kChunked
  /// Force the mutex PolicyDispatcher for guided/factoring/trapezoid
  /// instead of the precomputed wait-free path. The chunk sequence is
  /// identical; only the dispatch mechanism differs. Differential tests
  /// and the E16 before/after measurement use this as the oracle.
  bool serialized = false;
};

/// Abstract source of work chunks over [1, total].
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Next chunk, or an empty chunk when the space is exhausted. Thread-safe.
  [[nodiscard]] virtual index::Chunk next() = 0;

  /// Synchronized dispatch operations performed so far. Exhausted calls
  /// (empty chunks) are polls, not dispatches, and are never counted.
  [[nodiscard]] virtual std::uint64_t dispatch_ops() const noexcept = 0;

  /// Poisons the dispatcher: every subsequent next() returns an empty
  /// chunk, so workers stop at their next chunk grant (cancel latency is
  /// bounded by the one chunk each worker already owns). Wait-free on the
  /// wait-free dispatchers — the shared counter is stored past the end,
  /// the same exhaustion the normal drain reaches; no check is added to
  /// the hot fetch&add. Thread-safe and idempotent; at most one already-
  /// in-flight grant per worker can still complete.
  virtual void cancel() noexcept = 0;
};

/// Wait-free dispatcher for fixed chunk sizes (k = 1 is unit
/// self-scheduling). One atomic fetch_add per dispatch.
class FetchAddDispatcher final : public Dispatcher {
 public:
  /// Validating factory: total >= 0 and chunk_size >= 1, else an error.
  [[nodiscard]] static support::Expected<std::unique_ptr<FetchAddDispatcher>>
  create(i64 total, i64 chunk_size);

  /// Asserting constructor; prefer create() for unvalidated inputs.
  FetchAddDispatcher(i64 total, i64 chunk_size);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  void cancel() noexcept override;

 private:
  const i64 total_;
  const i64 chunk_;
  std::atomic<i64> next_{1};
  std::atomic<std::uint64_t> ops_{0};
};

/// Wait-free dispatcher over a precomputed chunk boundary table: one
/// fetch_add on the chunk index per dispatch. The schedule is immutable
/// after construction, so workers read it without synchronization.
class ChunkScheduleDispatcher final : public Dispatcher {
 public:
  explicit ChunkScheduleDispatcher(index::ChunkSchedule schedule);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  void cancel() noexcept override;

  [[nodiscard]] const index::ChunkSchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  const index::ChunkSchedule schedule_;
  std::atomic<std::uint64_t> cursor_{0};  ///< next table slot to claim
  std::atomic<std::uint64_t> ops_{0};
};

/// Mutex-guarded dispatcher driven by a ChunkPolicy (guided, trapezoid, ...).
/// The serialized "allocation point": kept for state-dependent policies and
/// as the oracle the precomputed wait-free path is differentially tested
/// against.
class PolicyDispatcher final : public Dispatcher {
 public:
  /// Validating factory: total >= 0 and a non-null policy, else an error.
  [[nodiscard]] static support::Expected<std::unique_ptr<PolicyDispatcher>>
  create(i64 total, std::unique_ptr<index::ChunkPolicy> policy);

  /// Asserting constructor; prefer create() for unvalidated inputs.
  PolicyDispatcher(i64 total, std::unique_ptr<index::ChunkPolicy> policy);

  index::Chunk next() override;
  std::uint64_t dispatch_ops() const noexcept override;
  void cancel() noexcept override;

 private:
  std::mutex mutex_;
  i64 cursor_;     // guarded by mutex_
  i64 remaining_;  // guarded by mutex_
  std::unique_ptr<index::ChunkPolicy> policy_;  // guarded by mutex_
  std::atomic<std::uint64_t> ops_{0};
};

/// Builds the dispatcher for a schedule over `total` iterations (shared by
/// the runtime and tests). A null pointer (with ok() true) for the static
/// schedules; an error for total < 0, chunk_size < 1, or workers == 0.
[[nodiscard]] support::Expected<std::unique_ptr<Dispatcher>> make_dispatcher(
    ScheduleParams params, i64 total, std::size_t workers);

}  // namespace coalesce::runtime
