#include "runtime/engine.hpp"

#include <chrono>

#include "trace/recorder.hpp"

namespace coalesce::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ticks() noexcept {
  return Clock::now().time_since_epoch().count();
}

double seconds_between(std::int64_t start_ticks,
                       std::int64_t end_ticks) noexcept {
  return std::chrono::duration<double>(
             Clock::duration(end_ticks - start_ticks))
      .count();
}

}  // namespace

Engine::Engine(std::size_t workers, std::size_t queue_capacity,
               bool pin_workers)
    : queue_capacity_(queue_capacity), pin_workers_(pin_workers) {
  COALESCE_ASSERT(workers >= 1);
  COALESCE_ASSERT(queue_capacity >= 1);
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back(
        [this, w](std::stop_token stop) { worker_main(w, stop); });
  }
}

Engine::~Engine() {
  drain();
  {
    std::scoped_lock lock(mutex_);
    for (auto& t : threads_) t.request_stop();
  }
  cv_work_.notify_all();
  // jthread destructors join.
}

std::size_t Engine::queue_depth() const {
  std::scoped_lock lock(mutex_);
  return queued_unlocked();
}

std::size_t Engine::inflight() const {
  std::scoped_lock lock(mutex_);
  return inflight_;
}

bool Engine::enqueue(std::shared_ptr<TaskBase> task, Priority priority,
                     bool block) {
  const i64 id = task->id;
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    if (block) {
      cv_space_.wait(lock, [&] {
        return !accepting_ || queued_unlocked() < queue_capacity_;
      });
    }
    if (!accepting_) return false;
    if (queued_unlocked() >= queue_capacity_) return false;  // try_submit
    if (trace::Recorder* rec = trace::Recorder::current()) {
      task->recorder_at_enqueue = rec;
      task->enqueue_ns = rec->now_ns();
    }
    auto& queue = priority == Priority::kHigh ? high_ : normal_;
    queue.push_back(std::move(task));
    ++inflight_;
    depth = queued_unlocked();
  }
  cv_work_.notify_all();
  trace::mark(trace::EventKind::kRegionEnqueue, id,
              static_cast<i64>(depth));
  trace::count(trace::Counter::kRegionsEnqueued);
  trace::observe(trace::Hist::kRegionQueueDepth, depth);
  return true;
}

void Engine::wait_all() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [&] { return inflight_ == 0; });
}

void Engine::drain() {
  {
    std::scoped_lock lock(mutex_);
    accepting_ = false;
  }
  // Unblock submitters stuck on backpressure so they observe the close.
  cv_space_.notify_all();
  wait_all();
}

void Engine::worker_main(std::size_t w, std::stop_token stop) {
  trace::set_thread_worker(static_cast<std::uint32_t>(w));
  if (pin_workers_) pin_current_thread_to_cpu(w);
  while (true) {
    std::shared_ptr<TaskBase> task;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] {
        return stop.stop_requested() || current_ != nullptr ||
               queued_unlocked() > 0;
      });
      if (current_ == nullptr && queued_unlocked() == 0) {
        // Stop only with no work left: the destructor drains first, so
        // every accepted region still retires.
        return;
      }
      if (current_ == nullptr) {
        auto& queue = !high_.empty() ? high_ : normal_;
        current_ = std::move(queue.front());
        queue.pop_front();
      }
      task = current_;
      ++task->joiners;
    }
    cv_space_.notify_all();  // a queue slot may have freed

    // First worker in stamps the start (CAS so exactly one wins) and
    // emits kRegionStart.
    std::int64_t expected = 0;
    if (task->start_ticks.compare_exchange_strong(
            expected, now_ticks(), std::memory_order_acq_rel)) {
      trace::mark(trace::EventKind::kRegionStart, task->id);
    }

    {
      trace::ScopedSpan run(trace::EventKind::kWorkerRun,
                            trace::Hist::kWorkerBusyNs);
      task->run_worker(w);
    }

    // run_worker returning means the region has no more work to grant.
    // Detach it as the current region (so the next joiner picks up the
    // next queued one — the no-barrier handoff) and let the LAST worker
    // out retire it.
    bool last = false;
    {
      std::scoped_lock lock(mutex_);
      if (current_ == task) {
        current_ = nullptr;
        task->detached = true;
      }
      --task->joiners;
      last = task->detached && task->joiners == 0;
    }
    // No wake needed after detaching: the wait predicate is true whenever
    // any region is current or queued, so no worker is parked while work
    // exists — the next joiner hands off without a notify.

    if (last) {
      const double wall = seconds_between(
          task->start_ticks.load(std::memory_order_relaxed), now_ticks());
      const bool completed = task->ctx.first_error == nullptr &&
                             !task->ctx.stop.load(std::memory_order_relaxed);
      task->finalize(wall);
      // Retire span [enqueue, now], recorded only against the recorder
      // that saw the enqueue (it may have been uninstalled since).
      if (trace::Recorder* rec = trace::Recorder::current();
          rec != nullptr && rec == task->recorder_at_enqueue) {
        rec->record(trace::EventKind::kRegionRetire,
                    static_cast<std::uint32_t>(w), task->enqueue_ns,
                    rec->now_ns(), task->id, completed ? 1 : 0);
      }
      trace::count(trace::Counter::kRegionsRetired);
      {
        std::scoped_lock lock(mutex_);
        --inflight_;
      }
      cv_idle_.notify_all();
    }
  }
}

}  // namespace coalesce::runtime
