// Engine — asynchronous multi-region execution over the coalesced runtime.
//
// The synchronous verbs in runtime/launch.hpp are fork-join: the caller
// blocks, every worker parks when the region drains, and back-to-back
// regions pay a full wake/park cycle between them. The Engine removes that
// barrier for pipelines of many independent regions:
//
//   Engine engine(8);
//   auto a = engine.submit(n, bodyA);
//   auto b = engine.submit(space, bodyB, {.schedule = {Schedule::kGuided}});
//   auto c = engine.submit_sum(n, bodyC, {.priority = Priority::kHigh});
//   ... caller keeps working ...
//   ForStats sa = a.get();   // blocks only for a; rethrows a's exception
//
// Mechanics:
//  * submit() enqueues a region task — the same RegionContext + chunk
//    runner the synchronous path uses (runtime/executor.hpp) — into a
//    bounded two-class queue (Priority::kHigh ahead of kNormal, FIFO
//    within a class) and returns a RegionFuture immediately;
//  * a fixed crew of dedicated workers executes regions one at a time at
//    full width: each worker drains the current region's dispatcher via
//    detail::worker_pass, and the first worker to see it exhausted flips
//    the engine to the next queued region, so following workers hand off
//    WITHOUT re-parking — no fork-join barrier between regions (bench E18
//    prices exactly this against back-to-back synchronous run() calls);
//  * the last worker out of a region retires it: computes ForStats,
//    fulfills the future (value, or the region's first exception), and
//    emits kRegionRetire;
//  * backpressure: submit() blocks while `queue_capacity` regions are
//    already queued (running regions don't count); try_submit() returns
//    std::nullopt instead of blocking;
//  * per-region RunControl: each submission carries its own cancellation
//    token/deadline, observed at chunk-grant granularity, so one region
//    can be cancelled while the rest of the pipeline runs on.
//
// Differences from the synchronous path, by design:
//  * the caller is NOT a worker (unlike ThreadPool, where the calling
//    thread participates as worker 0) — submission must return;
//  * bodies and spaces are COPIED into the region task (the call returns
//    before the region runs, so borrowing caller locals would dangle);
//    data the body points at must outlive the region — hold it until the
//    future resolves;
//  * static schedules are remapped at submission: workers join a region
//    as they free up, so a partition that assumes all workers show up
//    would strand iterations. kStaticBlock becomes kChunked with
//    ceil(N/P) chunks and kStaticCyclic becomes unit self-scheduling —
//    same work, dynamically claimed. ForStats::dispatch_ops reflects the
//    remapped schedule.
//
// Thread safety: submit/try_submit/wait_all/drain may be called from any
// thread. RegionFuture is a handle to shared state; one future, one
// get(). Destroying the engine drains it first: every accepted region
// runs to retirement and every future resolves.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "index/coalesced_space.hpp"
#include "runtime/executor.hpp"
#include "runtime/launch.hpp"
#include "support/assert.hpp"
#include "support/int_math.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

namespace detail {

/// Shared slot a RegionFuture and its region task communicate through.
template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  std::optional<T> value;
  std::exception_ptr error;
  i64 region_id = 0;

  void set_value(T v) {
    {
      std::scoped_lock lock(mutex);
      value.emplace(std::move(v));
      ready = true;
    }
    cv.notify_all();
  }
  void set_error(std::exception_ptr e) {
    {
      std::scoped_lock lock(mutex);
      error = std::move(e);
      ready = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// Handle to one submitted region's eventual result. Default-constructed
/// (or returned by a closed engine's submit) it is invalid — check
/// valid(). get() blocks until the region retires, then returns the result
/// or rethrows the region's first exception; call it at most once.
template <typename T>
class RegionFuture {
 public:
  RegionFuture() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Engine-assigned region id (1-based); 0 for an invalid future.
  [[nodiscard]] i64 region_id() const noexcept {
    return state_ != nullptr ? state_->region_id : 0;
  }

  /// True once the region has retired (result or exception is set).
  [[nodiscard]] bool ready() const {
    COALESCE_ASSERT(valid());
    std::scoped_lock lock(state_->mutex);
    return state_->ready;
  }

  void wait() const {
    COALESCE_ASSERT(valid());
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready; });
  }

  /// Blocks until retirement; returns the result or rethrows the region's
  /// first exception. Consumes the value — at most one get() per future.
  [[nodiscard]] T get() {
    COALESCE_ASSERT(valid());
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready; });
    if (state_->error != nullptr) {
      std::rethrow_exception(state_->error);
    }
    COALESCE_ASSERT_MSG(state_->value.has_value(),
                        "RegionFuture::get() called twice");
    T out = std::move(*state_->value);
    state_->value.reset();
    return out;
  }

 private:
  friend class Engine;
  explicit RegionFuture(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

/// try_submit's result: the future, or std::nullopt when the queue was
/// full (or the engine closed).
template <typename T>
using TryResult = std::optional<RegionFuture<T>>;

class Engine {
 public:
  /// Spawns `workers` dedicated threads (>= 1). `queue_capacity` bounds
  /// regions that are queued but not yet running; submit() blocks (and
  /// try_submit() refuses) beyond it. With pin_workers, each worker is
  /// pinned to CPU (id mod online CPUs); best-effort, see
  /// pin_current_thread_to_cpu.
  explicit Engine(std::size_t workers, std::size_t queue_capacity = 64,
                  bool pin_workers = false);

  /// Drains — every accepted region runs to retirement, every future
  /// resolves — then joins the workers.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Number of worker threads. The calling thread is NOT one of them
  /// (contrast ThreadPool::concurrency()).
  [[nodiscard]] std::size_t concurrency() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_capacity_;
  }
  /// Regions queued but not yet picked up (racy snapshot, for monitoring).
  [[nodiscard]] std::size_t queue_depth() const;
  /// Regions accepted and not yet retired (queued + running).
  [[nodiscard]] std::size_t inflight() const;

  // ---- submission -----------------------------------------------------------

  /// Flat coalesced loop: body(j) for j in [1, total]. The body is copied.
  template <typename Body,
            std::enable_if_t<std::is_invocable_v<Body&, i64>, int> = 0>
  RegionFuture<ForStats> submit(i64 total, Body body,
                                const LaunchOptions& opts = {}) {
    COALESCE_ASSERT(total >= 0);
    return submit_region<ForStats>(
        total, detail::FlatRunner<Body>{std::move(body)}, stats_result(),
        opts, 0, "flat");
  }

  /// Collapsed (or, with opts.tile_sizes, tiled) nest over the space. The
  /// space and body are copied; nested baseline modes are synchronous-only.
  template <typename Body,
            std::enable_if_t<
                std::is_invocable_v<Body&, std::span<const i64>>, int> = 0>
  RegionFuture<ForStats> submit(index::CoalescedSpace space, Body body,
                                const LaunchOptions& opts = {}) {
    const bool tiled =
        opts.mode == NestMode::kTiled || !opts.tile_sizes.empty();
    COALESCE_ASSERT_MSG(
        tiled || opts.mode == NestMode::kCollapsed,
        "nested baseline modes are synchronous-only (use run())");
    if (!tiled) {
      const i64 total = space.total();
      return submit_region<ForStats>(
          total,
          detail::CollapsedRunner<index::CoalescedSpace, Body>{
              std::move(space), std::move(body)},
          stats_result(), opts, 0, "nest");
    }
    const auto requested = static_cast<std::uint64_t>(space.total());
    auto runner = detail::make_tiled_runner<index::CoalescedSpace, Body>(
        std::move(space), std::move(body), opts.tile_sizes);
    const i64 tiles = runner.tile_space.total();
    return submit_region<ForStats>(tiles, std::move(runner), stats_result(),
                                   opts, requested, "tile");
  }

  /// Non-blocking variants: std::nullopt when the queue is full.
  template <typename Body,
            std::enable_if_t<std::is_invocable_v<Body&, i64>, int> = 0>
  TryResult<ForStats> try_submit(i64 total, Body body,
                                 const LaunchOptions& opts = {}) {
    COALESCE_ASSERT(total >= 0);
    return try_submit_region<ForStats>(
        total, detail::FlatRunner<Body>{std::move(body)}, stats_result(),
        opts, 0, "flat");
  }

  /// Asynchronous reduction; the future carries the folded value plus the
  /// region report.
  template <typename Body, typename Combine,
            std::enable_if_t<std::is_invocable_r_v<double, Body&, i64>,
                             int> = 0>
  RegionFuture<ReduceResult> submit_reduce(i64 total, double identity,
                                           Body body, Combine combine,
                                           const LaunchOptions& opts = {}) {
    COALESCE_ASSERT(total >= 0);
    auto partials = std::make_shared<std::vector<detail::ReducePartial>>(
        concurrency(), detail::ReducePartial{identity});
    auto make_result = [partials, identity, combine](
                           const detail::RegionContext& ctx,
                           double wall_seconds) {
      ReduceResult result;
      result.value = identity;
      for (const detail::ReducePartial& p : *partials) {
        result.value = combine(result.value, p.value);
      }
      result.stats = ctx.make_stats(wall_seconds);
      return result;
    };
    return submit_region<ReduceResult>(
        total,
        detail::ReduceRunner<Body, Combine>{std::move(partials),
                                            std::move(body),
                                            std::move(combine)},
        std::move(make_result), opts, 0, "reduce");
  }

  template <typename Body,
            std::enable_if_t<std::is_invocable_r_v<double, Body&, i64>,
                             int> = 0>
  RegionFuture<ReduceResult> submit_sum(i64 total, Body body,
                                        const LaunchOptions& opts = {}) {
    return submit_reduce(total, 0.0, std::move(body),
                         [](double a, double v) { return a + v; }, opts);
  }

  // ---- generic submission (the extension point) -----------------------------

  /// Enqueues an arbitrary region: `run_chunk` is a chunk runner of the
  /// worker_pass shape (copied; must own everything it touches),
  /// `make_result(ctx, wall_seconds) -> T` runs once, on the last worker
  /// out. Used by submit_ir (runtime/ir_executor.hpp); public so other
  /// region shapes can be layered on without editing the engine.
  /// `requested_override` reports iterations in different units than the
  /// scheduled total (tiles vs points). `auto_key` names the region shape
  /// for Schedule::kAuto resolution against this engine's controller (the
  /// IR paths pass the JIT cache key; see runtime/adaptive.hpp). Returns
  /// an invalid future if the engine is closed (draining or destroyed).
  template <typename T, typename RunChunk, typename MakeResult>
  RegionFuture<T> submit_region(i64 total, RunChunk run_chunk,
                                MakeResult make_result,
                                const LaunchOptions& opts = {},
                                std::uint64_t requested_override = 0,
                                std::string_view auto_key = {}) {
    auto [task, future] = make_task<T>(total, std::move(run_chunk),
                                       std::move(make_result), opts,
                                       requested_override, auto_key);
    if (!enqueue(std::move(task), opts.priority, /*block=*/true)) {
      return {};
    }
    return future;
  }

  template <typename T, typename RunChunk, typename MakeResult>
  TryResult<T> try_submit_region(i64 total, RunChunk run_chunk,
                                 MakeResult make_result,
                                 const LaunchOptions& opts = {},
                                 std::uint64_t requested_override = 0,
                                 std::string_view auto_key = {}) {
    auto [task, future] = make_task<T>(total, std::move(run_chunk),
                                       std::move(make_result), opts,
                                       requested_override, auto_key);
    if (!enqueue(std::move(task), opts.priority, /*block=*/false)) {
      return std::nullopt;
    }
    return future;
  }

  /// The controller that resolves Schedule::kAuto submissions on this
  /// engine. Per-engine (not process-global) so long-lived engines — the
  /// service's, above all — are trained by exactly the traffic they carry.
  [[nodiscard]] AdaptiveController& adaptive_controller() noexcept {
    return adaptive_;
  }

  // ---- synchronization ------------------------------------------------------

  /// Blocks until every region accepted so far has retired.
  void wait_all();

  /// Stops accepting new work (submit returns invalid futures, try_submit
  /// refuses), then wait_all(). The engine stays closed afterwards; the
  /// destructor is a drain() + join.
  void drain();

 private:
  /// One queued region: the shared RegionContext plus the typed runner /
  /// result-maker behind two virtual calls (per region, not per chunk —
  /// the chunk loop itself is the fully inlined worker_pass).
  struct TaskBase {
    detail::RegionContext ctx;
    const i64 id;
    /// Set by the first worker to pick the region up.
    std::atomic<std::int64_t> start_ticks{0};
    /// Trace-recorder identity at enqueue, so the retire span is only
    /// recorded against the recorder that saw the enqueue (same guard as
    /// ThreadPool's kWorkerPark).
    trace::Recorder* recorder_at_enqueue = nullptr;
    std::uint64_t enqueue_ns = 0;
    /// Workers currently inside run_worker; guarded by the engine mutex.
    std::size_t joiners = 0;
    /// True once some worker saw the region exhausted and detached it as
    /// the current region; guarded by the engine mutex.
    bool detached = false;

    TaskBase(i64 total, ScheduleParams params, std::size_t workers,
             const RunControl& control, i64 region_id)
        : ctx(total, params, workers, control), id(region_id) {
      ctx.region_id = region_id;
    }
    virtual ~TaskBase() = default;
    virtual void run_worker(std::size_t w) noexcept = 0;
    /// Fulfills the future. Runs exactly once, after every worker left.
    virtual void finalize(double wall_seconds) noexcept = 0;
  };

  template <typename T, typename RunChunk, typename MakeResult>
  struct Task final : TaskBase {
    RunChunk run_chunk;
    MakeResult make_result;
    std::shared_ptr<detail::FutureState<T>> state;

    Task(i64 total, ScheduleParams params, std::size_t workers,
         const RunControl& control, i64 region_id, RunChunk run_chunk_arg,
         MakeResult make_result_arg,
         std::shared_ptr<detail::FutureState<T>> state_arg)
        : TaskBase(total, params, workers, control, region_id),
          run_chunk(std::move(run_chunk_arg)),
          make_result(std::move(make_result_arg)),
          state(std::move(state_arg)) {}

    void run_worker(std::size_t w) noexcept override {
      detail::worker_pass(ctx, run_chunk, w);
    }

    void finalize(double wall_seconds) noexcept override {
      if (ctx.first_error != nullptr) {
        state->set_error(ctx.first_error);
        return;
      }
      try {
        state->set_value(make_result(ctx, wall_seconds));
      } catch (...) {
        state->set_error(std::current_exception());
      }
    }
  };

  /// Workers join regions as they free up, so a static partition that
  /// assumes all P workers show up would strand iterations; remap to the
  /// dynamic schedule that claims the same chunks.
  [[nodiscard]] ScheduleParams remap_static(ScheduleParams params,
                                            i64 total) const {
    if (params.kind == Schedule::kStaticBlock) {
      const i64 chunk = std::max<i64>(
          1, support::ceil_div(total, static_cast<i64>(concurrency())));
      params.kind = Schedule::kChunked;
      params.chunk_size = chunk;
      return params;  // serialized/sharded preserved
    }
    if (params.kind == Schedule::kStaticCyclic) {
      params.kind = Schedule::kSelf;
      params.chunk_size = 1;
      return params;  // serialized/sharded preserved
    }
    return params;
  }

  /// The shared result-maker for plain ForStats regions.
  [[nodiscard]] static auto stats_result() {
    return [](const detail::RegionContext& ctx, double wall_seconds) {
      return ctx.make_stats(wall_seconds);
    };
  }

  template <typename T, typename RunChunk, typename MakeResult>
  std::pair<std::shared_ptr<TaskBase>, RegionFuture<T>> make_task(
      i64 total, RunChunk run_chunk, MakeResult make_result,
      const LaunchOptions& opts, std::uint64_t requested_override,
      std::string_view auto_key = {}) {
    const i64 id =
        next_region_id_.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<detail::FutureState<T>>();
    state->region_id = id;
    // kAuto resolves HERE — before the task exists — because the
    // RegionContext constructor asserts its params are dispatchable. The
    // feedback hook is attached right after construction, so the
    // finalize-time make_stats reports back to this engine's controller.
    ScheduleParams params =
        remap_static(detail::effective_schedule(opts), total);
    AdaptiveController* controller = nullptr;
    AdaptiveController::Ticket ticket;
    if (params.kind == Schedule::kAuto) {
      controller = &adaptive_;
      AdaptiveController::Resolution resolution =
          adaptive_.resolve(params, auto_key, total, concurrency());
      params = resolution.params;
      ticket = std::move(resolution.ticket);
    }
    auto task = std::make_shared<Task<T, RunChunk, MakeResult>>(
        total, params, concurrency(), opts.control, id,
        std::move(run_chunk), std::move(make_result), state);
    task->ctx.requested_override = requested_override;
    task->ctx.adaptive = controller;
    task->ctx.adaptive_ticket = std::move(ticket);
    return {std::move(task), RegionFuture<T>(std::move(state))};
  }

  /// Adds the task to its priority's queue. Blocking mode waits for queue
  /// space; both modes return false when the engine is closed.
  bool enqueue(std::shared_ptr<TaskBase> task, Priority priority,
               bool block);

  void worker_main(std::size_t w, std::stop_token stop);

  [[nodiscard]] std::size_t queued_unlocked() const noexcept {
    return high_.size() + normal_.size();
  }

  const std::size_t queue_capacity_;
  std::atomic<i64> next_region_id_{1};

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   ///< workers: region available
  std::condition_variable cv_space_;  ///< submitters: queue slot free
  std::condition_variable cv_idle_;   ///< wait_all: inflight_ hit zero
  std::deque<std::shared_ptr<TaskBase>> high_;    // guarded by mutex_
  std::deque<std::shared_ptr<TaskBase>> normal_;  // guarded by mutex_
  std::shared_ptr<TaskBase> current_;             // guarded by mutex_
  std::size_t inflight_ = 0;                      // guarded by mutex_
  bool accepting_ = true;                         // guarded by mutex_

  const bool pin_workers_;
  std::vector<std::jthread> threads_;
  AdaptiveController adaptive_;
};

}  // namespace coalesce::runtime
