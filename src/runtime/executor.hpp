// Templated region executors: the zero-type-erasure hot path, now fault-
// tolerant.
//
// The per-worker scheduling loop — pull a chunk, decode, run the body per
// iteration — is where the runtime spends its life, and an indirect call
// per iteration through std::function can dominate a small body the same
// way the 2m divisions the paper strength-reduces would. detail::drive is
// the single scheduling loop, templated on the chunk runner so the
// compiler inlines the body into it; the templated parallel_for overloads
// below instantiate it directly on the caller's callable. The
// std::function entry points in parallel_for.hpp are thin wrappers over
// the same template and remain the measurable "before" (E16 reports the
// erased-vs-inlined per-iteration gap).
//
// drive is also the runtime's single fault boundary (bench E17 prices it):
//  * cancellation / deadlines (support/cancel.hpp) are observed at chunk-
//    grant granularity: the shared dispatcher is poisoned past N, every
//    worker stops after the chunk it already owns;
//  * a body exception is captured, first-exception-wins; the siblings are
//    drained through the same poison path, the join completes normally,
//    and the winning exception is rethrown at the join point — a throwing
//    body never reaches std::terminate and the pool stays reusable;
//  * the deterministic fault harness (runtime/fault.hpp) is consulted at
//    the same choke point when compiled in.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "index/incremental.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/fault.hpp"
#include "runtime/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/cancel.hpp"
#include "trace/recorder.hpp"

namespace coalesce::trace {
class Recorder;
}  // namespace coalesce::trace

namespace coalesce::runtime {

/// Caller-side controls for one parallel region: an optional cancellation
/// token and an optional deadline. Default-constructed = run to completion
/// (the hot path then pays two branches per chunk grant and nothing else).
struct RunControl {
  support::CancellationToken token;
  support::Deadline deadline;

  [[nodiscard]] bool active() const noexcept {
    return token.valid() || deadline.is_set();
  }
};

/// Execution report (what E5/E6 print).
struct ForStats {
  std::uint64_t dispatch_ops = 0;      ///< synchronized allocation points
  std::uint64_t chunks_executed = 0;
  std::vector<std::uint64_t> iterations_per_worker;
  double wall_seconds = 0.0;
  /// Iterations the caller asked for (the coalesced total N). With
  /// cancellation or a deadline, compare against iterations_done() for
  /// partial progress.
  std::uint64_t iterations_requested = 0;
  /// True when the region stopped early because the caller's token was
  /// cancelled (or the fault harness injected a cancel).
  bool cancelled = false;
  /// True when the region stopped early because the deadline expired; the
  /// overshoot is bounded by the one chunk each worker already owned.
  bool deadline_expired = false;
  /// The recorder that collected this run's events, when tracing was
  /// enabled during the run (trace::Recorder::current() at entry); null
  /// otherwise. Borrowed, not owned — valid while that recorder lives.
  const trace::Recorder* trace = nullptr;

  /// Iterations actually executed, summed over workers. Equal to
  /// iterations_requested iff the region ran to completion.
  [[nodiscard]] std::uint64_t iterations_done() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : iterations_per_worker) sum += n;
    return sum;
  }

  /// Ran to completion: nothing stopped it early and every iteration ran.
  [[nodiscard]] bool completed() const noexcept {
    return !cancelled && !deadline_expired &&
           iterations_done() == iterations_requested;
  }

  /// max/mean of iterations_per_worker; 1.0 = perfectly balanced. Defined
  /// as 1.0 for the degenerate cases (no workers recorded, or no
  /// iterations executed at all).
  [[nodiscard]] double imbalance() const;
};

namespace detail {

/// Shared driver: runs one region in which each worker pulls chunks (from
/// the dispatcher or its static partition) and feeds them to `run_chunk`,
/// a callable of shape void(std::size_t worker, index::Chunk,
/// std::uint64_t* iters). Templated so run_chunk — and through it the loop
/// body — inlines into the scheduling loop.
///
/// Stop conditions (token, deadline, sibling failure) are polled between
/// chunks only: a worker never abandons a chunk it has started, which is
/// what bounds cancel latency to one chunk per worker and keeps the
/// per-iteration path untouched. A run_chunk exception is captured
/// (first-exception-wins), the dispatcher is poisoned so the other
/// workers drain, and the winner is rethrown HERE, after the join — the
/// pool is idle and reusable whether or not this throws.
template <typename RunChunk>
ForStats drive(ThreadPool& pool, i64 total, ScheduleParams params,
               RunChunk&& run_chunk, const RunControl& control = {}) {
  using Clock = std::chrono::steady_clock;
  const std::size_t workers = pool.worker_count();
  ForStats stats;
  stats.iterations_requested =
      total > 0 ? static_cast<std::uint64_t>(total) : 0;
  stats.iterations_per_worker.assign(workers, 0);
  std::vector<std::uint64_t> chunks(workers, 0);

  auto dispatcher_or = make_dispatcher(params, total, workers);
  COALESCE_ASSERT_MSG(dispatcher_or.ok(),
                      "invalid schedule parameters (see make_dispatcher)");
  const std::unique_ptr<Dispatcher> dispatcher =
      std::move(dispatcher_or).value();

  // Shared stop machinery. `stop` is advisory (static schedules poll it);
  // the dispatcher poison is what bounds latency on the dynamic path.
  // `first_error` is written by exactly one claimant (the error_claimed
  // exchange) and read after the pool join, which provides the
  // happens-before edge.
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> deadline_expired{false};
  std::atomic<bool> error_claimed{false};
  std::exception_ptr first_error;

  const bool check_token = control.token.valid();
  const bool check_deadline = control.deadline.is_set();

  auto request_stop = [&](trace::CancelCause cause) {
    stop.store(true, std::memory_order_relaxed);
    if (dispatcher != nullptr) dispatcher->cancel();
    trace::mark(trace::EventKind::kCancel, static_cast<i64>(cause));
    trace::count(trace::Counter::kCancels);
  };

  const auto start = Clock::now();

  pool.run_region([&](std::size_t w) {
    std::uint64_t local_iters = 0;
    std::uint64_t local_chunks = 0;
    // Returns false when the region should stop before taking more work.
    auto should_continue = [&]() -> bool {
      if (stop.load(std::memory_order_relaxed)) return false;
      if (check_token && control.token.cancelled()) {
        cancelled.store(true, std::memory_order_relaxed);
        request_stop(trace::CancelCause::kToken);
        return false;
      }
      if (check_deadline && control.deadline.expired()) {
        deadline_expired.store(true, std::memory_order_relaxed);
        request_stop(trace::CancelCause::kDeadline);
        return false;
      }
      return true;
    };
    auto traced_chunk = [&](index::Chunk chunk) {
      if constexpr (fault::kEnabled) {
        if (fault::FaultPlan* plan = fault::FaultPlan::current()) {
          const fault::FaultDecision decision =
              plan->on_chunk_grant(w, chunk);
          if (decision.stall_ns > 0) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(decision.stall_ns));
          }
          if (decision.cancel) {
            cancelled.store(true, std::memory_order_relaxed);
            request_stop(trace::CancelCause::kInjected);
            return;
          }
          if (decision.throw_at > 0) {
            // Run the prefix below the fault point, then fail exactly at
            // it — deterministic in WHICH iteration faults.
            const index::Chunk prefix{chunk.first, decision.throw_at};
            if (!prefix.empty()) {
              run_chunk(w, prefix, &local_iters);
            }
            throw fault::FaultInjected(
                "injected fault at iteration " +
                std::to_string(decision.throw_at));
          }
        }
      }
      trace::ScopedSpan span(trace::EventKind::kChunkExec, chunk.first,
                             chunk.size());
      const std::uint64_t before = local_iters;
      run_chunk(w, chunk, &local_iters);
      ++local_chunks;
      trace::count(trace::Counter::kChunksExecuted);
      trace::count(trace::Counter::kIterations, local_iters - before);
    };
    try {
      if (dispatcher != nullptr) {
        while (should_continue()) {
          const index::Chunk chunk = dispatcher->next();
          if (chunk.empty()) break;
          traced_chunk(chunk);
        }
      } else if (params.kind == Schedule::kStaticBlock) {
        const auto blocks =
            index::static_blocks(total, static_cast<i64>(workers));
        const index::Chunk mine = blocks[w];
        if (!mine.empty() && should_continue()) {
          traced_chunk(mine);
        }
      } else {  // kStaticCyclic: unit chunks w+1, w+1+P, ...
        for (i64 j = static_cast<i64>(w) + 1; j <= total;
             j += static_cast<i64>(workers)) {
          if (!should_continue()) break;
          traced_chunk(index::Chunk{j, j + 1});
        }
      }
    } catch (...) {
      // First exception wins; the rest of the pool drains via the poison
      // path and the winner is rethrown after the join below.
      if (!error_claimed.exchange(true, std::memory_order_acq_rel)) {
        first_error = std::current_exception();
      }
      request_stop(trace::CancelCause::kException);
    }
    stats.iterations_per_worker[w] = local_iters;
    chunks[w] = local_chunks;
  });

  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (auto c : chunks) stats.chunks_executed += c;
  stats.dispatch_ops = dispatcher != nullptr ? dispatcher->dispatch_ops() : 0;
  stats.cancelled = cancelled.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired.load(std::memory_order_relaxed);
  stats.trace = trace::Recorder::current();
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
  return stats;
}

}  // namespace detail

/// Runs `body(j)` for every j in [1, total] on the pool, with the body
/// inlined into the scheduling loop (no type erasure anywhere on the hot
/// path). Lambdas and function objects land here by overload resolution;
/// an exact std::function argument still takes the erased entry point in
/// parallel_for.hpp.
template <typename Body,
          std::enable_if_t<std::is_invocable_v<Body&, i64>, int> = 0>
ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      Body&& body, const RunControl& control = {}) {
  COALESCE_ASSERT(total >= 0);
  return detail::drive(
      pool, total, params,
      [&body](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
        for (i64 j = chunk.first; j < chunk.last; ++j) {
          body(j);
          ++*iters;
        }
      },
      control);
}

/// The coalesced nest executor, body inlined: one dispatcher over the
/// flattened space, strength-reduced index recovery per chunk.
template <typename Body,
          std::enable_if_t<
              std::is_invocable_v<Body&, std::span<const i64>>, int> = 0>
ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params, Body&& body,
                                const RunControl& control = {}) {
  return detail::drive(
      pool, space.total(), params,
      [&body, &space](std::size_t, index::Chunk chunk,
                      std::uint64_t* iters) {
        // One full decode per chunk, odometer within: the strength-reduced
        // recovery (index/incremental.hpp).
        const std::uint64_t t0 = trace::span_begin();
        index::IncrementalDecoder decoder(space, chunk.first);
        trace::span_end(trace::EventKind::kIndexRecovery, t0, chunk.first);
        trace::count(trace::Counter::kRecoveryDecodes);
        trace::count(trace::Counter::kRecoverySteps,
                     static_cast<std::uint64_t>(chunk.size() - 1));
        while (true) {
          body(decoder.original());
          ++*iters;
          if (decoder.position() + 1 >= chunk.last) break;
          decoder.advance();
        }
      },
      control);
}

}  // namespace coalesce::runtime
