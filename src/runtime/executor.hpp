// Templated region executors: the zero-type-erasure hot path, shared by
// the synchronous fork-join pool and the asynchronous region engine.
//
// The per-worker scheduling loop — pull a chunk, decode, run the body per
// iteration — is where the runtime spends its life, and an indirect call
// per iteration through std::function can dominate a small body the same
// way the 2m divisions the paper strength-reduces would. The loop is split
// into two pieces so every execution mode shares one implementation:
//
//  * detail::RegionContext — the per-region shared state: the dispatcher,
//    the stop/cancel/error machinery, and the per-worker tallies;
//  * detail::worker_pass — ONE worker's scheduling pass over a context,
//    templated on the chunk runner so the compiler inlines the body into
//    the loop.
//
// detail::drive composes them into the classic synchronous shape (fork the
// pool, every worker runs one pass, join, rethrow); runtime/engine.hpp
// composes the same two pieces into queued multi-region execution where
// workers hand off from one region's context to the next without a
// fork-join barrier in between.
//
// worker_pass is also the runtime's single fault boundary (bench E17
// prices it):
//  * cancellation / deadlines (support/cancel.hpp) are observed at chunk-
//    grant granularity: the shared dispatcher is poisoned past N, every
//    worker stops after the chunk it already owns;
//  * a body exception is captured, first-exception-wins; the siblings are
//    drained through the same poison path, and the winning exception is
//    rethrown once at the join point (sync) or stored into the region's
//    future (async) — a throwing body never reaches std::terminate and
//    the pool/engine stays reusable;
//  * the deterministic fault harness (runtime/fault.hpp) is consulted at
//    the same choke point when compiled in; fault plans can be scoped to
//    one region id (FaultPlan::only_region).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "index/incremental.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/fault.hpp"
#include "runtime/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/cancel.hpp"
#include "support/int_math.hpp"
#include "trace/recorder.hpp"

namespace coalesce::trace {
class Recorder;
}  // namespace coalesce::trace

namespace coalesce::runtime {

/// Caller-side controls for one parallel region: an optional cancellation
/// token and an optional deadline. Default-constructed = run to completion
/// (the hot path then pays two branches per chunk grant and nothing else).
struct RunControl {
  support::CancellationToken token;
  support::Deadline deadline;

  [[nodiscard]] bool active() const noexcept {
    return token.valid() || deadline.is_set();
  }
};

/// Execution report (what E5/E6 print).
struct ForStats {
  std::uint64_t dispatch_ops = 0;      ///< synchronized allocation points
  std::uint64_t chunks_executed = 0;
  /// Inter-cluster range steals (sharded dispatcher only; 0 otherwise).
  std::uint64_t steals = 0;
  std::vector<std::uint64_t> iterations_per_worker;
  double wall_seconds = 0.0;
  /// Iterations the caller asked for (the coalesced total N). With
  /// cancellation or a deadline, compare against iterations_done() for
  /// partial progress.
  std::uint64_t iterations_requested = 0;
  /// True when the region stopped early because the caller's token was
  /// cancelled (or the fault harness injected a cancel).
  bool cancelled = false;
  /// True when the region stopped early because the deadline expired; the
  /// overshoot is bounded by the one chunk each worker already owned.
  bool deadline_expired = false;
  /// The recorder that collected this run's events, when tracing was
  /// enabled during the run (trace::Recorder::current() at entry); null
  /// otherwise. Borrowed, not owned — valid while that recorder lives.
  const trace::Recorder* trace = nullptr;
  /// Engine-assigned region id (1-based) for asynchronous submissions;
  /// 0 for synchronous fork-join execution.
  std::uint64_t region_id = 0;

  /// Iterations actually executed, summed over workers. Equal to
  /// iterations_requested iff the region ran to completion.
  [[nodiscard]] std::uint64_t iterations_done() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : iterations_per_worker) sum += n;
    return sum;
  }

  /// Ran to completion: nothing stopped it early and every iteration ran.
  [[nodiscard]] bool completed() const noexcept {
    return !cancelled && !deadline_expired &&
           iterations_done() == iterations_requested;
  }

  /// max/mean of iterations_per_worker; 1.0 = perfectly balanced. Defined
  /// as 1.0 for the degenerate cases (no workers recorded, or no
  /// iterations executed at all).
  [[nodiscard]] double imbalance() const;
};

namespace detail {

/// Shared state of one in-flight region: the dispatcher, the stop/error
/// machinery, and the per-worker tallies. Built once at region entry
/// (synchronous call or engine submission); workers touch it only through
/// worker_pass. Not movable — the engine heap-allocates it inside the
/// region task, the sync driver keeps it on the stack.
struct RegionContext {
  const i64 total;
  const ScheduleParams params;
  const std::size_t workers;
  const RunControl control;
  const bool check_token;
  const bool check_deadline;
  /// Engine-assigned region id (1-based); 0 = synchronous region. Read by
  /// the fault harness to scope plans to one region.
  i64 region_id = 0;
  /// When nonzero, overrides iterations_requested in the final stats (the
  /// tiled/nested shapes schedule tiles or outer iterations but report
  /// progress in points).
  std::uint64_t requested_override = 0;

  std::unique_ptr<Dispatcher> dispatcher;  ///< null for static schedules

  // Shared stop machinery. `stop` is advisory (static schedules poll it);
  // the dispatcher poison is what bounds latency on the dynamic path.
  // `first_error` is written by exactly one claimant (the error_claimed
  // exchange) and read after every worker left the region — the pool join
  // or the engine's last-worker-out retirement provides the
  // happens-before edge.
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> deadline_expired{false};
  std::atomic<bool> error_claimed{false};
  std::exception_ptr first_error;

  std::vector<std::uint64_t> iterations_per_worker;
  std::vector<std::uint64_t> chunks_per_worker;

  /// Adaptive feedback hook. When the launch boundary resolved a kAuto
  /// schedule, it sets these AFTER construction (the constructor asserts
  /// the already-resolved params are dispatchable) and make_stats — the
  /// single per-region report point on every path — feeds the outcome
  /// back under the ticket.
  AdaptiveController* adaptive = nullptr;
  AdaptiveController::Ticket adaptive_ticket;

  RegionContext(i64 total_arg, ScheduleParams params_arg,
                std::size_t workers_arg, const RunControl& control_arg)
      : total(total_arg),
        params(params_arg),
        workers(workers_arg),
        control(control_arg),
        check_token(control_arg.token.valid()),
        check_deadline(control_arg.deadline.is_set()) {
    auto dispatcher_or = make_dispatcher(params, total, workers);
    COALESCE_ASSERT_MSG(dispatcher_or.ok(),
                        "invalid schedule parameters (see make_dispatcher)");
    dispatcher = std::move(dispatcher_or).value();
    iterations_per_worker.assign(workers, 0);
    chunks_per_worker.assign(workers, 0);
  }

  RegionContext(const RegionContext&) = delete;
  RegionContext& operator=(const RegionContext&) = delete;

  void request_stop(trace::CancelCause cause) noexcept {
    stop.store(true, std::memory_order_relaxed);
    if (dispatcher != nullptr) dispatcher->cancel();
    trace::mark(trace::EventKind::kCancel, static_cast<i64>(cause));
    trace::count(trace::Counter::kCancels);
  }

  /// Assembles the final report. Call only after every worker has left the
  /// region (the caller owns that ordering); does not rethrow first_error.
  [[nodiscard]] ForStats make_stats(double wall_seconds) const {
    ForStats stats;
    stats.iterations_requested =
        requested_override != 0
            ? requested_override
            : (total > 0 ? static_cast<std::uint64_t>(total) : 0);
    stats.iterations_per_worker = iterations_per_worker;
    stats.wall_seconds = wall_seconds;
    for (const std::uint64_t c : chunks_per_worker) {
      stats.chunks_executed += c;
    }
    stats.dispatch_ops =
        dispatcher != nullptr ? dispatcher->dispatch_ops() : 0;
    stats.steals = dispatcher != nullptr ? dispatcher->steals() : 0;
    stats.cancelled = cancelled.load(std::memory_order_relaxed);
    stats.deadline_expired = deadline_expired.load(std::memory_order_relaxed);
    stats.trace = trace::Recorder::current();
    stats.region_id = static_cast<std::uint64_t>(region_id);
    if (adaptive != nullptr && adaptive_ticket.active()) {
      adaptive->report(adaptive_ticket, stats);
    }
    return stats;
  }
};

/// One worker's scheduling pass over a region: pull chunks (from the
/// dispatcher or the static partition), feed them to `run_chunk` — a
/// callable of shape void(std::size_t worker, index::Chunk, std::uint64_t*
/// iters) — until the region is exhausted or stopped. Templated so
/// run_chunk, and through it the loop body, inlines into the loop.
///
/// Stop conditions (token, deadline, sibling failure) are polled between
/// chunks only: a worker never abandons a chunk it has started, which is
/// what bounds cancel latency to one chunk per worker and keeps the
/// per-iteration path untouched. A run_chunk exception is captured here
/// (first-exception-wins) and the dispatcher poisoned so the siblings
/// drain; no exception ever escapes this function, so it is safe to call
/// from detached engine workers as well as pool workers.
template <typename RunChunk>
void worker_pass(RegionContext& ctx, RunChunk&& run_chunk,
                 std::size_t w) noexcept {
  std::uint64_t local_iters = 0;
  std::uint64_t local_chunks = 0;
  // Returns false when the region should stop before taking more work.
  auto should_continue = [&]() -> bool {
    if (ctx.stop.load(std::memory_order_relaxed)) return false;
    if (ctx.check_token && ctx.control.token.cancelled()) {
      ctx.cancelled.store(true, std::memory_order_relaxed);
      ctx.request_stop(trace::CancelCause::kToken);
      return false;
    }
    if (ctx.check_deadline && ctx.control.deadline.expired()) {
      ctx.deadline_expired.store(true, std::memory_order_relaxed);
      ctx.request_stop(trace::CancelCause::kDeadline);
      return false;
    }
    return true;
  };
  auto traced_chunk = [&](index::Chunk chunk) {
    if constexpr (fault::kEnabled) {
      if (fault::FaultPlan* plan = fault::FaultPlan::current()) {
        const fault::FaultDecision decision =
            plan->on_chunk_grant(w, chunk, ctx.region_id);
        if (decision.stall_ns > 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(decision.stall_ns));
        }
        if (decision.cancel) {
          ctx.cancelled.store(true, std::memory_order_relaxed);
          ctx.request_stop(trace::CancelCause::kInjected);
          return;
        }
        if (decision.throw_at > 0) {
          // Run the prefix below the fault point, then fail exactly at
          // it — deterministic in WHICH iteration faults.
          const index::Chunk prefix{chunk.first, decision.throw_at};
          if (!prefix.empty()) {
            run_chunk(w, prefix, &local_iters);
          }
          throw fault::FaultInjected("injected fault at iteration " +
                                     std::to_string(decision.throw_at));
        }
      }
    }
    trace::ScopedSpan span(trace::EventKind::kChunkExec, chunk.first,
                           chunk.size());
    const std::uint64_t before = local_iters;
    run_chunk(w, chunk, &local_iters);
    ++local_chunks;
    trace::count(trace::Counter::kChunksExecuted);
    trace::count(trace::Counter::kIterations, local_iters - before);
  };
  try {
    if (ctx.dispatcher != nullptr) {
      while (should_continue()) {
        const index::Chunk chunk = ctx.dispatcher->next();
        if (chunk.empty()) break;
        traced_chunk(chunk);
      }
    } else if (ctx.params.kind == Schedule::kStaticBlock) {
      const auto blocks =
          index::static_blocks(ctx.total, static_cast<i64>(ctx.workers));
      const index::Chunk mine = blocks[w];
      if (!mine.empty() && should_continue()) {
        traced_chunk(mine);
      }
    } else {  // kStaticCyclic: unit chunks w+1, w+1+P, ...
      for (i64 j = static_cast<i64>(w) + 1; j <= ctx.total;
           j += static_cast<i64>(ctx.workers)) {
        if (!should_continue()) break;
        traced_chunk(index::Chunk{j, j + 1});
      }
    }
  } catch (...) {
    // First exception wins; the rest of the workers drain via the poison
    // path and the winner is rethrown at the sync join point or stored
    // into the region's future.
    if (!ctx.error_claimed.exchange(true, std::memory_order_acq_rel)) {
      ctx.first_error = std::current_exception();
    }
    ctx.request_stop(trace::CancelCause::kException);
  }
  ctx.iterations_per_worker[w] += local_iters;
  ctx.chunks_per_worker[w] += local_chunks;
}

/// Synchronous driver: fork the pool, every worker (and the caller, as
/// worker 0) runs one worker_pass over a fresh context, join, rethrow the
/// first captured exception. This is the one-region special case of the
/// engine's multi-region worker loop (runtime/engine.hpp).
///
/// `auto_key` names the region shape for kAuto resolution (the sync paths
/// resolve against the process-global default_controller()); ignored for
/// concrete schedules.
template <typename RunChunk>
ForStats drive(ThreadPool& pool, i64 total, ScheduleParams params,
               RunChunk&& run_chunk, const RunControl& control = {},
               std::string_view auto_key = {}) {
  using Clock = std::chrono::steady_clock;
  AdaptiveController* controller = nullptr;
  AdaptiveController::Ticket ticket;
  if (params.kind == Schedule::kAuto) {
    controller = &default_controller();
    AdaptiveController::Resolution resolution =
        controller->resolve(params, auto_key, total, pool.concurrency());
    params = resolution.params;
    ticket = std::move(resolution.ticket);
  }
  RegionContext ctx(total, params, pool.concurrency(), control);
  ctx.adaptive = controller;
  ctx.adaptive_ticket = std::move(ticket);
  const auto start = Clock::now();
  pool.run_region(
      [&](std::size_t w) { worker_pass(ctx, run_chunk, w); });
  ForStats stats = ctx.make_stats(
      std::chrono::duration<double>(Clock::now() - start).count());
  if (ctx.first_error != nullptr) {
    std::rethrow_exception(ctx.first_error);
  }
  return stats;
}

// ---- chunk runners ----------------------------------------------------------
//
// The per-chunk execution bodies, factored out so the synchronous entry
// points (runtime/launch.hpp) and the asynchronous engine submissions
// (runtime/engine.hpp) instantiate the same code. The Space/Body template
// parameters are either references (sync: the caller's objects are
// borrowed for the duration of the blocking call) or values (async: the
// region task must own everything it touches after submit returns).

/// Flat loop: body(j) for every coalesced j in the chunk.
template <typename Body>
struct FlatRunner {
  Body body;

  void operator()(std::size_t, index::Chunk chunk, std::uint64_t* iters) {
    for (i64 j = chunk.first; j < chunk.last; ++j) {
      body(j);
      ++*iters;
    }
  }
};

/// Coalesced nest: one full decode per chunk, strength-reduced odometer
/// within (index/incremental.hpp).
template <typename Space, typename Body>
struct CollapsedRunner {
  Space space;
  Body body;

  void operator()(std::size_t, index::Chunk chunk, std::uint64_t* iters) {
    const index::CoalescedSpace& s = space;
    const std::uint64_t t0 = trace::span_begin();
    index::IncrementalDecoder decoder(s, chunk.first);
    trace::span_end(trace::EventKind::kIndexRecovery, t0, chunk.first);
    trace::count(trace::Counter::kRecoveryDecodes);
    trace::count(trace::Counter::kRecoverySteps,
                 static_cast<std::uint64_t>(chunk.size() - 1));
    while (true) {
      body(decoder.original());
      ++*iters;
      if (decoder.position() + 1 >= chunk.last) break;
      decoder.advance();
    }
  }
};

/// Tiled coalesced sweep: the scheduled index space is the tile grid; each
/// granted chunk is a run of tiles, swept box-by-box in row-major order
/// over ORIGINAL index values (honoring per-level steps).
template <typename Space, typename Body>
struct TiledRunner {
  Space space;                     ///< the point space
  index::CoalescedSpace tile_space;  ///< the tile grid (what is scheduled)
  std::vector<i64> tile_sizes;
  Body body;

  void operator()(std::size_t, index::Chunk chunk, std::uint64_t* iters) {
    const index::CoalescedSpace& s = space;
    const std::size_t depth = s.depth();
    std::vector<i64> tile(depth);
    std::vector<i64> point(depth);
    for (i64 t = chunk.first; t < chunk.last; ++t) {
      const std::uint64_t t0 = trace::span_begin();
      tile_space.decode_paper(t, tile);
      trace::span_end(trace::EventKind::kIndexRecovery, t0, t);
      trace::count(trace::Counter::kRecoveryDecodes);
      // Sweep the tile's box in row-major order over ORIGINAL values.
      std::vector<i64> lo(depth), hi(depth);
      for (std::size_t k = 0; k < depth; ++k) {
        const i64 first_norm = (tile[k] - 1) * tile_sizes[k] + 1;
        const i64 last_norm =
            std::min(first_norm + tile_sizes[k] - 1, s.extent(k));
        lo[k] = s.original_value(k, first_norm);
        hi[k] = s.original_value(k, last_norm);
        point[k] = lo[k];
      }
      bool tile_done = false;
      while (!tile_done) {
        body(point);
        ++*iters;
        // Odometer over the tile box, honoring per-level steps.
        bool advanced = false;
        for (std::size_t k = depth; k-- > 0;) {
          const i64 step = s.level(k).step;
          if (point[k] + step <= hi[k]) {
            point[k] += step;
            advanced = true;
            break;
          }
          point[k] = lo[k];
        }
        tile_done = !advanced;
      }
    }
  }
};

/// One accumulator per worker, cache-line padded so workers never share.
struct alignas(64) ReducePartial {
  double value = 0.0;
};

/// Flat reduction: each granted chunk folds into its worker's padded
/// partial; the partials are combined in worker order after the region
/// retires. The partials vector is shared (not owned) so the finalizer —
/// which runs after the last worker leaves — can read it.
template <typename Body, typename Combine>
struct ReduceRunner {
  std::shared_ptr<std::vector<ReducePartial>> partials;
  Body body;
  Combine combine;

  void operator()(std::size_t w, index::Chunk chunk, std::uint64_t* iters) {
    double acc = (*partials)[w].value;
    for (i64 j = chunk.first; j < chunk.last; ++j) {
      acc = combine(acc, body(j));
      ++*iters;
    }
    (*partials)[w].value = acc;
  }
};

}  // namespace detail

}  // namespace coalesce::runtime
