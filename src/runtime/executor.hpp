// Templated region executors: the zero-type-erasure hot path.
//
// The per-worker scheduling loop — pull a chunk, decode, run the body per
// iteration — is where the runtime spends its life, and an indirect call
// per iteration through std::function can dominate a small body the same
// way the 2m divisions the paper strength-reduces would. detail::drive is
// the single scheduling loop, templated on the chunk runner so the
// compiler inlines the body into it; the templated parallel_for overloads
// below instantiate it directly on the caller's callable. The
// std::function entry points in parallel_for.hpp are thin wrappers over
// the same template and remain the measurable "before" (E16 reports the
// erased-vs-inlined per-iteration gap).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "index/incremental.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/thread_pool.hpp"
#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::trace {
class Recorder;
}  // namespace coalesce::trace

namespace coalesce::runtime {

/// Execution report (what E5/E6 print).
struct ForStats {
  std::uint64_t dispatch_ops = 0;      ///< synchronized allocation points
  std::uint64_t chunks_executed = 0;
  std::vector<std::uint64_t> iterations_per_worker;
  double wall_seconds = 0.0;
  /// The recorder that collected this run's events, when tracing was
  /// enabled during the run (trace::Recorder::current() at entry); null
  /// otherwise. Borrowed, not owned — valid while that recorder lives.
  const trace::Recorder* trace = nullptr;

  /// max/mean of iterations_per_worker; 1.0 = perfectly balanced. Defined
  /// as 1.0 for the degenerate cases (no workers recorded, or no
  /// iterations executed at all).
  [[nodiscard]] double imbalance() const;
};

namespace detail {

/// Shared driver: runs one region in which each worker pulls chunks (from
/// the dispatcher or its static partition) and feeds them to `run_chunk`,
/// a callable of shape void(index::Chunk, std::uint64_t* iters). Templated
/// so run_chunk — and through it the loop body — inlines into the
/// scheduling loop.
template <typename RunChunk>
ForStats drive(ThreadPool& pool, i64 total, ScheduleParams params,
               RunChunk&& run_chunk) {
  using Clock = std::chrono::steady_clock;
  const std::size_t workers = pool.worker_count();
  ForStats stats;
  stats.iterations_per_worker.assign(workers, 0);
  std::vector<std::uint64_t> chunks(workers, 0);

  auto dispatcher_or = make_dispatcher(params, total, workers);
  COALESCE_ASSERT_MSG(dispatcher_or.ok(),
                      "invalid schedule parameters (see make_dispatcher)");
  const std::unique_ptr<Dispatcher> dispatcher =
      std::move(dispatcher_or).value();
  const auto start = Clock::now();

  pool.run_region([&](std::size_t w) {
    std::uint64_t local_iters = 0;
    std::uint64_t local_chunks = 0;
    auto traced_chunk = [&](index::Chunk chunk) {
      trace::ScopedSpan span(trace::EventKind::kChunkExec, chunk.first,
                             chunk.size());
      const std::uint64_t before = local_iters;
      run_chunk(chunk, &local_iters);
      ++local_chunks;
      trace::count(trace::Counter::kChunksExecuted);
      trace::count(trace::Counter::kIterations, local_iters - before);
    };
    if (dispatcher != nullptr) {
      while (true) {
        const index::Chunk chunk = dispatcher->next();
        if (chunk.empty()) break;
        traced_chunk(chunk);
      }
    } else if (params.kind == Schedule::kStaticBlock) {
      const auto blocks =
          index::static_blocks(total, static_cast<i64>(workers));
      const index::Chunk mine = blocks[w];
      if (!mine.empty()) {
        traced_chunk(mine);
      }
    } else {  // kStaticCyclic: unit chunks w+1, w+1+P, ...
      for (i64 j = static_cast<i64>(w) + 1; j <= total;
           j += static_cast<i64>(workers)) {
        traced_chunk(index::Chunk{j, j + 1});
      }
    }
    stats.iterations_per_worker[w] = local_iters;
    chunks[w] = local_chunks;
  });

  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (auto c : chunks) stats.chunks_executed += c;
  stats.dispatch_ops = dispatcher != nullptr ? dispatcher->dispatch_ops() : 0;
  stats.trace = trace::Recorder::current();
  return stats;
}

}  // namespace detail

/// Runs `body(j)` for every j in [1, total] on the pool, with the body
/// inlined into the scheduling loop (no type erasure anywhere on the hot
/// path). Lambdas and function objects land here by overload resolution;
/// an exact std::function argument still takes the erased entry point in
/// parallel_for.hpp.
template <typename Body,
          std::enable_if_t<std::is_invocable_v<Body&, i64>, int> = 0>
ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      Body&& body) {
  COALESCE_ASSERT(total >= 0);
  return detail::drive(pool, total, params,
                       [&body](index::Chunk chunk, std::uint64_t* iters) {
                         for (i64 j = chunk.first; j < chunk.last; ++j) {
                           body(j);
                           ++*iters;
                         }
                       });
}

/// The coalesced nest executor, body inlined: one dispatcher over the
/// flattened space, strength-reduced index recovery per chunk.
template <typename Body,
          std::enable_if_t<
              std::is_invocable_v<Body&, std::span<const i64>>, int> = 0>
ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params, Body&& body) {
  return detail::drive(
      pool, space.total(), params,
      [&body, &space](index::Chunk chunk, std::uint64_t* iters) {
        // One full decode per chunk, odometer within: the strength-reduced
        // recovery (index/incremental.hpp).
        const std::uint64_t t0 = trace::span_begin();
        index::IncrementalDecoder decoder(space, chunk.first);
        trace::span_end(trace::EventKind::kIndexRecovery, t0, chunk.first);
        trace::count(trace::Counter::kRecoveryDecodes);
        trace::count(trace::Counter::kRecoverySteps,
                     static_cast<std::uint64_t>(chunk.size() - 1));
        while (true) {
          body(decoder.original());
          ++*iters;
          if (decoder.position() + 1 >= chunk.last) break;
          decoder.advance();
        }
      });
}

}  // namespace coalesce::runtime
