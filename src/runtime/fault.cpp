#include "runtime/fault.hpp"

#if !defined(COALESCE_FAULTS_DISABLED)

#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime::fault {

std::atomic<FaultPlan*> FaultPlan::current_{nullptr};

namespace {

/// splitmix64: the plan generator must not depend on support::Rng's
/// stream layout, so a failing fuzz seed stays a stable repro even if the
/// general-purpose RNG evolves.
std::uint64_t mix(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void trace_fired(FaultKind kind, i64 arg) noexcept {
  trace::mark(trace::EventKind::kFaultInject, static_cast<i64>(kind), arg);
  trace::count(trace::Counter::kFaultsInjected);
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlan& other) noexcept
    : throw_at_iteration(other.throw_at_iteration),
      cancel_at_chunk(other.cancel_at_chunk),
      stall_worker(other.stall_worker),
      stall_ns(other.stall_ns),
      only_region(other.only_region) {}

FaultPlan& FaultPlan::operator=(const FaultPlan& other) noexcept {
  throw_at_iteration = other.throw_at_iteration;
  cancel_at_chunk = other.cancel_at_chunk;
  stall_worker = other.stall_worker;
  stall_ns = other.stall_ns;
  only_region = other.only_region;
  reset();
  return *this;
}

FaultPlan* FaultPlan::current() noexcept {
  return current_.load(std::memory_order_relaxed);
}

void FaultPlan::install() noexcept {
  FaultPlan* expected = nullptr;
  const bool installed = current_.compare_exchange_strong(
      expected, this, std::memory_order_release);
  COALESCE_ASSERT_MSG(installed || expected == this,
                      "another fault::FaultPlan is already installed");
}

void FaultPlan::uninstall() noexcept {
  FaultPlan* expected = this;
  current_.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_release);
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed, i64 total,
                               std::size_t workers) {
  FaultPlan plan;
  std::uint64_t state = seed;
  if (total <= 0) return plan;  // nothing to fault
  switch (mix(state) % 3) {
    case 0:
      plan.throw_at_iteration =
          1 + static_cast<i64>(mix(state) % static_cast<std::uint64_t>(total));
      break;
    case 1:
      plan.stall_worker =
          static_cast<i64>(mix(state) % static_cast<std::uint64_t>(workers));
      plan.stall_ns = 1'000'000 +
                      static_cast<i64>(mix(state) % 4'000'000ull);  // 1..5 ms
      break;
    default:
      // Chunk ordinals start at 1; any loop grants at least one chunk, and
      // small ordinals are where cancellation races live.
      plan.cancel_at_chunk = 1 + static_cast<i64>(mix(state) % 8);
      break;
  }
  return plan;
}

FaultDecision FaultPlan::on_chunk_grant_armed(std::size_t worker,
                                              index::Chunk chunk) noexcept {
  FaultDecision decision;
  const std::uint64_t ordinal =
      chunks_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (cancel_at_chunk > 0 &&
      ordinal >= static_cast<std::uint64_t>(cancel_at_chunk) &&
      !cancelled_.exchange(true, std::memory_order_relaxed)) {
    decision.cancel = true;
    fired_.fetch_add(1, std::memory_order_relaxed);
    trace_fired(FaultKind::kCancel, static_cast<i64>(ordinal));
  }

  if (stall_worker >= 0 && static_cast<i64>(worker) == stall_worker &&
      stall_ns > 0 && !stalled_.exchange(true, std::memory_order_relaxed)) {
    decision.stall_ns = stall_ns;
    fired_.fetch_add(1, std::memory_order_relaxed);
    trace_fired(FaultKind::kStall, stall_worker);
  }

  if (throw_at_iteration >= chunk.first && throw_at_iteration < chunk.last &&
      !threw_.exchange(true, std::memory_order_relaxed)) {
    decision.throw_at = throw_at_iteration;
    fired_.fetch_add(1, std::memory_order_relaxed);
    trace_fired(FaultKind::kThrow, throw_at_iteration);
  }
  return decision;
}

void FaultPlan::reset() noexcept {
  chunks_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  threw_.store(false, std::memory_order_relaxed);
  stalled_.store(false, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
}

}  // namespace coalesce::runtime::fault

#endif  // !COALESCE_FAULTS_DISABLED
