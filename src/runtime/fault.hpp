// Deterministic fault injection for the coalesced runtime.
//
// Every interesting runtime failure mode — a body that throws, a worker
// that stalls, a caller that cancels mid-flight — is reachable through ONE
// choke point: the chunk grant. A FaultPlan installed process-wide is
// consulted by the scheduling driver once per granted chunk and can order
// three faults, each pinned to a deterministic coordinate:
//
//  * throw-at-iteration-k — the chunk containing coalesced index k runs
//    its prefix [first, k) normally, then throws FaultInjected from the
//    worker that owns the chunk (which worker that is may vary run to run;
//    WHICH iteration faults never does);
//  * stall-worker-w — the first chunk worker w is granted is preceded by a
//    sleep, simulating a straggler or a descheduled thread;
//  * cancel-at-chunk-c — the c-th chunk grant (a global, atomically
//    numbered ordinal) triggers the runtime's cancel path, exactly as if
//    the caller's CancellationToken had fired at that grant.
//
// The harness mirrors the trace flag: -DCOALESCE_ENABLE_FAULTS=OFF defines
// COALESCE_FAULTS_DISABLED and compiles every hook out; when ON (the
// default) an uninstalled plan costs one relaxed load per chunk grant.
// Fired faults are recorded as trace events (EventKind::kFaultInject).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "index/chunk.hpp"
#include "support/int_math.hpp"

namespace coalesce::runtime::fault {

using support::i64;

/// The exception an injected throw raises inside a worker body. Public so
/// tests can catch it specifically at the join point.
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Fault kinds, recorded as kFaultInject's arg0.
enum class FaultKind : std::uint8_t {
  kThrow = 1,
  kStall = 2,
  kCancel = 3,
};

/// What the driver must do with the chunk it was just granted.
struct FaultDecision {
  i64 throw_at = 0;    ///< > 0: run [chunk.first, throw_at) then throw
  i64 stall_ns = 0;    ///< > 0: sleep this long before running the chunk
  bool cancel = false; ///< trigger the cancel path before running the chunk
};

#if defined(COALESCE_FAULTS_DISABLED)

inline constexpr bool kEnabled = false;

/// Stub: never installed, decisions never consulted. The driver guards
/// every use with `if constexpr (fault::kEnabled)`, so this compiles out.
class FaultPlan {
 public:
  [[nodiscard]] static constexpr FaultPlan* current() noexcept {
    return nullptr;
  }
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t, i64,
                                           std::size_t) noexcept {
    return {};
  }
  void install() noexcept {}
  void uninstall() noexcept {}
  void reset() noexcept {}
  [[nodiscard]] FaultDecision on_chunk_grant(std::size_t, index::Chunk,
                                             i64 /*region*/ = 0) noexcept {
    return {};
  }
  [[nodiscard]] std::uint64_t chunks_seen() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t faults_fired() const noexcept { return 0; }
  [[nodiscard]] bool armed() const noexcept { return false; }

  i64 throw_at_iteration = 0;
  i64 cancel_at_chunk = 0;
  i64 stall_worker = -1;
  i64 stall_ns = 0;
  i64 only_region = -1;
};

#else

inline constexpr bool kEnabled = true;

/// A seeded, deterministic plan of runtime faults. Configure the public
/// fields (0 / -1 disables each fault), install(), run the region, read
/// the fired counters, uninstall(). One plan may arm all three faults at
/// once; each fires at most once per plan (reset() re-arms).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Copying transfers configuration only: the copy's counters start at
  /// zero and the copy is not installed (the atomics are per-instance).
  FaultPlan(const FaultPlan& other) noexcept;
  FaultPlan& operator=(const FaultPlan& other) noexcept;

  /// Derives a random single-fault plan from `seed` over a loop of `total`
  /// iterations on `workers` workers — the fuzz harness's generator. The
  /// mapping is pure (splitmix64 over the seed), so a failing seed is a
  /// complete repro.
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed, i64 total,
                                           std::size_t workers);

  // ---- installation (mirrors trace::Recorder) -------------------------------

  [[nodiscard]] static FaultPlan* current() noexcept;
  /// Makes this plan the process-wide fault source; only one at a time.
  void install() noexcept;
  void uninstall() noexcept;

  // ---- driver hook ----------------------------------------------------------

  /// Called by the scheduling driver once per granted chunk. Numbers the
  /// grant globally, fires any armed fault whose coordinate matches, and
  /// returns what the driver must do. Thread-safe; each fault fires once.
  /// An unarmed plan returns immediately — no shared-counter traffic — so
  /// installing an empty plan costs read-only config loads per grant (E17
  /// prices this; chunks_seen() stays 0 in that case).
  ///
  /// `region` is the engine-assigned region id (0 for synchronous
  /// regions). With only_region set, grants from other regions pass
  /// through untouched — and are not numbered, so cancel_at_chunk
  /// ordinals count the target region's grants only.
  [[nodiscard]] FaultDecision on_chunk_grant(std::size_t worker,
                                             index::Chunk chunk,
                                             i64 region = 0) noexcept {
    if (!armed()) return {};
    if (only_region >= 0 && region != only_region) return {};
    return on_chunk_grant_armed(worker, chunk);
  }

  /// True when any fault is configured. The config fields are written
  /// before install() and read-only during the run, so this is safe to
  /// call from workers without synchronization.
  [[nodiscard]] bool armed() const noexcept {
    return throw_at_iteration > 0 || cancel_at_chunk > 0 ||
           (stall_worker >= 0 && stall_ns > 0);
  }

  // ---- assertions / re-arm --------------------------------------------------

  [[nodiscard]] std::uint64_t chunks_seen() const noexcept {
    return chunks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t faults_fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Re-arms every fault and resets the grant ordinal (for reuse across
  /// regions in one test).
  void reset() noexcept;

  // ---- configuration --------------------------------------------------------

  i64 throw_at_iteration = 0;  ///< 1-based coalesced index; 0 disables
  i64 cancel_at_chunk = 0;     ///< 1-based global grant ordinal; 0 disables
  i64 stall_worker = -1;       ///< worker id; -1 disables
  i64 stall_ns = 0;            ///< stall duration (once, at first grant)
  /// Scope the plan to one engine region id; -1 (default) matches every
  /// region, including synchronous ones (region 0). Lets a test fault ONE
  /// submission while sibling regions run clean.
  i64 only_region = -1;

 private:
  [[nodiscard]] FaultDecision on_chunk_grant_armed(std::size_t worker,
                                                   index::Chunk chunk) noexcept;

  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<bool> threw_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> cancelled_{false};

  static std::atomic<FaultPlan*> current_;
};

#endif  // COALESCE_FAULTS_DISABLED

}  // namespace coalesce::runtime::fault
