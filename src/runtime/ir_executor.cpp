#include "runtime/ir_executor.hpp"

#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

support::Expected<ForStats> execute_parallel(ThreadPool& pool,
                                             const ir::LoopNest& nest,
                                             ScheduleParams params,
                                             ir::ArrayStore& store) {
  COALESCE_ASSERT(nest.root != nullptr);
  const ir::Loop& root = *nest.root;
  if (!root.parallel) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "execute_parallel requires a DOALL root (run analyze_and_mark)");
  }
  const auto lo = ir::as_constant(root.lower);
  const auto trips = ir::constant_trip_count(root);
  if (!lo || !trips) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "parallel execution requires constant bounds");
  }

  // One private evaluator per worker, all sharing `store`.
  std::vector<std::unique_ptr<ir::Evaluator>> workers;
  workers.reserve(pool.worker_count());
  for (std::size_t w = 0; w < pool.worker_count(); ++w) {
    workers.push_back(
        std::make_unique<ir::Evaluator>(nest.symbols, store));
  }

  // The flat index j in [1, trips] maps to value lo + (j-1)*step. Workers
  // are distinguished by... the drive loop passes chunks, not worker ids,
  // so we key private evaluators off the thread via a slot handed out in
  // the region: easiest correct form is one evaluator per worker id,
  // resolved inside run_region — parallel_for's body callback doesn't see
  // the worker id, so we run the region directly here.
  const std::size_t worker_count = pool.worker_count();
  ForStats stats;
  stats.iterations_per_worker.assign(worker_count, 0);

  // Propagate invalid schedule parameters (negative total, chunk_size < 1)
  // as the caller-facing error this entry point already reports.
  auto dispatcher_or = make_dispatcher(params, *trips, worker_count);
  if (!dispatcher_or.ok()) return dispatcher_or.error();
  const std::unique_ptr<Dispatcher> dispatcher =
      std::move(dispatcher_or).value();
  std::vector<std::uint64_t> chunks(worker_count, 0);

  pool.run_region([&](std::size_t w) {
    ir::Evaluator& eval = *workers[w];
    std::uint64_t local_iters = 0;
    std::uint64_t local_chunks = 0;
    auto run_chunk = [&](index::Chunk chunk) {
      trace::ScopedSpan span(trace::EventKind::kChunkExec, chunk.first,
                             chunk.size());
      for (support::i64 j = chunk.first; j < chunk.last; ++j) {
        eval.run_body_once(root, *lo + (j - 1) * root.step);
        ++local_iters;
      }
      trace::count(trace::Counter::kChunksExecuted);
      trace::count(trace::Counter::kIterations,
                   static_cast<std::uint64_t>(chunk.size()));
    };
    if (dispatcher != nullptr) {
      while (true) {
        const index::Chunk chunk = dispatcher->next();
        if (chunk.empty()) break;
        ++local_chunks;
        run_chunk(chunk);
      }
    } else if (params.kind == Schedule::kStaticBlock) {
      const auto blocks = index::static_blocks(
          *trips, static_cast<support::i64>(worker_count));
      if (!blocks[w].empty()) {
        ++local_chunks;
        run_chunk(blocks[w]);
      }
    } else {  // static cyclic
      for (support::i64 j = static_cast<support::i64>(w) + 1; j <= *trips;
           j += static_cast<support::i64>(worker_count)) {
        ++local_chunks;
        run_chunk(index::Chunk{j, j + 1});
      }
    }
    stats.iterations_per_worker[w] = local_iters;
    chunks[w] = local_chunks;
  });

  for (auto c : chunks) stats.chunks_executed += c;
  stats.dispatch_ops = dispatcher != nullptr ? dispatcher->dispatch_ops() : 0;
  stats.trace = trace::Recorder::current();
  return stats;
}

support::Expected<ProgramStats> execute_program(ThreadPool& pool,
                                                const ir::Program& program,
                                                ScheduleParams params,
                                                ir::ArrayStore& store) {
  ProgramStats totals;
  for (const ir::LoopPtr& root : program.roots) {
    COALESCE_ASSERT(root != nullptr);
    if (root->parallel && ir::constant_trip_count(*root).has_value()) {
      auto stats = execute_parallel(
          pool, ir::LoopNest{program.symbols, root}, params, store);
      if (!stats.ok()) return stats.error();
      totals.parallel_roots += 1;
      totals.dispatch_ops += stats.value().dispatch_ops;
      for (auto n : stats.value().iterations_per_worker) {
        totals.iterations += n;
      }
    } else {
      ir::Evaluator eval(program.symbols, store);
      eval.run(*root);
      totals.sequential_roots += 1;
      totals.iterations += eval.iterations_executed();
    }
  }
  return totals;
}

}  // namespace coalesce::runtime
