#include "runtime/ir_executor.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

support::Expected<ForStats> execute_parallel(ThreadPool& pool,
                                             const ir::LoopNest& nest,
                                             ScheduleParams params,
                                             ir::ArrayStore& store,
                                             const RunControl& control) {
  COALESCE_ASSERT(nest.root != nullptr);
  const ir::Loop& root = *nest.root;
  if (!root.parallel) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "execute_parallel requires a DOALL root (run analyze_and_mark)");
  }
  const auto lo = ir::as_constant(root.lower);
  const auto trips = ir::constant_trip_count(root);
  if (!lo || !trips) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "parallel execution requires constant bounds");
  }

  // Propagate invalid schedule parameters (negative total, chunk_size < 1)
  // as the caller-facing error this entry point already reports, before
  // handing off to the asserting driver.
  {
    auto dispatcher_or = make_dispatcher(params, *trips, pool.concurrency());
    if (!dispatcher_or.ok()) return dispatcher_or.error();
  }

  // One private evaluator per worker, all sharing `store` — the
  // privatization model the emitted OpenMP code expresses with
  // `private(...)`. drive() passes the worker id with every chunk, so each
  // chunk runs on its worker's evaluator; scheduling, cancellation,
  // deadline, and exception handling are all the shared driver's.
  std::vector<std::unique_ptr<ir::Evaluator>> workers;
  workers.reserve(pool.concurrency());
  for (std::size_t w = 0; w < pool.concurrency(); ++w) {
    workers.push_back(
        std::make_unique<ir::Evaluator>(nest.symbols, store));
  }

  // The flat index j in [1, trips] maps to value lo + (j-1)*step.
  return detail::drive(
      pool, *trips, params,
      [&](std::size_t w, index::Chunk chunk, std::uint64_t* iters) {
        ir::Evaluator& eval = *workers[w];
        for (support::i64 j = chunk.first; j < chunk.last; ++j) {
          eval.run_body_once(root, *lo + (j - 1) * root.step);
          ++*iters;
        }
      },
      control);
}

support::Expected<ProgramStats> execute_program(ThreadPool& pool,
                                                const ir::Program& program,
                                                ScheduleParams params,
                                                ir::ArrayStore& store,
                                                const RunControl& control) {
  ProgramStats totals;
  for (const ir::LoopPtr& root : program.roots) {
    COALESCE_ASSERT(root != nullptr);
    // Stop granularity between roots: a cancel or expired deadline
    // observed here skips every remaining root. (Within a parallel root
    // the bound is one chunk per worker; a sequential root, once started,
    // runs to completion — the interpreter has no dispatch points.)
    if (control.token.valid() && control.token.cancelled()) {
      totals.cancelled = true;
      break;
    }
    if (control.deadline.is_set() && control.deadline.expired()) {
      totals.deadline_expired = true;
      break;
    }
    if (root->parallel && ir::constant_trip_count(*root).has_value()) {
      auto stats = execute_parallel(
          pool, ir::LoopNest{program.symbols, root}, params, store, control);
      if (!stats.ok()) return stats.error();
      totals.parallel_roots += 1;
      totals.dispatch_ops += stats.value().dispatch_ops;
      totals.iterations += stats.value().iterations_done();
      totals.cancelled |= stats.value().cancelled;
      totals.deadline_expired |= stats.value().deadline_expired;
      if (totals.cancelled || totals.deadline_expired) break;
    } else {
      ir::Evaluator eval(program.symbols, store);
      eval.run(*root);
      totals.sequential_roots += 1;
      totals.iterations += eval.iterations_executed();
    }
  }
  return totals;
}

namespace {

/// Everything the region touches after submit returns must be owned by
/// the runner: the nest (retains the root's shared_ptr) and one private
/// evaluator per worker. The store alone is borrowed — documented contract.
struct IrRunner {
  ir::LoopNest nest;
  i64 lower;
  i64 step;
  std::shared_ptr<std::vector<std::unique_ptr<ir::Evaluator>>> evaluators;

  void operator()(std::size_t w, index::Chunk chunk, std::uint64_t* iters) {
    ir::Evaluator& eval = *(*evaluators)[w];
    for (support::i64 j = chunk.first; j < chunk.last; ++j) {
      eval.run_body_once(*nest.root, lower + (j - 1) * step);
      ++*iters;
    }
  }
};

/// Shared validation + runner construction for submit_ir / try_submit_ir.
support::Expected<std::pair<i64, IrRunner>> make_ir_region(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts) {
  COALESCE_ASSERT(nest.root != nullptr);
  const ir::Loop& root = *nest.root;
  if (!root.parallel) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "submit_ir requires a DOALL root (run analyze_and_mark)");
  }
  const auto lo = ir::as_constant(root.lower);
  const auto trips = ir::constant_trip_count(root);
  if (!lo || !trips) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "parallel execution requires constant bounds");
  }
  {
    auto dispatcher_or =
        make_dispatcher(opts.schedule, *trips, engine.concurrency());
    if (!dispatcher_or.ok()) return dispatcher_or.error();
  }

  auto evaluators =
      std::make_shared<std::vector<std::unique_ptr<ir::Evaluator>>>();
  evaluators->reserve(engine.concurrency());
  for (std::size_t w = 0; w < engine.concurrency(); ++w) {
    evaluators->push_back(
        std::make_unique<ir::Evaluator>(nest.symbols, store));
  }
  return std::pair<i64, IrRunner>(
      *trips, IrRunner{nest, *lo, root.step, std::move(evaluators)});
}

auto ir_stats_result() {
  return [](const detail::RegionContext& ctx, double wall_seconds) {
    return ctx.make_stats(wall_seconds);
  };
}

}  // namespace

support::Expected<RegionFuture<ForStats>> submit_ir(Engine& engine,
                                                    const ir::LoopNest& nest,
                                                    ir::ArrayStore& store,
                                                    const LaunchOptions& opts) {
  auto region = make_ir_region(engine, nest, store, opts);
  if (!region.ok()) return region.error();
  auto future = engine.submit_region<ForStats>(
      region.value().first, std::move(region.value().second),
      ir_stats_result(), opts);
  if (!future.valid()) {
    return support::make_error(support::ErrorCode::kUnavailable,
                               "engine is closed (drained or destroyed)");
  }
  return future;
}

support::Expected<TryResult<ForStats>> try_submit_ir(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts) {
  auto region = make_ir_region(engine, nest, store, opts);
  if (!region.ok()) return region.error();
  return engine.try_submit_region<ForStats>(
      region.value().first, std::move(region.value().second),
      ir_stats_result(), opts);
}

}  // namespace coalesce::runtime
