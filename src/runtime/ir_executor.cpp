#include "runtime/ir_executor.hpp"

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codegen/jit.hpp"
#include "codegen/pipeline.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

namespace {

/// One ready-to-dispatch JIT region: the compiled kernel plus the store's
/// array base pointers in the kernel's positional binding order. The
/// shared_ptrs make the runner copyable into an engine task and keep the
/// kernel alive even if the cache evicts it mid-run.
struct JitRegion {
  i64 total = 0;
  std::shared_ptr<const codegen::CompiledKernel> kernel;
  std::shared_ptr<const std::vector<double*>> arrays;
  /// Canonical alpha-renamed pipeline key — doubles as the adaptive
  /// controller's region-shape key under Schedule::kAuto.
  std::string cache_key;
};

/// The chunk body of a JIT region: same contract as the interpreter's loop
/// (half-open flat [first, last) over j in [1, total]), one native call
/// per chunk instead of one IR walk per iteration.
struct JitRunner {
  std::shared_ptr<const codegen::CompiledKernel> kernel;
  std::shared_ptr<const std::vector<double*>> arrays;

  void operator()(std::size_t /*worker*/, index::Chunk chunk,
                  std::uint64_t* iters) {
    kernel->run_chunk(chunk.first, chunk.last, arrays->data());
    *iters += static_cast<std::uint64_t>(chunk.last - chunk.first);
  }
};

/// Runs the analysis/transform/emit/compile pipeline and binds the store.
/// Any error here means "fall back to the interpreter", never "abort".
support::Expected<JitRegion> make_jit_region(const ir::LoopNest& nest,
                                             ir::ArrayStore& store) {
  auto prepared = codegen::prepare(nest);
  if (!prepared.ok()) return prepared.error();
  auto kernel = codegen::default_jit_cache().get_or_compile(prepared.value());
  if (!kernel.ok()) return kernel.error();
  auto arrays = std::make_shared<std::vector<double*>>();
  arrays->reserve(prepared.value().arrays.size());
  for (const ir::VarId array : prepared.value().arrays) {
    arrays->push_back(store.data(array).data());
  }
  return JitRegion{prepared.value().total, std::move(kernel).value(),
                   std::move(arrays), prepared.value().cache_key};
}

/// Region-shape key for Schedule::kAuto over an interpreted IR nest: the
/// same canonical alpha-renamed key the JIT compile cache uses when the
/// codegen pipeline accepts the nest, else a trip-count tag. Computed only
/// when the schedule is actually kAuto — prepare() runs full analysis.
std::string ir_auto_key(Schedule kind, const ir::LoopNest& nest, i64 trips) {
  if (kind != Schedule::kAuto) return {};
  auto prepared = codegen::prepare(nest);
  if (prepared.ok()) return std::move(prepared.value().cache_key);
  return "ir/" + std::to_string(trips);
}

}  // namespace

support::Expected<ForStats> execute_parallel(ThreadPool& pool,
                                             const ir::LoopNest& nest,
                                             ScheduleParams params,
                                             ir::ArrayStore& store,
                                             const RunControl& control) {
  COALESCE_ASSERT(nest.root != nullptr);
  const ir::Loop& root = *nest.root;
  if (!root.parallel) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "execute_parallel requires a DOALL root (run analyze_and_mark)");
  }
  const auto lo = ir::as_constant(root.lower);
  const auto trips = ir::constant_trip_count(root);
  if (!lo || !trips) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "parallel execution requires constant bounds");
  }

  // Propagate invalid schedule parameters (negative total, chunk_size < 1)
  // as the caller-facing error this entry point already reports, before
  // handing off to the asserting driver. kAuto validates via its kSelf
  // stand-in (it resolves into a concrete kind only inside drive()).
  {
    auto dispatcher_or = make_dispatcher(validation_schedule(params), *trips,
                                         pool.concurrency());
    if (!dispatcher_or.ok()) return dispatcher_or.error();
  }

  // One private evaluator per worker, all sharing `store` — the
  // privatization model the emitted OpenMP code expresses with
  // `private(...)`. drive() passes the worker id with every chunk, so each
  // chunk runs on its worker's evaluator; scheduling, cancellation,
  // deadline, and exception handling are all the shared driver's.
  std::vector<std::unique_ptr<ir::Evaluator>> workers;
  workers.reserve(pool.concurrency());
  for (std::size_t w = 0; w < pool.concurrency(); ++w) {
    workers.push_back(
        std::make_unique<ir::Evaluator>(nest.symbols, store));
  }

  // The flat index j in [1, trips] maps to value lo + (j-1)*step.
  const std::string auto_key = ir_auto_key(params.kind, nest, *trips);
  return detail::drive(
      pool, *trips, params,
      [&](std::size_t w, index::Chunk chunk, std::uint64_t* iters) {
        ir::Evaluator& eval = *workers[w];
        for (support::i64 j = chunk.first; j < chunk.last; ++j) {
          eval.run_body_once(root, *lo + (j - 1) * root.step);
          ++*iters;
        }
      },
      control, auto_key);
}

support::Expected<ForStats> run(ThreadPool& pool, const ir::LoopNest& nest,
                                ir::ArrayStore& store,
                                const LaunchOptions& opts) {
  const ScheduleParams params = detail::effective_schedule(opts);
  if (opts.exec == ExecMode::kJit) {
    auto region = make_jit_region(nest, store);
    if (region.ok()) {
      JitRegion& jit = region.value();
      auto dispatcher_or = make_dispatcher(validation_schedule(params),
                                           jit.total, pool.concurrency());
      if (!dispatcher_or.ok()) return dispatcher_or.error();
      return detail::drive(
          pool, jit.total, params,
          JitRunner{std::move(jit.kernel), std::move(jit.arrays)},
          opts.control, jit.cache_key);
    }
    trace::count(trace::Counter::kJitFallbacks);
  }
  return execute_parallel(pool, nest, params, store, opts.control);
}

support::Expected<ProgramStats> execute_program(ThreadPool& pool,
                                                const ir::Program& program,
                                                ScheduleParams params,
                                                ir::ArrayStore& store,
                                                const RunControl& control,
                                                ExecMode exec) {
  ProgramStats totals;
  for (const ir::LoopPtr& root : program.roots) {
    COALESCE_ASSERT(root != nullptr);
    // Stop granularity between roots: a cancel or expired deadline
    // observed here skips every remaining root. (Within a parallel root
    // the bound is one chunk per worker; a sequential root, once started,
    // runs to completion — the interpreter has no dispatch points.)
    if (control.token.valid() && control.token.cancelled()) {
      totals.cancelled = true;
      break;
    }
    if (control.deadline.is_set() && control.deadline.expired()) {
      totals.deadline_expired = true;
      break;
    }
    if (root->parallel && ir::constant_trip_count(*root).has_value()) {
      LaunchOptions opts;
      opts.schedule = params;
      opts.control = control;
      opts.exec = exec;
      auto stats =
          run(pool, ir::LoopNest{program.symbols, root}, store, opts);
      if (!stats.ok()) return stats.error();
      totals.parallel_roots += 1;
      totals.dispatch_ops += stats.value().dispatch_ops;
      totals.iterations += stats.value().iterations_done();
      totals.cancelled |= stats.value().cancelled;
      totals.deadline_expired |= stats.value().deadline_expired;
      if (totals.cancelled || totals.deadline_expired) break;
    } else {
      ir::Evaluator eval(program.symbols, store);
      eval.run(*root);
      totals.sequential_roots += 1;
      totals.iterations += eval.iterations_executed();
    }
  }
  return totals;
}

namespace {

/// Everything the region touches after submit returns must be owned by
/// the runner: the nest (retains the root's shared_ptr) and one private
/// evaluator per worker. The store alone is borrowed — documented contract.
struct IrRunner {
  ir::LoopNest nest;
  i64 lower;
  i64 step;
  std::shared_ptr<std::vector<std::unique_ptr<ir::Evaluator>>> evaluators;

  void operator()(std::size_t w, index::Chunk chunk, std::uint64_t* iters) {
    ir::Evaluator& eval = *(*evaluators)[w];
    for (support::i64 j = chunk.first; j < chunk.last; ++j) {
      eval.run_body_once(*nest.root, lower + (j - 1) * step);
      ++*iters;
    }
  }
};

/// Shared validation + runner construction for submit_ir / try_submit_ir.
support::Expected<std::pair<i64, IrRunner>> make_ir_region(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts) {
  COALESCE_ASSERT(nest.root != nullptr);
  const ir::Loop& root = *nest.root;
  if (!root.parallel) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "submit_ir requires a DOALL root (run analyze_and_mark)");
  }
  const auto lo = ir::as_constant(root.lower);
  const auto trips = ir::constant_trip_count(root);
  if (!lo || !trips) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "parallel execution requires constant bounds");
  }
  {
    auto dispatcher_or = make_dispatcher(validation_schedule(opts.schedule),
                                         *trips, engine.concurrency());
    if (!dispatcher_or.ok()) return dispatcher_or.error();
  }

  auto evaluators =
      std::make_shared<std::vector<std::unique_ptr<ir::Evaluator>>>();
  evaluators->reserve(engine.concurrency());
  for (std::size_t w = 0; w < engine.concurrency(); ++w) {
    evaluators->push_back(
        std::make_unique<ir::Evaluator>(nest.symbols, store));
  }
  return std::pair<i64, IrRunner>(
      *trips, IrRunner{nest, *lo, root.step, std::move(evaluators)});
}

auto ir_stats_result() {
  return [](const detail::RegionContext& ctx, double wall_seconds) {
    return ctx.make_stats(wall_seconds);
  };
}

/// JIT attempt for the submit paths. nullopt = fall back to the
/// interpreter (already counted); an engaged error means the schedule
/// itself was invalid and must surface to the caller.
std::optional<support::Expected<JitRegion>> try_make_jit_region(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts) {
  if (opts.exec != ExecMode::kJit) return std::nullopt;
  auto region = make_jit_region(nest, store);
  if (!region.ok()) {
    trace::count(trace::Counter::kJitFallbacks);
    return std::nullopt;
  }
  auto dispatcher_or =
      make_dispatcher(validation_schedule(opts.schedule),
                      region.value().total, engine.concurrency());
  if (!dispatcher_or.ok()) {
    return std::optional<support::Expected<JitRegion>>(dispatcher_or.error());
  }
  return region;
}

}  // namespace

support::Expected<RegionFuture<ForStats>> submit_ir(Engine& engine,
                                                    const ir::LoopNest& nest,
                                                    ir::ArrayStore& store,
                                                    const LaunchOptions& opts) {
  if (auto jit = try_make_jit_region(engine, nest, store, opts)) {
    if (!jit->ok()) return jit->error();
    JitRegion& region = jit->value();
    auto future = engine.submit_region<ForStats>(
        region.total,
        JitRunner{std::move(region.kernel), std::move(region.arrays)},
        ir_stats_result(), opts, 0, region.cache_key);
    if (!future.valid()) {
      return support::make_error(support::ErrorCode::kUnavailable,
                                 "engine is closed (drained or destroyed)");
    }
    return future;
  }
  auto region = make_ir_region(engine, nest, store, opts);
  if (!region.ok()) return region.error();
  const std::string auto_key =
      ir_auto_key(opts.schedule.kind, nest, region.value().first);
  auto future = engine.submit_region<ForStats>(
      region.value().first, std::move(region.value().second),
      ir_stats_result(), opts, 0, auto_key);
  if (!future.valid()) {
    return support::make_error(support::ErrorCode::kUnavailable,
                               "engine is closed (drained or destroyed)");
  }
  return future;
}

support::Expected<TryResult<ForStats>> try_submit_ir(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts) {
  if (auto jit = try_make_jit_region(engine, nest, store, opts)) {
    if (!jit->ok()) return jit->error();
    JitRegion& region = jit->value();
    return engine.try_submit_region<ForStats>(
        region.total,
        JitRunner{std::move(region.kernel), std::move(region.arrays)},
        ir_stats_result(), opts, 0, region.cache_key);
  }
  auto region = make_ir_region(engine, nest, store, opts);
  if (!region.ok()) return region.error();
  const std::string auto_key =
      ir_auto_key(opts.schedule.kind, nest, region.value().first);
  return engine.try_submit_region<ForStats>(
      region.value().first, std::move(region.value().second),
      ir_stats_result(), opts, 0, auto_key);
}

}  // namespace coalesce::runtime
