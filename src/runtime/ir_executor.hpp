// Parallel execution of IR programs on real threads.
//
// This is the runtime half of the compiler story: the nests the
// transformations produce are *executed in parallel* by interpreting the
// root DOALL's iterations across the worker pool. One ArrayStore is shared
// (a legal DOALL writes disjoint elements); each worker owns a private
// Evaluator, so recovered indices and privatized scalars live in per-worker
// environments — exactly the privatization model the emitted OpenMP code
// uses with `private(...)` clauses.
//
// Soundness contract: the root loop must be a proven DOALL (run
// analysis::analyze_and_mark or construct via the transforms). Executing a
// non-DOALL root in parallel is a data race; execute_program falls back to
// sequential interpretation for roots not marked parallel.
#pragma once

#include "ir/eval.hpp"
#include "ir/stmt.hpp"
#include "runtime/engine.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"
#include "support/error.hpp"

namespace coalesce::runtime {

/// Executes `nest.root` with its iterations scheduled across the pool.
/// Requires: root marked parallel, constant bounds, positive step.
/// Returns the scheduling stats; array results land in `store`. An
/// optional RunControl stops the region early at chunk-grant granularity
/// (stats.cancelled / deadline_expired report how it ended); a body/eval
/// exception is rethrown once at the join and the pool stays reusable.
[[nodiscard]] support::Expected<ForStats> execute_parallel(
    ThreadPool& pool, const ir::LoopNest& nest, ScheduleParams params,
    ir::ArrayStore& store, const RunControl& control = {});

/// The IR launch verb: executes `nest.root` on the pool under the full
/// LaunchOptions. With opts.exec == ExecMode::kInterpret this is
/// execute_parallel with the schedule/control unpacked. With kJit the nest
/// goes through the codegen pipeline (codegen::prepare ->
/// emit_chunk_kernel -> default_jit_cache) and the compiled chunk kernel
/// runs on the same driver — identical chunk contract, so every schedule,
/// cancellation, and deadline behaves the same; the kernel covers the whole
/// coalesced band, not just the root level. Any JIT failure (no compiler,
/// incompatible nest, compile error) counts Counter::kJitFallbacks and
/// falls back to the interpreter; hard validation errors (non-DOALL root,
/// non-constant bounds) still surface as errors from the fallback.
[[nodiscard]] support::Expected<ForStats> run(ThreadPool& pool,
                                              const ir::LoopNest& nest,
                                              ir::ArrayStore& store,
                                              const LaunchOptions& opts = {});

/// Executes a whole program (e.g. the output of distribute + coalesce):
/// parallel roots run across the pool, sequential roots are interpreted on
/// the calling thread, in order, against one shared store. The control is
/// observed between roots and inside parallel roots; a stop leaves the
/// store holding the partial results of the roots that ran.
struct ProgramStats {
  std::uint64_t parallel_roots = 0;
  std::uint64_t sequential_roots = 0;
  std::uint64_t dispatch_ops = 0;
  std::uint64_t iterations = 0;
  bool cancelled = false;         ///< stopped by the caller's token
  bool deadline_expired = false;  ///< stopped by the caller's deadline
};
[[nodiscard]] support::Expected<ProgramStats> execute_program(
    ThreadPool& pool, const ir::Program& program, ScheduleParams params,
    ir::ArrayStore& store, const RunControl& control = {},
    ExecMode exec = ExecMode::kInterpret);

/// Asynchronous variant of execute_parallel: validates the nest up front
/// (same errors as execute_parallel), then enqueues it on the engine and
/// returns the region's future. The nest is COPIED into the region task
/// (the LoopNest's shared_ptr root is retained); `store` is borrowed and
/// MUST outlive the region — hold it until the future resolves. Per-region
/// cancellation/deadline and priority travel in `opts`. Submitting to a
/// closed engine (drain() ran or destruction started) is an
/// ErrorCode::kUnavailable error, never a hang and never an invalid
/// future — the daemon's shutdown path relies on this.
[[nodiscard]] support::Expected<RegionFuture<ForStats>> submit_ir(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts = {});

/// Non-blocking submit_ir: same validation, but refuses instead of waiting
/// for queue space. std::nullopt means the engine's queue was full (or the
/// engine is closed) — the service layer's signal to shed the request.
[[nodiscard]] support::Expected<TryResult<ForStats>> try_submit_ir(
    Engine& engine, const ir::LoopNest& nest, ir::ArrayStore& store,
    const LaunchOptions& opts = {});

}  // namespace coalesce::runtime
