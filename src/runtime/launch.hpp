// The unified launch API: run() / run_reduce() / run_sum() + LaunchOptions.
//
// PR 5 collapsed the nine historical entry points (five parallel_for*
// shapes, four parallel_reduce* shapes; the forwarding shims were deleted
// in PR 10 — docs/API.md keeps the migration table) behind three verbs and
// one options struct:
//
//   run(pool, total, body)                        // flat coalesced loop
//   run(pool, space, body)                        // collapsed nest
//   run(pool, space, body, {.tile_sizes = ts})    // tiled collapsed nest
//   run(pool, extents, body, {.mode = NestMode::kNestedOuter})  // baseline
//   run_sum(pool, total, body)                    // reduction conveniences
//   run_reduce(pool, total, identity, body, combine)
//
// Everything orthogonal — schedule, cancellation/deadline, tiling, nest
// execution mode, engine priority — travels in LaunchOptions, so adding a
// knob never multiplies signatures again. Designated initializers make
// call sites read like keyword arguments:
//
//   run(pool, space, body,
//       {.schedule = {Schedule::kGuided}, .control = {token, deadline}});
//
// The same LaunchOptions drives asynchronous submission: Engine::submit
// (runtime/engine.hpp) takes the identical struct and additionally honors
// .priority. Bodies passed here are borrowed (the call blocks); bodies
// passed to an Engine are copied into the region task.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "index/coalesced_space.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/int_math.hpp"

namespace coalesce::runtime {

/// How a multi-level nest is executed by run(pool, extents/space, ...).
enum class NestMode : std::uint8_t {
  kCollapsed,       ///< one coalesced space, one dispatcher (the default)
  kTiled,           ///< schedule whole tiles, sweep points within each
  kNestedOuter,     ///< baseline: schedule outer level, inner sequential
  kNestedForkJoin,  ///< baseline: one fork-join per innermost instance
};

/// How an IR nest's chunks are executed (IR launch paths only: the run()
/// overload taking a LoopNest, submit_ir, and the service). The templated
/// body-based verbs below ignore it — there is no IR to compile.
enum class ExecMode : std::uint8_t {
  kInterpret,  ///< walk the IR per iteration (ir::Evaluator; the default)
  kJit,        ///< native chunk kernel via codegen::JitCache; falls back to
               ///< the interpreter on any compile failure (kJitFallbacks)
};

/// Queue class for asynchronous submission (Engine::submit). High-priority
/// regions are dequeued before any normal-priority region; within a class,
/// FIFO. Ignored by the synchronous run() verbs.
enum class Priority : std::uint8_t {
  kNormal,
  kHigh,
};

/// Everything about a launch except the pool, the iteration space, and the
/// body. Default-constructed = unit self-scheduling, no cancellation, no
/// tiling, collapsed execution, normal priority.
struct LaunchOptions {
  ScheduleParams schedule{};
  RunControl control{};
  /// Per-level tile edge lengths. Non-empty selects tiled execution (must
  /// match the space's depth); implies mode kTiled.
  std::span<const i64> tile_sizes{};
  NestMode mode = NestMode::kCollapsed;
  /// Asynchronous submissions only (Engine::submit).
  Priority priority = Priority::kNormal;
  /// IR launch paths only (run(pool, nest, store), submit_ir, the service).
  ExecMode exec = ExecMode::kInterpret;
  /// Locality-aware execution: dispatch through the cache-sharded
  /// dispatcher (ShardedDispatcher) so worker clusters claim contiguous
  /// ranges instead of interleaving on one counter. Sets
  /// ScheduleParams::sharded on whatever schedule kind is chosen; falls
  /// back to the normal path when the shape is ineligible.
  bool locality = false;
};

/// Result of a reduction launch: the folded value plus the region report.
struct ReduceResult {
  double value = 0.0;
  ForStats stats;
};

namespace detail {

/// The schedule actually handed to the dispatcher: the caller's schedule
/// with LaunchOptions::locality folded into ScheduleParams::sharded. Every
/// launch verb (and Engine::make_task) routes through this, so the knob
/// means the same thing on every path.
inline ScheduleParams effective_schedule(const LaunchOptions& opts) noexcept {
  ScheduleParams params = opts.schedule;
  params.sharded = params.sharded || opts.locality;
  return params;
}

/// Builds the tile-grid runner for one tiled launch: level k of the grid
/// has ceil(extent_k / tile_k) tiles. Space/Body are reference types on
/// the synchronous path and value types on the engine path.
template <typename Space, typename Body>
TiledRunner<Space, Body> make_tiled_runner(Space&& space, Body&& body,
                                           std::span<const i64> tile_sizes) {
  const index::CoalescedSpace& s = space;
  COALESCE_ASSERT(tile_sizes.size() == s.depth());
  std::vector<i64> grid(s.depth());
  for (std::size_t k = 0; k < s.depth(); ++k) {
    COALESCE_ASSERT(tile_sizes[k] >= 1);
    grid[k] = support::ceil_div(s.extent(k), tile_sizes[k]);
  }
  return TiledRunner<Space, Body>{
      std::forward<Space>(space),
      index::CoalescedSpace::create(grid).value(),
      std::vector<i64>(tile_sizes.begin(), tile_sizes.end()),
      std::forward<Body>(body)};
}

/// Sequentially visits every point of a rectangular space with a fixed
/// prefix; `indices` holds the full index vector, levels [from, end) are
/// swept here.
template <typename Visit>
void sweep_tail(std::span<const i64> extents, std::size_t from,
                std::vector<i64>& indices, Visit&& visit) {
  if (from == extents.size()) {
    visit(std::span<const i64>(indices));
    return;
  }
  for (i64 v = 1; v <= extents[from]; ++v) {
    indices[from] = v;
    sweep_tail(extents, from + 1, indices, visit);
  }
}

template <typename Body>
ForStats run_nested_outer(ThreadPool& pool, std::span<const i64> extents,
                          Body&& body, const LaunchOptions& opts) {
  COALESCE_ASSERT(!extents.empty());
  const i64 outer = extents[0];
  // Note the granularity consequence: one "chunk" here spans whole inner
  // sweeps, so cancel latency is bounded by (chunk size) * inner volume —
  // the coalesced executor's tighter bound is itself an argument for
  // coalescing.
  ForStats stats = drive(
      pool, outer, effective_schedule(opts),
      [&body, extents](std::size_t, index::Chunk chunk,
                       std::uint64_t* iters) {
        std::vector<i64> indices(extents.size(), 1);
        for (i64 i = chunk.first; i < chunk.last; ++i) {
          indices[0] = i;
          sweep_tail(extents, 1, indices, [&](std::span<const i64> idx) {
            body(idx);
            ++*iters;
          });
        }
      },
      opts.control, "nest-outer");
  // drive counted outer iterations as its total; report points.
  std::uint64_t volume = 1;
  for (const i64 e : extents) volume *= static_cast<std::uint64_t>(e);
  stats.iterations_requested = volume;
  return stats;
}

template <typename Body>
ForStats run_nested_forkjoin(ThreadPool& pool, std::span<const i64> extents,
                             Body&& body, const LaunchOptions& opts) {
  COALESCE_ASSERT(!extents.empty());
  using Clock = std::chrono::steady_clock;
  // Execution shape of nested DOALLs without coalescing: all levels but the
  // innermost run sequentially here, and every instance of the innermost
  // loop is its own fork-join over the pool — prod(extents[0..m-2])
  // parallel-loop initiations in total. The control is threaded into every
  // inner region; once one stops early the remaining instances are skipped
  // entirely.
  ForStats total_stats;
  total_stats.iterations_per_worker.assign(pool.concurrency(), 0);
  std::uint64_t volume = 1;
  for (const i64 e : extents) volume *= static_cast<std::uint64_t>(e);
  total_stats.iterations_requested = volume;
  const auto start = Clock::now();

  std::vector<i64> prefix(extents.size(), 1);
  const std::size_t last = extents.size() - 1;

  // Iterate the outer product space sequentially (recursive lambda so the
  // body type stays un-erased).
  auto outer_sweep = [&](auto&& self, std::size_t level) -> void {
    if (total_stats.cancelled || total_stats.deadline_expired) return;
    if (level == last) {
      const i64 inner = extents[last];
      const ForStats inner_stats = drive(
          pool, inner, effective_schedule(opts),
          [&](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
            std::vector<i64> indices(prefix.begin(), prefix.end());
            for (i64 j = chunk.first; j < chunk.last; ++j) {
              indices[last] = j;
              body(std::span<const i64>(indices));
              ++*iters;
            }
          },
          opts.control, "nest-forkjoin");
      total_stats.dispatch_ops += inner_stats.dispatch_ops;
      total_stats.chunks_executed += inner_stats.chunks_executed;
      total_stats.steals += inner_stats.steals;
      total_stats.cancelled |= inner_stats.cancelled;
      total_stats.deadline_expired |= inner_stats.deadline_expired;
      for (std::size_t w = 0; w < total_stats.iterations_per_worker.size();
           ++w) {
        total_stats.iterations_per_worker[w] +=
            inner_stats.iterations_per_worker[w];
      }
      return;
    }
    for (i64 v = 1; v <= extents[level]; ++v) {
      if (total_stats.cancelled || total_stats.deadline_expired) return;
      prefix[level] = v;
      self(self, level + 1);
    }
  };
  outer_sweep(outer_sweep, 0);

  total_stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return total_stats;
}

}  // namespace detail

/// Runs `body(j)` for every j in [1, total] on the pool, body inlined into
/// the scheduling loop (no type erasure anywhere on the hot path unless
/// the body itself is a std::function).
template <typename Body,
          std::enable_if_t<std::is_invocable_v<Body&, i64>, int> = 0>
ForStats run(ThreadPool& pool, i64 total, Body&& body,
             const LaunchOptions& opts = {}) {
  COALESCE_ASSERT(total >= 0);
  return detail::drive(pool, total, detail::effective_schedule(opts),
                       detail::FlatRunner<Body&>{body}, opts.control,
                       "flat");
}

/// Executes `body(i1..im)` for every point of the coalesced space — loop
/// coalescing as a library. Default mode: one dispatcher over the
/// flattened space, strength-reduced index recovery per chunk. With
/// opts.tile_sizes set (or mode kTiled), the scheduler hands out whole
/// rectangular tiles and the body sweeps each tile's points in row-major
/// order — scheduling granularity traded for spatial locality.
template <typename Body,
          std::enable_if_t<
              std::is_invocable_v<Body&, std::span<const i64>>, int> = 0>
ForStats run(ThreadPool& pool, const index::CoalescedSpace& space,
             Body&& body, const LaunchOptions& opts = {}) {
  const bool tiled =
      opts.mode == NestMode::kTiled || !opts.tile_sizes.empty();
  COALESCE_ASSERT_MSG(
      tiled || opts.mode == NestMode::kCollapsed,
      "nested baseline modes take raw extents, not a CoalescedSpace");
  if (!tiled) {
    return detail::drive(
        pool, space.total(), detail::effective_schedule(opts),
        detail::CollapsedRunner<const index::CoalescedSpace&, Body&>{space,
                                                                     body},
        opts.control, "nest");
  }
  auto runner =
      detail::make_tiled_runner<const index::CoalescedSpace&, Body&>(
          space, body, opts.tile_sizes);
  const i64 tiles = runner.tile_space.total();
  ForStats stats = detail::drive(pool, tiles, detail::effective_schedule(opts),
                                 runner, opts.control, "tile");
  // drive counted tiles as its total; report progress in points.
  stats.iterations_requested = static_cast<std::uint64_t>(space.total());
  return stats;
}

/// Executes `body(i1..im)` over the rectangular space given by raw
/// per-level extents (all levels 1-based, unit step). The mode selects the
/// execution shape: kCollapsed/kTiled build the coalesced space and take
/// the paths above; kNestedOuter and kNestedForkJoin are the paper's
/// measured baselines (outer-level-only scheduling, and one fork-join per
/// innermost loop instance).
template <typename Body,
          std::enable_if_t<
              std::is_invocable_v<Body&, std::span<const i64>>, int> = 0>
ForStats run(ThreadPool& pool, std::span<const i64> extents, Body&& body,
             const LaunchOptions& opts = {}) {
  switch (opts.mode) {
    case NestMode::kNestedOuter:
      return detail::run_nested_outer(pool, extents, body, opts);
    case NestMode::kNestedForkJoin:
      return detail::run_nested_forkjoin(pool, extents, body, opts);
    case NestMode::kCollapsed:
    case NestMode::kTiled: {
      const auto space =
          index::CoalescedSpace::create(
              std::vector<i64>(extents.begin(), extents.end()))
              .value();
      return run(pool, space, body, opts);
    }
  }
  COALESCE_ASSERT_MSG(false, "invalid NestMode");
  return {};
}

/// Reduces body(j) over j in [1, total]: each worker folds locally from
/// `identity` into a cache-line-padded partial, partials are combined in
/// worker order after the join. A stopped run (cancelled /
/// deadline-expired) returns the fold over only the iterations that
/// executed — check result.stats.completed() before trusting the value.
///
/// Determinism: combining order is fixed, but iteration-to-worker
/// assignment varies with dynamic schedules, so floating-point results can
/// differ run to run at rounding level. Use Schedule::kStaticBlock for
/// bitwise-reproducible results.
template <typename Body, typename Combine,
          std::enable_if_t<std::is_invocable_r_v<double, Body&, i64>, int> = 0>
ReduceResult run_reduce(ThreadPool& pool, i64 total, double identity,
                        Body&& body, Combine&& combine,
                        const LaunchOptions& opts = {}) {
  COALESCE_ASSERT(total >= 0);
  auto partials = std::make_shared<std::vector<detail::ReducePartial>>(
      pool.concurrency(), detail::ReducePartial{identity});
  ForStats stats = detail::drive(
      pool, total, detail::effective_schedule(opts),
      detail::ReduceRunner<Body&, Combine&>{partials, body, combine},
      opts.control, "reduce");
  ReduceResult result;
  result.value = identity;
  for (const detail::ReducePartial& p : *partials) {
    result.value = combine(result.value, p.value);
  }
  result.stats = std::move(stats);
  return result;
}

/// Reduces body(indices) over every point of the coalesced space. Decodes
/// per iteration with a per-call buffer: correct and thread-safe. (The
/// strength-reduced odometer matters for tiny bodies — measured in E7 —
/// but reductions fold a value per point anyway; the decode is a constant
/// factor, not a scaling term.)
template <typename Body, typename Combine,
          std::enable_if_t<
              std::is_invocable_r_v<double, Body&, std::span<const i64>>,
              int> = 0>
ReduceResult run_reduce(ThreadPool& pool, const index::CoalescedSpace& space,
                        double identity, Body&& body, Combine&& combine,
                        const LaunchOptions& opts = {}) {
  return run_reduce(
      pool, space.total(), identity,
      [&space, &body](i64 j) {
        std::vector<i64> indices(space.depth());
        space.decode_original(j, indices);
        return body(std::span<const i64>(indices));
      },
      combine, opts);
}

/// Convenience sum-reductions.
template <typename Body,
          std::enable_if_t<std::is_invocable_r_v<double, Body&, i64>, int> = 0>
ReduceResult run_sum(ThreadPool& pool, i64 total, Body&& body,
                     const LaunchOptions& opts = {}) {
  return run_reduce(pool, total, 0.0, body,
                    [](double a, double v) { return a + v; }, opts);
}

template <typename Body,
          std::enable_if_t<
              std::is_invocable_r_v<double, Body&, std::span<const i64>>,
              int> = 0>
ReduceResult run_sum(ThreadPool& pool, const index::CoalescedSpace& space,
                     Body&& body, const LaunchOptions& opts = {}) {
  return run_reduce(pool, space, 0.0, body,
                    [](double a, double v) { return a + v; }, opts);
}

}  // namespace coalesce::runtime
