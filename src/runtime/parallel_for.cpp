#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <chrono>

#include "support/assert.hpp"
#include "support/int_math.hpp"
#include "support/stats.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Sequentially visits every point of a rectangular space with a fixed
/// prefix; `indices` holds the full index vector, levels [from, end) are
/// swept here.
void sweep_tail(std::span<const i64> extents, std::size_t from,
                std::vector<i64>& indices, const IndexedBody& body) {
  if (from == extents.size()) {
    body(indices);
    return;
  }
  for (i64 v = 1; v <= extents[from]; ++v) {
    indices[from] = v;
    sweep_tail(extents, from + 1, indices, body);
  }
}

}  // namespace

double ForStats::imbalance() const {
  if (iterations_per_worker.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const std::uint64_t n : iterations_per_worker) {
    max = std::max(max, n);
    sum += n;
  }
  if (sum == 0) return 1.0;  // zero-trip loop: balanced by definition
  const double mean = static_cast<double>(sum) /
                      static_cast<double>(iterations_per_worker.size());
  return static_cast<double>(max) / mean;
}

ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      const FlatBody& body, const RunControl& control) {
  COALESCE_ASSERT(total >= 0);
  // Erased variant: the scheduling loop is the shared template, but each
  // iteration goes through the std::function — the E16 "before" path.
  return detail::drive(
      pool, total, params,
      [&](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
        for (i64 j = chunk.first; j < chunk.last; ++j) {
          body(j);
          ++*iters;
        }
      },
      control);
}

ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params,
                                const IndexedBody& body,
                                const RunControl& control) {
  return detail::drive(
      pool, space.total(), params,
      [&](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
        // One full decode per chunk, odometer within: the
        // strength-reduced recovery (index/incremental.hpp).
        const std::uint64_t t0 = trace::span_begin();
        index::IncrementalDecoder decoder(space, chunk.first);
        trace::span_end(trace::EventKind::kIndexRecovery, t0, chunk.first);
        trace::count(trace::Counter::kRecoveryDecodes);
        trace::count(trace::Counter::kRecoverySteps,
                     static_cast<std::uint64_t>(chunk.size() - 1));
        while (true) {
          body(decoder.original());
          ++*iters;
          if (decoder.position() + 1 >= chunk.last) break;
          decoder.advance();
        }
      },
      control);
}

ForStats parallel_for_collapsed_tiled(ThreadPool& pool,
                                      const index::CoalescedSpace& space,
                                      std::span<const i64> tile_sizes,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control) {
  COALESCE_ASSERT(tile_sizes.size() == space.depth());
  const std::size_t depth = space.depth();

  // Tile grid: level k has ceil(extent_k / tile_k) tiles.
  std::vector<i64> grid(depth);
  for (std::size_t k = 0; k < depth; ++k) {
    COALESCE_ASSERT(tile_sizes[k] >= 1);
    grid[k] = support::ceil_div(space.extent(k), tile_sizes[k]);
  }
  const auto tile_space = index::CoalescedSpace::create(grid).value();

  ForStats stats = detail::drive(
      pool, tile_space.total(), params,
      [&](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
        std::vector<i64> tile(depth);
        std::vector<i64> point(depth);
        for (i64 t = chunk.first; t < chunk.last; ++t) {
          const std::uint64_t t0 = trace::span_begin();
          tile_space.decode_paper(t, tile);
          trace::span_end(trace::EventKind::kIndexRecovery, t0, t);
          trace::count(trace::Counter::kRecoveryDecodes);
          // Sweep the tile's box in row-major order over ORIGINAL values.
          std::vector<i64> lo(depth), hi(depth);
          for (std::size_t k = 0; k < depth; ++k) {
            const i64 first_norm = (tile[k] - 1) * tile_sizes[k] + 1;
            const i64 last_norm =
                std::min(first_norm + tile_sizes[k] - 1, space.extent(k));
            lo[k] = space.original_value(k, first_norm);
            hi[k] = space.original_value(k, last_norm);
            point[k] = lo[k];
          }
          bool tile_done = false;
          while (!tile_done) {
            body(point);
            ++*iters;
            // Odometer over the tile box, honoring per-level steps.
            bool advanced = false;
            for (std::size_t k = depth; k-- > 0;) {
              const i64 step = space.level(k).step;
              if (point[k] + step <= hi[k]) {
                point[k] += step;
                advanced = true;
                break;
              }
              point[k] = lo[k];
            }
            tile_done = !advanced;
          }
        }
      },
      control);
  // drive counted tiles as its total; report progress in points.
  stats.iterations_requested = static_cast<std::uint64_t>(space.total());
  return stats;
}

ForStats parallel_for_nested_outer(ThreadPool& pool,
                                   std::span<const i64> extents,
                                   ScheduleParams params,
                                   const IndexedBody& body,
                                   const RunControl& control) {
  COALESCE_ASSERT(!extents.empty());
  const i64 outer = extents[0];
  // Note the granularity consequence: one "chunk" here spans whole inner
  // sweeps, so cancel latency is bounded by (chunk size) * inner volume —
  // the coalesced executor's tighter bound is itself an argument for
  // coalescing.
  ForStats stats = detail::drive(
      pool, outer, params,
      [&, extents](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
        std::vector<i64> indices(extents.size(), 1);
        for (i64 i = chunk.first; i < chunk.last; ++i) {
          indices[0] = i;
          sweep_tail(extents, 1, indices, [&](std::span<const i64> idx) {
            body(idx);
            ++*iters;
          });
        }
      },
      control);
  // drive counted outer iterations as its total; report points.
  std::uint64_t volume = 1;
  for (const i64 e : extents) volume *= static_cast<std::uint64_t>(e);
  stats.iterations_requested = volume;
  return stats;
}

ForStats parallel_for_nested_forkjoin(ThreadPool& pool,
                                      std::span<const i64> extents,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control) {
  COALESCE_ASSERT(!extents.empty());
  // Execution shape of nested DOALLs without coalescing: all levels but the
  // innermost run sequentially here, and every instance of the innermost
  // loop is its own fork-join over the pool — prod(extents[0..m-2])
  // parallel-loop initiations in total. The control is threaded into every
  // inner region; once one stops early the remaining instances are skipped
  // entirely.
  ForStats total_stats;
  total_stats.iterations_per_worker.assign(pool.worker_count(), 0);
  std::uint64_t volume = 1;
  for (const i64 e : extents) volume *= static_cast<std::uint64_t>(e);
  total_stats.iterations_requested = volume;
  const auto start = Clock::now();

  std::vector<i64> prefix(extents.size(), 1);
  const std::size_t last = extents.size() - 1;

  // Iterate the outer product space sequentially.
  std::function<void(std::size_t)> outer_sweep = [&](std::size_t level) {
    if (total_stats.cancelled || total_stats.deadline_expired) return;
    if (level == last) {
      const i64 inner = extents[last];
      const ForStats inner_stats = detail::drive(
          pool, inner, params,
          [&](std::size_t, index::Chunk chunk, std::uint64_t* iters) {
            std::vector<i64> indices(prefix.begin(), prefix.end());
            for (i64 j = chunk.first; j < chunk.last; ++j) {
              indices[last] = j;
              body(indices);
              ++*iters;
            }
          },
          control);
      total_stats.dispatch_ops += inner_stats.dispatch_ops;
      total_stats.chunks_executed += inner_stats.chunks_executed;
      total_stats.cancelled |= inner_stats.cancelled;
      total_stats.deadline_expired |= inner_stats.deadline_expired;
      for (std::size_t w = 0; w < total_stats.iterations_per_worker.size();
           ++w) {
        total_stats.iterations_per_worker[w] +=
            inner_stats.iterations_per_worker[w];
      }
      return;
    }
    for (i64 v = 1; v <= extents[level]; ++v) {
      if (total_stats.cancelled || total_stats.deadline_expired) return;
      prefix[level] = v;
      outer_sweep(level + 1);
    }
  };
  outer_sweep(0);

  total_stats.wall_seconds = seconds_since(start);
  return total_stats;
}

}  // namespace coalesce::runtime
