#include "runtime/parallel_for.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

double ForStats::imbalance() const {
  if (iterations_per_worker.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const std::uint64_t n : iterations_per_worker) {
    max = std::max(max, n);
    sum += n;
  }
  if (sum == 0) return 1.0;  // zero-trip loop: balanced by definition
  const double mean = static_cast<double>(sum) /
                      static_cast<double>(iterations_per_worker.size());
  return static_cast<double>(max) / mean;
}

// Erased shims: the scheduling loop is the shared template either way, but
// each iteration goes through the std::function — the E16 "before" path.
// (Defining a [[deprecated]] function does not warn; calling one does.)

ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      const FlatBody& body, const RunControl& control) {
  return run(pool, total, body, {.schedule = params, .control = control});
}

ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params,
                                const IndexedBody& body,
                                const RunControl& control) {
  return run(pool, space, body, {.schedule = params, .control = control});
}

ForStats parallel_for_collapsed_tiled(ThreadPool& pool,
                                      const index::CoalescedSpace& space,
                                      std::span<const i64> tile_sizes,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control) {
  return run(pool, space, body,
             {.schedule = params,
              .control = control,
              .tile_sizes = tile_sizes,
              .mode = NestMode::kTiled});
}

ForStats parallel_for_nested_outer(ThreadPool& pool,
                                   std::span<const i64> extents,
                                   ScheduleParams params,
                                   const IndexedBody& body,
                                   const RunControl& control) {
  return run(pool, extents, body,
             {.schedule = params,
              .control = control,
              .mode = NestMode::kNestedOuter});
}

ForStats parallel_for_nested_forkjoin(ThreadPool& pool,
                                      std::span<const i64> extents,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control) {
  return run(pool, extents, body,
             {.schedule = params,
              .control = control,
              .mode = NestMode::kNestedForkJoin});
}

}  // namespace coalesce::runtime
