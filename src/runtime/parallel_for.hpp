// DEPRECATED compatibility shims for the pre-LaunchOptions runtime API.
//
// PR 5 unified the five parallel_for* entry points (flat, collapsed,
// tiled, nested-outer, nested-forkjoin) behind run() + LaunchOptions in
// runtime/launch.hpp; see docs/API.md for the migration table. Everything
// here forwards to the unified API and produces identical ForStats — the
// shims exist so out-of-tree callers keep compiling (with a deprecation
// warning) for one release.
//
// Two body forms remain, as before:
//  * any lambda/function object — the templated shims forward to run()
//    and the body inlines into the scheduling loop (the fast path);
//  * a std::function (FlatBody / IndexedBody) — the erased entry points
//    are compiled in parallel_for.cpp, kept for ABI stability across
//    translation units and as the E16 "before" variant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/executor.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"

namespace coalesce::runtime {

/// Body forms. The flat body receives the coalesced index j (1-based); the
/// indexed body receives the recovered original indices.
using FlatBody = std::function<void(i64 j)>;
using IndexedBody = std::function<void(std::span<const i64> indices)>;

// ---- erased entry points (definitions in parallel_for.cpp) ------------------

[[deprecated("use run(pool, total, body, {.schedule = params, .control = "
             "control}) — see docs/API.md")]]
ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      const FlatBody& body, const RunControl& control = {});

[[deprecated("use run(pool, space, body, {.schedule = params, .control = "
             "control}) — see docs/API.md")]]
ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params,
                                const IndexedBody& body,
                                const RunControl& control = {});

[[deprecated("use run(pool, space, body, {.schedule = params, .tile_sizes "
             "= tile_sizes, ...}) — see docs/API.md")]]
ForStats parallel_for_collapsed_tiled(ThreadPool& pool,
                                      const index::CoalescedSpace& space,
                                      std::span<const i64> tile_sizes,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control = {});

[[deprecated("use run(pool, extents, body, {.schedule = params, .mode = "
             "NestMode::kNestedOuter, ...}) — see docs/API.md")]]
ForStats parallel_for_nested_outer(ThreadPool& pool,
                                   std::span<const i64> extents,
                                   ScheduleParams params,
                                   const IndexedBody& body,
                                   const RunControl& control = {});

[[deprecated("use run(pool, extents, body, {.schedule = params, .mode = "
             "NestMode::kNestedForkJoin, ...}) — see docs/API.md")]]
ForStats parallel_for_nested_forkjoin(ThreadPool& pool,
                                      std::span<const i64> extents,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control = {});

// ---- templated shims (the former executor.hpp fast-path overloads) ----------

/// Pre-LaunchOptions spelling of run(pool, total, body, ...). Lambdas and
/// function objects land here by overload resolution; an exact
/// std::function argument still takes the erased entry point above.
template <typename Body,
          std::enable_if_t<std::is_invocable_v<Body&, i64>, int> = 0>
[[deprecated("use run(pool, total, body, {.schedule = params, .control = "
             "control}) — see docs/API.md")]]
ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      Body&& body, const RunControl& control = {}) {
  return run(pool, total, std::forward<Body>(body),
             {.schedule = params, .control = control});
}

/// Pre-LaunchOptions spelling of run(pool, space, body, ...).
template <typename Body,
          std::enable_if_t<
              std::is_invocable_v<Body&, std::span<const i64>>, int> = 0>
[[deprecated("use run(pool, space, body, {.schedule = params, .control = "
             "control}) — see docs/API.md")]]
ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params, Body&& body,
                                const RunControl& control = {}) {
  return run(pool, space, std::forward<Body>(body),
             {.schedule = params, .control = control});
}

}  // namespace coalesce::runtime
