// The public runtime API: coalesced parallel-for — the OpenMP-collapse
// equivalent the paper's transformation targets — plus a flat parallel-for
// and the nested-execution baseline it is measured against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/thread_pool.hpp"

namespace coalesce::trace {
class Recorder;
}  // namespace coalesce::trace

namespace coalesce::runtime {

/// Scheduling discipline for dynamic (dispatcher-based) execution.
enum class Schedule : std::uint8_t {
  kStaticBlock,   ///< contiguous blocks, no dispatcher (one "dispatch" each)
  kStaticCyclic,  ///< round-robin single iterations, no dispatcher
  kSelf,          ///< unit self-scheduling: fetch&add, chunk 1
  kChunked,       ///< fetch&add, fixed chunk `chunk_size`
  kGuided,        ///< guided self-scheduling (GSS)
  kFactoring,     ///< factoring (batched halving)
  kTrapezoid,     ///< trapezoid self-scheduling (TSS)
};

[[nodiscard]] const char* to_string(Schedule schedule) noexcept;

struct ScheduleParams {
  Schedule kind = Schedule::kSelf;
  i64 chunk_size = 1;  ///< for kChunked
};

/// Execution report (what E5/E6 print).
struct ForStats {
  std::uint64_t dispatch_ops = 0;      ///< synchronized allocation points
  std::uint64_t chunks_executed = 0;
  std::vector<std::uint64_t> iterations_per_worker;
  double wall_seconds = 0.0;
  /// The recorder that collected this run's events, when tracing was
  /// enabled during the run (trace::Recorder::current() at entry); null
  /// otherwise. Borrowed, not owned — valid while that recorder lives.
  const trace::Recorder* trace = nullptr;

  /// max/mean of iterations_per_worker; 1.0 = perfectly balanced. Defined
  /// as 1.0 for the degenerate cases (no workers recorded, or no
  /// iterations executed at all).
  [[nodiscard]] double imbalance() const;
};

/// Body forms. The flat body receives the coalesced index j (1-based); the
/// indexed body receives the recovered original indices.
using FlatBody = std::function<void(i64 j)>;
using IndexedBody = std::function<void(std::span<const i64> indices)>;

/// Runs `body(j)` for every j in [1, total] on the pool.
ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      const FlatBody& body);

/// The coalesced nest executor: one dispatcher over the flattened space,
/// strength-reduced index recovery per chunk. This is loop coalescing as a
/// library: `parallel_for_collapsed(pool, space, {kGuided}, body)` executes
/// `body(i1..im)` for every point of the rectangular space.
ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params,
                                const IndexedBody& body);

/// Tiled coalesced executor: the space is partitioned into rectangular
/// tiles of the given per-level sizes; the scheduler hands out whole tiles
/// (one dispatch per tile), and the body sweeps each tile's points in
/// row-major order — the runtime form of transform::tile_and_coalesce,
/// trading scheduling granularity for spatial locality within a tile.
/// tile_sizes.size() must equal space.depth(); sizes need not divide the
/// extents (edge tiles are ragged).
ForStats parallel_for_collapsed_tiled(ThreadPool& pool,
                                      const index::CoalescedSpace& space,
                                      std::span<const i64> tile_sizes,
                                      ScheduleParams params,
                                      const IndexedBody& body);

/// Baseline 1 — "parallelize outer only": the outer level is scheduled
/// across workers; inner levels run sequentially inside each outer
/// iteration. One fork-join total, but outer-level granularity (the
/// imbalance victim when P does not divide extents[0]).
ForStats parallel_for_nested_outer(ThreadPool& pool,
                                   std::span<const i64> extents,
                                   ScheduleParams params,
                                   const IndexedBody& body);

/// Baseline 2 — fully nested DOALL execution: every parallel level is a
/// fresh fork-join over the pool (one per enclosing iteration), the
/// execution shape nested parallel loops have without coalescing.
ForStats parallel_for_nested_forkjoin(ThreadPool& pool,
                                      std::span<const i64> extents,
                                      ScheduleParams params,
                                      const IndexedBody& body);

/// Builds the dispatcher for a schedule over `total` iterations (shared by
/// the runtime and tests). Null for the static schedules.
[[nodiscard]] std::unique_ptr<Dispatcher> make_dispatcher(
    ScheduleParams params, i64 total, std::size_t workers);

}  // namespace coalesce::runtime
