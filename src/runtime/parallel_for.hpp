// The public runtime API: coalesced parallel-for — the OpenMP-collapse
// equivalent the paper's transformation targets — plus a flat parallel-for
// and the nested-execution baseline it is measured against.
//
// Two ways in:
//  * pass any lambda/function object — overload resolution selects the
//    templated executors in runtime/executor.hpp and the body inlines into
//    the per-worker scheduling loop (the fast path);
//  * pass a std::function (FlatBody / IndexedBody) — the erased entry
//    points below are thin wrappers over the same driver, kept for ABI
//    stability across translation units and as the E16 "before" variant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"

namespace coalesce::runtime {

/// Body forms. The flat body receives the coalesced index j (1-based); the
/// indexed body receives the recovered original indices.
using FlatBody = std::function<void(i64 j)>;
using IndexedBody = std::function<void(std::span<const i64> indices)>;

// Every entry point takes an optional RunControl (executor.hpp): a
// cancellation token and/or deadline observed at chunk-grant granularity.
// A stopped run returns partial ForStats (cancelled / deadline_expired
// set); a body exception is rethrown once at the join point and the pool
// stays reusable either way.

/// Runs `body(j)` for every j in [1, total] on the pool (erased entry
/// point; see executor.hpp for the inlining overload).
ForStats parallel_for(ThreadPool& pool, i64 total, ScheduleParams params,
                      const FlatBody& body, const RunControl& control = {});

/// The coalesced nest executor: one dispatcher over the flattened space,
/// strength-reduced index recovery per chunk. This is loop coalescing as a
/// library: `parallel_for_collapsed(pool, space, {kGuided}, body)` executes
/// `body(i1..im)` for every point of the rectangular space.
ForStats parallel_for_collapsed(ThreadPool& pool,
                                const index::CoalescedSpace& space,
                                ScheduleParams params,
                                const IndexedBody& body,
                                const RunControl& control = {});

/// Tiled coalesced executor: the space is partitioned into rectangular
/// tiles of the given per-level sizes; the scheduler hands out whole tiles
/// (one dispatch per tile), and the body sweeps each tile's points in
/// row-major order — the runtime form of transform::tile_and_coalesce,
/// trading scheduling granularity for spatial locality within a tile.
/// tile_sizes.size() must equal space.depth(); sizes need not divide the
/// extents (edge tiles are ragged).
ForStats parallel_for_collapsed_tiled(ThreadPool& pool,
                                      const index::CoalescedSpace& space,
                                      std::span<const i64> tile_sizes,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control = {});

/// Baseline 1 — "parallelize outer only": the outer level is scheduled
/// across workers; inner levels run sequentially inside each outer
/// iteration. One fork-join total, but outer-level granularity (the
/// imbalance victim when P does not divide extents[0]).
ForStats parallel_for_nested_outer(ThreadPool& pool,
                                   std::span<const i64> extents,
                                   ScheduleParams params,
                                   const IndexedBody& body,
                                   const RunControl& control = {});

/// Baseline 2 — fully nested DOALL execution: every parallel level is a
/// fresh fork-join over the pool (one per enclosing iteration), the
/// execution shape nested parallel loops have without coalescing.
ForStats parallel_for_nested_forkjoin(ThreadPool& pool,
                                      std::span<const i64> extents,
                                      ScheduleParams params,
                                      const IndexedBody& body,
                                      const RunControl& control = {});

}  // namespace coalesce::runtime
