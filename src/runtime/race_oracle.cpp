#include "runtime/race_oracle.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ir/eval.hpp"
#include "support/int_math.hpp"
#include "support/strings.hpp"

namespace coalesce::runtime {

using support::i64;

const char* to_string(ScanOutcome o) noexcept {
  switch (o) {
    case ScanOutcome::kNoConflict: return "no-conflict";
    case ScanOutcome::kConflict: return "conflict";
    case ScanOutcome::kIneligible: return "ineligible";
  }
  return "?";
}

std::string ConflictRecord::describe(const ir::SymbolTable& symbols) const {
  if (loop == nullptr) return "(no conflict)";
  if (scalar) {
    return support::format(
        "exposed read of scalar '%s' races with a write across iterations "
        "of doall '%s'",
        symbols.name(variable).c_str(), symbols.name(loop->var).c_str());
  }
  return support::format(
      "conflicting accesses to '%s' (flat index %zu) across iterations of "
      "doall '%s'",
      symbols.name(variable).c_str(), offset,
      symbols.name(loop->var).c_str());
}

namespace {

// ---- eligibility ----------------------------------------------------------

// Mirrors the differential oracle's gate (transform/postcheck.cpp): the
// interpreter cannot execute calls to unregistered builtins or read unbound
// parameters, and the scan must know an iteration budget up front.

struct Traits {
  bool has_call = false;
  bool reads_param = false;
};

void scan_expr(const ir::ExprRef& e, const ir::SymbolTable& symbols,
               Traits& t) {
  if (!e) return;
  if (e->op == ir::ExprOp::kCall) t.has_call = true;
  if (e->op == ir::ExprOp::kVarRef && e->var.valid() &&
      e->var.raw < symbols.size() &&
      symbols.kind(e->var) == ir::SymbolKind::kParam) {
    t.reads_param = true;
  }
  for (const auto& kid : e->kids) scan_expr(kid, symbols, t);
}

void scan_loop(const ir::Loop& loop, const ir::SymbolTable& symbols,
               Traits& t);

void scan_stmt(const ir::Stmt& stmt, const ir::SymbolTable& symbols,
               Traits& t) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
      for (const auto& sub : access->subscripts) scan_expr(sub, symbols, t);
    }
    scan_expr(assign->rhs, symbols, t);
  } else if (const auto* inner = std::get_if<ir::LoopPtr>(&stmt)) {
    if (*inner) scan_loop(**inner, symbols, t);
  } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    if (*guard) {
      scan_expr((*guard)->condition, symbols, t);
      for (const auto& s : (*guard)->then_body) scan_stmt(s, symbols, t);
    }
  }
}

void scan_loop(const ir::Loop& loop, const ir::SymbolTable& symbols,
               Traits& t) {
  scan_expr(loop.lower, symbols, t);
  scan_expr(loop.upper, symbols, t);
  for (const auto& stmt : loop.body) scan_stmt(stmt, symbols, t);
}

// Interval-arithmetic upper bound on total iterations over the live
// induction variables, so triangular bounds still get a finite estimate.
struct Interval {
  i64 lo = 0;
  i64 hi = 0;
};

std::optional<Interval> expr_range(
    const ir::ExprRef& e, const std::map<std::uint32_t, Interval>& env) {
  if (!e) return std::nullopt;
  switch (e->op) {
    case ir::ExprOp::kIntConst:
      return Interval{e->literal, e->literal};
    case ir::ExprOp::kVarRef: {
      const auto it = env.find(e->var.raw);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case ir::ExprOp::kAdd:
    case ir::ExprOp::kSub: {
      const auto a = expr_range(e->kids[0], env);
      const auto b = expr_range(e->kids[1], env);
      if (!a || !b) return std::nullopt;
      const bool add = e->op == ir::ExprOp::kAdd;
      const auto lo = add ? support::checked_add(a->lo, b->lo)
                          : support::checked_sub(a->lo, b->hi);
      const auto hi = add ? support::checked_add(a->hi, b->hi)
                          : support::checked_sub(a->hi, b->lo);
      if (!lo || !hi) return std::nullopt;
      return Interval{*lo, *hi};
    }
    case ir::ExprOp::kMul: {
      const auto a = expr_range(e->kids[0], env);
      const auto b = expr_range(e->kids[1], env);
      if (!a || !b) return std::nullopt;
      Interval out{INT64_MAX, INT64_MIN};
      for (const i64 x : {a->lo, a->hi}) {
        for (const i64 y : {b->lo, b->hi}) {
          const auto p = support::checked_mul(x, y);
          if (!p) return std::nullopt;
          out.lo = std::min(out.lo, *p);
          out.hi = std::max(out.hi, *p);
        }
      }
      return out;
    }
    case ir::ExprOp::kNeg: {
      const auto a = expr_range(e->kids[0], env);
      if (!a || a->lo == INT64_MIN) return std::nullopt;
      return Interval{-a->hi, -a->lo};
    }
    case ir::ExprOp::kMin:
    case ir::ExprOp::kMax: {
      const auto a = expr_range(e->kids[0], env);
      const auto b = expr_range(e->kids[1], env);
      if (!a || !b) return std::nullopt;
      if (e->op == ir::ExprOp::kMin) {
        return Interval{std::min(a->lo, b->lo), std::min(a->hi, b->hi)};
      }
      return Interval{std::max(a->lo, b->lo), std::max(a->hi, b->hi)};
    }
    default:
      return std::nullopt;  // division, reads, calls: give up conservatively
  }
}

std::optional<i64> max_iterations(const ir::Loop& loop,
                                  std::map<std::uint32_t, Interval>& env);

std::optional<i64> max_iterations_in(const std::vector<ir::Stmt>& body,
                                     std::map<std::uint32_t, Interval>& env) {
  i64 total = 0;
  for (const auto& stmt : body) {
    std::optional<i64> inner;
    if (const auto* loop = std::get_if<ir::LoopPtr>(&stmt)) {
      if (!*loop) return std::nullopt;
      inner = max_iterations(**loop, env);
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
      if (!*guard) return std::nullopt;
      inner = max_iterations_in((*guard)->then_body, env);
    } else {
      continue;
    }
    if (!inner) return std::nullopt;
    const auto sum = support::checked_add(total, *inner);
    if (!sum) return std::nullopt;
    total = *sum;
  }
  return total;
}

std::optional<i64> max_iterations(const ir::Loop& loop,
                                  std::map<std::uint32_t, Interval>& env) {
  const auto lower = expr_range(loop.lower, env);
  const auto upper = expr_range(loop.upper, env);
  if (!lower || !upper || loop.step < 1) return std::nullopt;
  const auto span = support::checked_sub(upper->hi, lower->lo);
  i64 trips = 0;
  if (span && *span >= 0) {
    trips = *span / loop.step + 1;
  }
  if (!span && upper->hi > lower->lo) return std::nullopt;  // span overflowed

  env[loop.var.raw] = Interval{lower->lo, std::max(lower->lo, upper->hi)};
  const auto inner = max_iterations_in(loop.body, env);
  env.erase(loop.var.raw);
  if (!inner) return std::nullopt;

  const auto per = support::checked_add(1, *inner);
  if (!per) return std::nullopt;
  return support::checked_mul(trips, *per);
}

// ---- the observer ---------------------------------------------------------

/// One live enclosing loop with its current induction value.
struct Frame {
  const ir::Loop* loop;
  i64 value;
};

/// First stack position where both chains hold the SAME loop object with a
/// DIFFERENT value — the loop whose iterations separate the two accesses.
/// nullopt when one chain prefixes the other (same iteration, ordered) or
/// the chains split across sibling loops (ordered by statement sequence).
std::optional<std::size_t> divergence(const std::vector<Frame>& a,
                                      const std::vector<Frame>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t p = 0; p < n; ++p) {
    if (a[p].loop != b[p].loop) return std::nullopt;
    if (a[p].value != b[p].value) return p;
  }
  return std::nullopt;
}

/// Length of the common (same loop, same value) prefix of two chains.
std::size_t agreement_depth(const std::vector<Frame>& a,
                            const std::vector<Frame>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t p = 0;
  while (p < n && a[p].loop == b[p].loop && a[p].value == b[p].value) ++p;
  return p;
}

class ConflictObserver final : public ir::ExecutionObserver {
 public:
  explicit ConflictObserver(const ScanOptions& options) : options_(options) {}

  void on_iteration(const ir::Loop& loop, i64 value) override {
    if (!stack_.empty() && stack_.back().loop == &loop) {
      stack_.back().value = value;
    } else {
      stack_.push_back(Frame{&loop, value});
    }
  }

  void on_loop_exit(const ir::Loop& loop) override {
    if (!stack_.empty() && stack_.back().loop == &loop) stack_.pop_back();
  }

  void on_array_access(ir::VarId array, std::size_t offset,
                       bool is_write) override {
    if (conflict_.has_value()) return;
    ++accesses_;
    auto& log = cells_[std::make_pair(array.raw, offset)];
    for (const ArrayAccess& prior : log) {
      if (!prior.is_write && !is_write) continue;
      const auto p = divergence(prior.stack, stack_);
      if (p.has_value() && stack_[*p].loop->parallel) {
        conflict_ = ConflictRecord{/*scalar=*/false, array, offset,
                                   stack_[*p].loop};
        return;
      }
    }
    if (log.size() >= options_.max_accesses_per_cell) {
      truncated_ = true;
      return;
    }
    log.push_back(ArrayAccess{stack_, is_write});
  }

  void on_scalar_access(ir::VarId scalar, bool is_write) override {
    if (conflict_.has_value()) return;
    ++accesses_;
    ScalarState& st = scalars_[scalar.raw];
    if (is_write) {
      // A new write endangers every earlier exposed read whose exposing
      // parallel loop separates the two chains.
      for (const ExposedRead& er : st.exposed_reads) {
        const auto p = divergence(er.stack, stack_);
        if (p.has_value() && *p >= er.agreement &&
            er.stack[*p].loop->parallel) {
          conflict_ =
              ConflictRecord{/*scalar=*/true, scalar, 0, er.stack[*p].loop};
          return;
        }
      }
      if (st.writes.size() < options_.max_accesses_per_cell) {
        st.writes.push_back(stack_);
      } else {
        truncated_ = true;
      }
      st.last_write = stack_;
      st.has_write = true;
      return;
    }
    // Exposure: a read is covered at depth p iff some earlier write landed
    // inside the same iteration of the loop at p. Sequential execution makes
    // iteration time-intervals contiguous, so the LAST write has maximal
    // agreement with this read among all earlier writes; its agreement depth
    // is exactly the cover boundary.
    const std::size_t agreement =
        st.has_write ? agreement_depth(st.last_write, stack_) : 0;
    for (const std::vector<Frame>& w : st.writes) {
      const auto p = divergence(w, stack_);
      if (p.has_value() && *p >= agreement && stack_[*p].loop->parallel) {
        conflict_ = ConflictRecord{/*scalar=*/true, scalar, 0,
                                   stack_[*p].loop};
        return;
      }
    }
    if (agreement < stack_.size()) {
      if (st.exposed_reads.size() < options_.max_accesses_per_cell) {
        st.exposed_reads.push_back(ExposedRead{stack_, agreement});
      } else {
        truncated_ = true;
      }
    }
  }

  [[nodiscard]] const std::optional<ConflictRecord>& conflict() const {
    return conflict_;
  }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  struct ArrayAccess {
    std::vector<Frame> stack;
    bool is_write;
  };
  struct ExposedRead {
    std::vector<Frame> stack;
    std::size_t agreement;  ///< exposed at every depth >= this
  };
  struct ScalarState {
    std::vector<std::vector<Frame>> writes;
    std::vector<ExposedRead> exposed_reads;
    std::vector<Frame> last_write;
    bool has_write = false;
  };

  const ScanOptions& options_;
  std::vector<Frame> stack_;
  std::map<std::pair<std::uint32_t, std::size_t>, std::vector<ArrayAccess>>
      cells_;
  std::map<std::uint32_t, ScalarState> scalars_;
  std::optional<ConflictRecord> conflict_;
  std::uint64_t accesses_ = 0;
  bool truncated_ = false;
};

// Matches the differential oracle's deterministic seeding so both shadow
// executions observe identical addresses under indirect subscripts.
void seed_arrays(ir::Evaluator& eval, const ir::SymbolTable& symbols) {
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const ir::VarId id{raw};
    if (symbols.kind(id) != ir::SymbolKind::kArray) continue;
    auto data = eval.store().data(id);
    for (std::size_t q = 0; q < data.size(); ++q) {
      data[q] = static_cast<double>((q * 31 + 17) % 97) / 7.0;
    }
  }
}

ScanResult scan(const ir::SymbolTable& symbols,
                const std::vector<const ir::Loop*>& roots,
                const ScanOptions& options) {
  ScanResult result;

  Traits traits;
  std::map<std::uint32_t, Interval> env;
  i64 total = 0;
  for (const ir::Loop* root : roots) {
    if (root == nullptr) return result;
    scan_loop(*root, symbols, traits);
    const auto iters = max_iterations(*root, env);
    if (!iters) return result;
    const auto sum = support::checked_add(total, *iters);
    if (!sum) return result;
    total = *sum;
  }
  if (traits.has_call || traits.reads_param) return result;
  if (static_cast<std::uint64_t>(total) > options.max_iterations) {
    return result;
  }

  ir::Evaluator eval(symbols);
  seed_arrays(eval, symbols);
  // Racy nests may read a scalar before any iteration writes it; the real
  // machine would read whatever the cell holds, so give every scalar a
  // defined starting value instead of tripping the unbound-read assert.
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const ir::VarId id{raw};
    if (symbols.kind(id) == ir::SymbolKind::kScalar) {
      eval.bind_scalar(id, ir::Value{std::int64_t{0}});
    }
  }

  ConflictObserver observer(options);
  eval.set_observer(&observer);
  for (const ir::Loop* root : roots) eval.run(*root);
  eval.set_observer(nullptr);

  result.iterations = eval.iterations_executed();
  result.accesses = observer.accesses();
  result.truncated = observer.truncated();
  result.conflict = observer.conflict();
  result.outcome = result.conflict.has_value() ? ScanOutcome::kConflict
                                               : ScanOutcome::kNoConflict;
  return result;
}

}  // namespace

ScanResult shadow_conflict_scan(const ir::LoopNest& nest,
                                const ScanOptions& options) {
  return scan(nest.symbols, {nest.root.get()}, options);
}

ScanResult shadow_conflict_scan(const ir::Program& program,
                                const ScanOptions& options) {
  std::vector<const ir::Loop*> roots;
  roots.reserve(program.roots.size());
  for (const auto& root : program.roots) roots.push_back(root.get());
  return scan(program.symbols, roots, options);
}

}  // namespace coalesce::runtime
