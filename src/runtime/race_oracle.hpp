// Dynamic shadow-conflict oracle: the runtime half of the race detector.
//
// The static half (analysis/race.hpp) reasons about what *may* happen; this
// module observes what *does*. It interprets the nest sequentially under an
// ExecutionObserver that records, for every memory access, the iteration
// vector of the loops enclosing it. Two accesses to one cell conflict when
//
//   * at least one is a write, and
//   * the first stack position where their iteration vectors diverge (same
//     loop object, different induction value) is a loop planned parallel.
//
// Divergence at a sequential loop, or at sibling loops, means the accesses
// are ordered by sequential semantics no matter the schedule — no conflict.
// Scalars use the per-worker-private model the parallel executor implements:
// a write never conflicts with a write, and a read conflicts only when it is
// *exposed* (no earlier write in the same iteration of the parallel loop),
// because only then does it observe another iteration's value.
//
// The soundness contract with the static half, enforced by the fuzz suite:
// if check_races() returns kRaceFree, no run of this oracle may ever report
// a conflict. The converse (kMaybeRacy nests that scan clean) is the
// measured precision gap. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ir/stmt.hpp"
#include "ir/symbol.hpp"

namespace coalesce::runtime {

enum class ScanOutcome : std::uint8_t {
  kNoConflict,  ///< the whole execution was observed; no conflict
  kConflict,    ///< a cross-iteration conflict on a parallel loop occurred
  kIneligible,  ///< the nest cannot be interpreted (calls, unbound params,
                ///< unbounded or over-budget iteration count)
};

[[nodiscard]] const char* to_string(ScanOutcome o) noexcept;

/// The first conflict found.
struct ConflictRecord {
  bool scalar = false;             ///< scalar cell vs. array element
  ir::VarId variable{};            ///< the array or scalar
  std::size_t offset = 0;          ///< flat element index (arrays only)
  const ir::Loop* loop = nullptr;  ///< the parallel loop the conflict crosses

  [[nodiscard]] std::string describe(const ir::SymbolTable& symbols) const;
};

struct ScanOptions {
  /// Refuse nests whose statically-bounded iteration total exceeds this.
  std::uint64_t max_iterations = std::uint64_t{1} << 14;
  /// Per-cell access-log cap; hitting it sets `truncated` (a kNoConflict
  /// with truncated=true may have missed conflicts on hot cells).
  std::size_t max_accesses_per_cell = 512;
};

struct ScanResult {
  ScanOutcome outcome = ScanOutcome::kIneligible;
  std::optional<ConflictRecord> conflict;  ///< set iff outcome == kConflict
  std::uint64_t iterations = 0;            ///< loop-body iterations executed
  std::uint64_t accesses = 0;              ///< memory accesses observed
  bool truncated = false;
};

/// Interprets the nest / program with deterministically seeded arrays and
/// zero-initialized scalars, logging every access. Stops logging at the
/// first conflict (the execution itself runs to completion).
[[nodiscard]] ScanResult shadow_conflict_scan(const ir::LoopNest& nest,
                                              const ScanOptions& options = {});
[[nodiscard]] ScanResult shadow_conflict_scan(const ir::Program& program,
                                              const ScanOptions& options = {});

}  // namespace coalesce::runtime
