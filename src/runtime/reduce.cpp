#include "runtime/reduce.hpp"

#include <vector>

#include "index/incremental.hpp"
#include "support/assert.hpp"

namespace coalesce::runtime {

namespace {

/// One accumulator per worker, cache-line padded.
struct alignas(64) Partial {
  double value = 0.0;
};

}  // namespace

ReduceResult parallel_reduce(ThreadPool& pool, i64 total,
                             ScheduleParams params, double identity,
                             const std::function<double(i64)>& body,
                             const Combine& combine,
                             const RunControl& control) {
  COALESCE_ASSERT(total >= 0);
  // One padded accumulator per worker; drive() hands every chunk the id of
  // the worker executing it, so chunks fold straight into their worker's
  // slot. All scheduling, cancellation, deadline, and exception behavior is
  // inherited from the shared driver.
  std::vector<Partial> partials(pool.worker_count(), Partial{identity});

  ForStats stats = detail::drive(
      pool, total, params,
      [&](std::size_t w, index::Chunk chunk, std::uint64_t* iters) {
        double acc = partials[w].value;
        for (i64 j = chunk.first; j < chunk.last; ++j) {
          acc = combine(acc, body(j));
          ++*iters;
        }
        partials[w].value = acc;
      },
      control);

  ReduceResult result;
  result.value = identity;
  for (const Partial& p : partials) {
    result.value = combine(result.value, p.value);
  }
  result.stats = std::move(stats);
  return result;
}

ReduceResult parallel_reduce_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params, double identity,
    const std::function<double(std::span<const i64>)>& body,
    const Combine& combine, const RunControl& control) {
  // Decode per iteration with a per-call buffer: correct and thread-safe.
  // (The strength-reduced odometer matters for tiny bodies — measured in
  // E7 — but reductions fold a value per point anyway; the decode is a
  // constant factor, not a scaling term.)
  return parallel_reduce(
      pool, space.total(), params, identity,
      [&space, &body](i64 j) {
        std::vector<i64> indices(space.depth());
        space.decode_original(j, indices);
        return body(indices);
      },
      combine, control);
}

ReduceResult parallel_sum(ThreadPool& pool, i64 total, ScheduleParams params,
                          const std::function<double(i64)>& body,
                          const RunControl& control) {
  return parallel_reduce(
      pool, total, params, 0.0, body,
      [](double a, double v) { return a + v; }, control);
}

ReduceResult parallel_sum_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params,
    const std::function<double(std::span<const i64>)>& body,
    const RunControl& control) {
  return parallel_reduce_collapsed(
      pool, space, params, 0.0, body,
      [](double a, double v) { return a + v; }, control);
}

}  // namespace coalesce::runtime
