#include "runtime/reduce.hpp"

namespace coalesce::runtime {

// Erased shims over run_reduce()/run_sum(); each iteration goes through
// the std::function body, exactly as before the unification.

ReduceResult parallel_reduce(ThreadPool& pool, i64 total,
                             ScheduleParams params, double identity,
                             const std::function<double(i64)>& body,
                             const Combine& combine,
                             const RunControl& control) {
  return run_reduce(pool, total, identity, body, combine,
                    {.schedule = params, .control = control});
}

ReduceResult parallel_reduce_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params, double identity,
    const std::function<double(std::span<const i64>)>& body,
    const Combine& combine, const RunControl& control) {
  return run_reduce(pool, space, identity, body, combine,
                    {.schedule = params, .control = control});
}

ReduceResult parallel_sum(ThreadPool& pool, i64 total, ScheduleParams params,
                          const std::function<double(i64)>& body,
                          const RunControl& control) {
  return run_sum(pool, total, body,
                 {.schedule = params, .control = control});
}

ReduceResult parallel_sum_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params,
    const std::function<double(std::span<const i64>)>& body,
    const RunControl& control) {
  return run_sum(pool, space, body,
                 {.schedule = params, .control = control});
}

}  // namespace coalesce::runtime
