#include "runtime/reduce.hpp"

#include <vector>

#include "index/incremental.hpp"
#include "support/assert.hpp"

namespace coalesce::runtime {

namespace {

/// One accumulator per worker, cache-line padded.
struct alignas(64) Partial {
  double value = 0.0;
};

}  // namespace

ReduceResult parallel_reduce(ThreadPool& pool, i64 total,
                             ScheduleParams params, double identity,
                             const std::function<double(i64)>& body,
                             const Combine& combine) {
  COALESCE_ASSERT(total >= 0);
  std::vector<Partial> partials(pool.worker_count(), Partial{identity});

  // parallel_for's body has no worker id; run the dispatch loop ourselves
  // via the flat driver by folding into a per-worker slot selected once in
  // the region — simplest: reuse parallel_for with a slot captured through
  // thread-local binding is fragile; instead use the same structure as the
  // executor: one region, per-worker dispatch loop.
  const std::size_t workers = pool.worker_count();
  ForStats stats;
  stats.iterations_per_worker.assign(workers, 0);
  auto dispatcher_or = make_dispatcher(params, total, workers);
  COALESCE_ASSERT_MSG(dispatcher_or.ok(),
                      "invalid schedule parameters (see make_dispatcher)");
  const std::unique_ptr<Dispatcher> dispatcher =
      std::move(dispatcher_or).value();
  std::vector<std::uint64_t> chunks(workers, 0);

  pool.run_region([&](std::size_t w) {
    double acc = identity;
    std::uint64_t local_iters = 0;
    std::uint64_t local_chunks = 0;
    auto run_chunk = [&](index::Chunk chunk) {
      for (i64 j = chunk.first; j < chunk.last; ++j) {
        acc = combine(acc, body(j));
        ++local_iters;
      }
    };
    if (dispatcher != nullptr) {
      while (true) {
        const index::Chunk chunk = dispatcher->next();
        if (chunk.empty()) break;
        ++local_chunks;
        run_chunk(chunk);
      }
    } else if (params.kind == Schedule::kStaticBlock) {
      const auto blocks =
          index::static_blocks(total, static_cast<i64>(workers));
      if (!blocks[w].empty()) {
        ++local_chunks;
        run_chunk(blocks[w]);
      }
    } else {
      for (i64 j = static_cast<i64>(w) + 1; j <= total;
           j += static_cast<i64>(workers)) {
        ++local_chunks;
        run_chunk(index::Chunk{j, j + 1});
      }
    }
    partials[w].value = acc;
    stats.iterations_per_worker[w] = local_iters;
    chunks[w] = local_chunks;
  });

  ReduceResult result;
  result.value = identity;
  for (const Partial& p : partials) {
    result.value = combine(result.value, p.value);
  }
  for (auto c : chunks) stats.chunks_executed += c;
  stats.dispatch_ops = dispatcher != nullptr ? dispatcher->dispatch_ops() : 0;
  result.stats = std::move(stats);
  return result;
}

ReduceResult parallel_reduce_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params, double identity,
    const std::function<double(std::span<const i64>)>& body,
    const Combine& combine) {
  // Decode per iteration with a per-call buffer: correct and thread-safe.
  // (The strength-reduced odometer matters for tiny bodies — measured in
  // E7 — but reductions fold a value per point anyway; the decode is a
  // constant factor, not a scaling term.)
  return parallel_reduce(
      pool, space.total(), params, identity,
      [&space, &body](i64 j) {
        std::vector<i64> indices(space.depth());
        space.decode_original(j, indices);
        return body(indices);
      },
      combine);
}

ReduceResult parallel_sum(ThreadPool& pool, i64 total, ScheduleParams params,
                          const std::function<double(i64)>& body) {
  return parallel_reduce(pool, total, params, 0.0, body,
                         [](double a, double v) { return a + v; });
}

ReduceResult parallel_sum_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params,
    const std::function<double(std::span<const i64>)>& body) {
  return parallel_reduce_collapsed(pool, space, params, 0.0, body,
                                   [](double a, double v) { return a + v; });
}

}  // namespace coalesce::runtime
