// DEPRECATED compatibility shims for the pre-LaunchOptions reduction API.
//
// PR 5 unified the four parallel_reduce* entry points behind run_reduce()
// / run_sum() + LaunchOptions in runtime/launch.hpp; see docs/API.md for
// the migration table. Everything here forwards to the unified API and
// produces identical results — the shims exist so out-of-tree callers
// keep compiling (with a deprecation warning) for one release.
#pragma once

#include <functional>

#include "index/coalesced_space.hpp"
#include "runtime/launch.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace coalesce::runtime {

/// result-combining function: fold `value` into `accumulator`.
using Combine = std::function<double(double accumulator, double value)>;

[[deprecated("use run_reduce(pool, total, identity, body, combine, "
             "{.schedule = params, .control = control}) — see docs/API.md")]]
ReduceResult parallel_reduce(ThreadPool& pool, i64 total,
                             ScheduleParams params, double identity,
                             const std::function<double(i64)>& body,
                             const Combine& combine,
                             const RunControl& control = {});

[[deprecated("use run_reduce(pool, space, identity, body, combine, "
             "{.schedule = params, .control = control}) — see docs/API.md")]]
ReduceResult parallel_reduce_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params, double identity,
    const std::function<double(std::span<const i64>)>& body,
    const Combine& combine, const RunControl& control = {});

[[deprecated("use run_sum(pool, total, body, {.schedule = params, .control "
             "= control}) — see docs/API.md")]]
ReduceResult parallel_sum(ThreadPool& pool, i64 total, ScheduleParams params,
                          const std::function<double(i64)>& body,
                          const RunControl& control = {});

[[deprecated("use run_sum(pool, space, body, {.schedule = params, .control "
             "= control}) — see docs/API.md")]]
ReduceResult parallel_sum_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params,
    const std::function<double(std::span<const i64>)>& body,
    const RunControl& control = {});

}  // namespace coalesce::runtime
