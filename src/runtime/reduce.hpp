// Parallel reductions over coalesced spaces.
//
// Reduction loops (sum += f(i)) carry a dependence on the accumulator, so
// they are not DOALLs — but the classic runtime answer is per-worker
// partial accumulators combined after the join, which this header provides
// for the flat and collapsed iteration spaces. Partials are padded to cache
// lines so workers never share one.
//
// Determinism note: combining order is worker-id order, which is fixed, but
// the *assignment* of iterations to workers varies with dynamic schedules,
// so floating-point results can differ run to run at rounding level (as
// with any parallel reduction). Use kStaticBlock for bitwise-reproducible
// results.
#pragma once

#include <functional>

#include "index/coalesced_space.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace coalesce::runtime {

/// result-combining function: fold `value` into `accumulator`.
using Combine = std::function<double(double accumulator, double value)>;

struct ReduceResult {
  double value = 0.0;
  ForStats stats;
};

/// Reduces body(j) over j in [1, total]: each worker folds locally from
/// `identity`, partials are combined in worker order. A stopped run
/// (cancelled / deadline-expired, see RunControl) returns the fold over
/// only the iterations that executed — check result.stats.completed()
/// before trusting the value.
ReduceResult parallel_reduce(ThreadPool& pool, i64 total,
                             ScheduleParams params, double identity,
                             const std::function<double(i64)>& body,
                             const Combine& combine,
                             const RunControl& control = {});

/// Reduces body(indices) over every point of the coalesced space.
ReduceResult parallel_reduce_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params, double identity,
    const std::function<double(std::span<const i64>)>& body,
    const Combine& combine, const RunControl& control = {});

/// Convenience sum-reductions.
ReduceResult parallel_sum(ThreadPool& pool, i64 total, ScheduleParams params,
                          const std::function<double(i64)>& body,
                          const RunControl& control = {});
ReduceResult parallel_sum_collapsed(
    ThreadPool& pool, const index::CoalescedSpace& space,
    ScheduleParams params,
    const std::function<double(std::span<const i64>)>& body,
    const RunControl& control = {});

}  // namespace coalesce::runtime
