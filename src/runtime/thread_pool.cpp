#include "runtime/thread_pool.hpp"

#include <exception>

#ifdef __linux__
#include <sched.h>
#endif

#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {

bool pin_current_thread_to_cpu(std::size_t cpu) noexcept {
#ifdef __linux__
  const unsigned online = std::thread::hardware_concurrency();
  if (online == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % online, &set);
  return sched_setaffinity(0, sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ThreadPool::ThreadPool(std::size_t workers, bool pin_workers)
    : pin_workers_(pin_workers) {
  COALESCE_ASSERT(workers >= 1);
  if (pin_workers_) pin_current_thread_to_cpu(0);  // caller is worker 0
  threads_.reserve(workers - 1);  // caller participates as worker 0
  for (std::size_t id = 1; id < workers; ++id) {
    threads_.emplace_back(
        [this, id](std::stop_token stop) { worker_main(id, stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    COALESCE_ASSERT_MSG(remaining_ == 0, "destroying pool mid-region");
    for (auto& t : threads_) t.request_stop();
  }
  cv_start_.notify_all();
  // jthread destructors join.
}

void ThreadPool::run_region(support::function_ref<void(std::size_t)> body) {
  COALESCE_ASSERT(static_cast<bool>(body));
  trace::ScopedSpan region(trace::EventKind::kRegion,
                           static_cast<trace::i64>(concurrency()));
  trace::count(trace::Counter::kRegions);
  {
    std::scoped_lock lock(mutex_);
    COALESCE_ASSERT_MSG(!body_, "run_region is not reentrant");
    body_ = body;
    remaining_ = threads_.size();
    ++generation_;
  }
  cv_start_.notify_all();

  // Worker 0 is the calling thread. If its body throws, the region must
  // STILL join: the other workers hold a borrowed reference to `body` and
  // are possibly mid-chunk, so unwinding past them would dangle the
  // callable and leave remaining_ > 0 (poisoning every later region and
  // the destructor assert). Capture, join, then rethrow.
  std::exception_ptr error;
  {
    trace::set_thread_worker(0);
    trace::ScopedSpan run(trace::EventKind::kWorkerRun,
                          trace::Hist::kWorkerBusyNs);
    try {
      body(0);
    } catch (...) {
      error = std::current_exception();
    }
  }

  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    body_ = {};
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::worker_main(std::size_t id, std::stop_token stop) {
  trace::set_thread_worker(static_cast<std::uint32_t>(id));
  if (pin_workers_) pin_current_thread_to_cpu(id);
  std::size_t seen_generation = 0;
  while (true) {
    support::function_ref<void(std::size_t)> body;
    // Park span, recorded only when the SAME recorder is installed at both
    // ends of the wait: a worker can stay parked across a whole recorder
    // lifetime, so holding a pointer through the wait could dangle.
    trace::Recorder* rec_at_park = trace::Recorder::current();
    const std::uint64_t parked_at =
        rec_at_park != nullptr ? rec_at_park->now_ns() : 0;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop.stop_requested() || generation_ != seen_generation;
      });
      if (stop.stop_requested()) return;
      seen_generation = generation_;
      body = body_;  // two-word copy of the non-owning reference
    }
    if (trace::Recorder* rec = trace::Recorder::current();
        rec != nullptr && rec == rec_at_park) {
      rec->record(trace::EventKind::kWorkerPark,
                  static_cast<std::uint32_t>(id), parked_at, rec->now_ns());
    }
    COALESCE_ASSERT(static_cast<bool>(body));
    {
      trace::ScopedSpan run(trace::EventKind::kWorkerRun,
                            trace::Hist::kWorkerBusyNs);
      body(id);
    }
    {
      std::scoped_lock lock(mutex_);
      --remaining_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace coalesce::runtime
