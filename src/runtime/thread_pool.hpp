// Fork-join worker pool.
//
// The runtime's execution model is the paper's: a parallel loop is a single
// fork (all workers enter a region), a per-worker scheduling loop against a
// shared dispatcher, and a join. Workers are created once and parked between
// regions so region entry costs a notification, not a thread spawn —
// mirroring the "processors grab work" model rather than task-per-iteration.
//
// Concurrency style per the C++ Core Guidelines: jthread-based, RAII
// throughout, no detached threads, condition variables always used with a
// predicate, shared state confined to this class.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "support/function_ref.hpp"

namespace coalesce::runtime {

/// Pins the calling thread to one CPU (worker affinity). `cpu` is taken
/// modulo the machine's online CPU count, so worker ids can be passed
/// directly. Linux sched_setaffinity; a no-op returning false elsewhere
/// (and when the kernel refuses, e.g. restricted cpusets). Best-effort by
/// design — callers must not depend on it for correctness.
bool pin_current_thread_to_cpu(std::size_t cpu) noexcept;

class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 1). They park until run_region is called.
  /// With pin_workers, each worker (including the calling thread, which is
  /// worker 0 — pinned here, in the constructor) is pinned to CPU
  /// (worker id mod online CPUs); best-effort, see
  /// pin_current_thread_to_cpu.
  explicit ThreadPool(std::size_t workers, bool pin_workers = false);

  /// Joins all workers. Must not be called while a region is running.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers that execute a region: the spawned threads PLUS the
  /// calling thread, which participates as worker 0. Named concurrency()
  /// precisely because it is NOT threads_.size() — a ThreadPool(4) runs
  /// regions at concurrency 4 with only 3 spawned threads.
  [[nodiscard]] std::size_t concurrency() const noexcept {
    return threads_.size() + 1;  // workers plus the calling thread
  }

  /// Fork-join: every worker (and the calling thread, as worker 0) runs
  /// `body(worker_id)` once; returns after all have finished. Not
  /// reentrant. The callable is borrowed, never copied: run_region blocks
  /// until every worker is done with it, so a caller's local lambda is
  /// safe and region entry costs no allocation.
  ///
  /// Exception contract: if worker 0's body (the calling thread) throws,
  /// the region still joins — every pool worker finishes its pass first —
  /// and the exception is rethrown after the join, leaving the pool
  /// reusable. Pool workers (id > 0) must not let exceptions escape the
  /// body (the executor's driver guarantees this by capturing them);
  /// an escape there would reach the jthread and std::terminate.
  void run_region(support::function_ref<void(std::size_t)> body);

 private:
  void worker_main(std::size_t id, std::stop_token stop);

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  support::function_ref<void(std::size_t)> body_;  // guarded by mutex_
  std::size_t generation_ = 0;   ///< bumped per region; wakes workers
  std::size_t remaining_ = 0;    ///< workers still running current region
  const bool pin_workers_;
  std::vector<std::jthread> threads_;
};

}  // namespace coalesce::runtime
