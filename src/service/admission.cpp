#include "service/admission.hpp"

#include <utility>

#include "analysis/lint.hpp"
#include "frontend/parser.hpp"
#include "ir/verify.hpp"
#include "trace/export.hpp"  // json_escape

namespace coalesce::service {

namespace {

/// Parse/verify failures predate lint Diagnostics, but clients should only
/// have to understand one rejection shape: render them as the same JSON
/// array render_json produces, one object per finding.
std::string one_finding_json(const std::string& rule,
                             const std::string& message) {
  return "[{\"rule\":\"" + trace::json_escape(rule) +
         "\",\"severity\":\"error\",\"message\":\"" +
         trace::json_escape(message) + "\"}]";
}

}  // namespace

AdmissionResult admit(std::string_view source, std::string_view source_name,
                      DiagnosticsFormat format) {
  AdmissionResult result;

  auto parsed = frontend::parse_program(source);
  if (!parsed.ok()) {
    result.reject_phase = "parse";
    result.message = parsed.error().to_string();
    result.diagnostics = one_finding_json("parse-error", result.message);
    return result;
  }
  ir::Program program = std::move(parsed).value();

  // The linter's ir-invalid rule folds verifier violations in, but run the
  // verifier separately first: a structurally broken program must never
  // reach the lint rules that walk it assuming well-formed shape.
  const auto issues = ir::verify_program(program);
  if (!issues.empty()) {
    result.reject_phase = "verify";
    result.message = ir::to_string(issues.front());
    if (issues.size() > 1) {
      result.message +=
          " (+" + std::to_string(issues.size() - 1) + " more)";
    }
    std::string all = "[";
    for (std::size_t i = 0; i < issues.size(); ++i) {
      if (i > 0) all += ",";
      all += "{\"rule\":\"ir-invalid\",\"severity\":\"error\",\"message\":\"" +
             trace::json_escape(ir::to_string(issues[i])) + "\"}";
    }
    all += "]";
    result.diagnostics = std::move(all);
    return result;
  }

  const auto diags = analysis::lint_program(program);
  if (analysis::has_errors(diags)) {
    result.reject_phase = "lint";
    std::size_t errors = 0;
    for (const auto& d : diags) {
      if (d.severity == analysis::Severity::kError) ++errors;
    }
    result.message = std::to_string(errors) + " lint error" +
                     (errors == 1 ? "" : "s") + " (" +
                     std::to_string(diags.size()) + " findings total)";
    result.diagnostics =
        format == DiagnosticsFormat::kSarif
            ? analysis::render_sarif(diags, source_name)
            : analysis::render_json(diags);
    return result;
  }

  result.admitted = true;
  std::size_t warnings = 0;
  for (const auto& d : diags) {
    if (d.severity == analysis::Severity::kWarning) ++warnings;
  }
  result.message = warnings == 0
                       ? "admitted"
                       : "admitted (" + std::to_string(warnings) +
                             " lint warnings)";
  result.program = std::move(program);
  return result;
}

}  // namespace coalesce::service
