#include "service/admission.hpp"

#include <utility>

#include "analysis/pipeline.hpp"
#include "frontend/parser.hpp"
#include "trace/export.hpp"  // json_escape

namespace coalesce::service {

namespace {

/// Parse failures predate lint Diagnostics, but clients should only have to
/// understand one rejection shape: render them as the same JSON array
/// render_json produces, one object per finding.
std::string one_finding_json(const std::string& rule,
                             const std::string& message) {
  return "[{\"rule\":\"" + trace::json_escape(rule) +
         "\",\"severity\":\"error\",\"message\":\"" +
         trace::json_escape(message) + "\"}]";
}

}  // namespace

AdmissionResult admit(std::string_view source, std::string_view source_name,
                      DiagnosticsFormat format) {
  AdmissionResult result;

  auto parsed = frontend::parse_program(source);
  if (!parsed.ok()) {
    result.reject_phase = "parse";
    result.message = parsed.error().to_string();
    result.diagnostics = one_finding_json("parse-error", result.message);
    return result;
  }
  ir::Program program = std::move(parsed).value();

  // The ordered analysis pass list (verify -> lint -> race); the first pass
  // with an error finding names the rejection phase. Later passes assume the
  // earlier ones held, so a structurally broken program never reaches the
  // rules that walk it assuming well-formed shape.
  const analysis::PipelineResult pipeline =
      analysis::run_analysis_pipeline(program);
  if (!pipeline.ok) {
    result.reject_phase = pipeline.failed_pass;
    std::size_t errors = 0;
    for (const auto& d : pipeline.diagnostics) {
      if (d.severity == analysis::Severity::kError) ++errors;
    }
    result.message = pipeline.failed_pass + " rejected: " +
                     std::to_string(errors) + " error" +
                     (errors == 1 ? "" : "s") + " (" +
                     std::to_string(pipeline.diagnostics.size()) +
                     " findings total)";
    result.diagnostics =
        format == DiagnosticsFormat::kSarif
            ? analysis::render_sarif(pipeline.diagnostics, source_name)
            : analysis::render_json(pipeline.diagnostics);
    return result;
  }

  result.admitted = true;
  std::size_t warnings = 0;
  for (const auto& d : pipeline.diagnostics) {
    if (d.severity == analysis::Severity::kWarning) ++warnings;
  }
  result.message = warnings == 0
                       ? "admitted"
                       : "admitted (" + std::to_string(warnings) +
                             " analysis warnings)";
  result.program = std::move(program);
  return result;
}

}  // namespace coalesce::service
