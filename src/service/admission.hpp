// Admission control for the coalesced service: the static half of the
// static/dynamic split. Before a program touches the shared engine it must
// (1) parse, then (2) pass the ordered analysis pipeline
// (analysis/pipeline.hpp) — the structural IR verifier, the
// overflow/legality linter, and the race detector — with no error-severity
// finding. Anything that fails is rejected at the front door with
// structured diagnostics — exactly the `coalescec --lint` / `--race-check`
// verdict, delivered over the wire instead of an exit code — so a
// `*.bad.loop`- or `*.racy.loop`-class input never consumes engine
// capacity or risks UB inside a worker.
#pragma once

#include <string>
#include <string_view>

#include "ir/stmt.hpp"

namespace coalesce::service {

/// Wire format for the diagnostics attached to a rejection.
enum class DiagnosticsFormat : std::uint8_t {
  kJson,   ///< analysis::render_json
  kSarif,  ///< analysis::render_sarif (SARIF 2.1.0)
};

struct AdmissionResult {
  bool admitted = false;
  /// Which gate refused: "parse" or the failing analysis pass ("verify",
  /// "lint", "race"); "" when admitted.
  std::string reject_phase;
  /// One-line human-readable reason (or warning tally when admitted).
  std::string message;
  /// Rendered lint findings. On rejection this is the full finding list in
  /// the requested format; parse/verify failures carry a JSON array with
  /// the same {rule,severity,message,...} shape so clients parse one form.
  std::string diagnostics;
  /// The parsed program, valid only when admitted. Analysis flags are NOT
  /// yet set — scheduling (analyze + coalesce) is the dynamic half's job.
  ir::Program program;
};

/// Runs the full admission pipeline on one program source. `source_name`
/// labels diagnostics (SARIF artifact URI); pass the tenant or connection
/// id the daemon knows the request by.
[[nodiscard]] AdmissionResult admit(std::string_view source,
                                    std::string_view source_name,
                                    DiagnosticsFormat format);

}  // namespace coalesce::service
