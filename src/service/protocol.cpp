#include "service/protocol.hpp"

#include <cstring>

namespace coalesce::service {

namespace {

using support::ErrorCode;
using support::make_error;

// Explicit little-endian shifts: the encoding is identical on every host.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked read cursor over an untrusted payload.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

  std::uint8_t u8() { return take(1) ? bytes_[pos_ - 1] : 0; }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    const std::size_t p = pos_ - 4;
    return static_cast<std::uint32_t>(bytes_[p]) |
           static_cast<std::uint32_t>(bytes_[p + 1]) << 8 |
           static_cast<std::uint32_t>(bytes_[p + 2]) << 16 |
           static_cast<std::uint32_t>(bytes_[p + 3]) << 24;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ - len),
                       bytes_.begin() + static_cast<std::ptrdiff_t>(pos_));
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

support::Error truncated(const char* what) {
  return make_error(ErrorCode::kInvalidArgument,
                    std::string("malformed payload: truncated ") + what);
}

}  // namespace

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kShed: return "shed";
    case Status::kError: return "error";
  }
  return "?";
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(request.type));
  if (request.type == MessageType::kSubmit) {
    const SubmitRequest& s = request.submit;
    put_u8(out, s.priority);
    put_u8(out, s.want_data ? 1 : 0);
    put_u32(out, s.deadline_ms);
    put_string(out, s.tenant);
    put_string(out, s.source);
    put_string(out, s.schedule);
  }
  return out;
}

support::Expected<Request> decode_request(
    const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  Request request;
  const std::uint8_t type = cur.u8();
  if (!cur.ok()) return truncated("message type");
  switch (type) {
    case static_cast<std::uint8_t>(MessageType::kPing):
    case static_cast<std::uint8_t>(MessageType::kStats):
    case static_cast<std::uint8_t>(MessageType::kShutdown):
      request.type = static_cast<MessageType>(type);
      break;
    case static_cast<std::uint8_t>(MessageType::kSubmit): {
      request.type = MessageType::kSubmit;
      SubmitRequest& s = request.submit;
      s.priority = cur.u8();
      s.want_data = cur.u8() != 0;
      s.deadline_ms = cur.u32();
      s.tenant = cur.string();
      s.source = cur.string();
      s.schedule = cur.string();
      if (!cur.ok()) return truncated("submit request");
      if (s.priority > 1) {
        return make_error(ErrorCode::kInvalidArgument,
                          "priority must be 0 (normal) or 1 (high)");
      }
      break;
    }
    default:
      return make_error(ErrorCode::kInvalidArgument,
                        "unknown message type " + std::to_string(type));
  }
  if (!cur.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "trailing bytes after request payload");
  }
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(MessageType::kResponse));
  put_u8(out, static_cast<std::uint8_t>(response.status));
  put_string(out, response.message);
  put_string(out, response.diagnostics);

  const RunSummary& r = response.run;
  put_u64(out, r.parallel_roots);
  put_u64(out, r.sequential_roots);
  put_u64(out, r.iterations);
  put_u64(out, r.iterations_requested);
  put_u64(out, r.dispatch_ops);
  put_u64(out, r.wall_ns);
  put_u8(out, r.cancelled ? 1 : 0);
  put_u8(out, r.deadline_expired ? 1 : 0);

  put_u32(out, static_cast<std::uint32_t>(response.arrays.size()));
  for (const ArrayResult& a : response.arrays) {
    put_string(out, a.name);
    put_u64(out, a.data.size());
    for (const double v : a.data) put_f64(out, v);
  }

  const ServerCounters& c = response.counters;
  put_u64(out, c.accepted);
  put_u64(out, c.rejected);
  put_u64(out, c.shed);
  put_u64(out, c.completed);
  put_u64(out, c.connections);
  put_u64(out, c.queue_depth);
  put_u64(out, c.steals);
  put_f64(out, c.mean_imbalance);
  put_u64(out, c.steals_p50);
  put_u64(out, c.steals_p99);
  return out;
}

support::Expected<Response> decode_response(
    const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  const std::uint8_t type = cur.u8();
  if (!cur.ok() || type != static_cast<std::uint8_t>(MessageType::kResponse)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "payload is not a response frame");
  }
  Response response;
  const std::uint8_t status = cur.u8();
  if (status > static_cast<std::uint8_t>(Status::kError)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unknown status " + std::to_string(status));
  }
  response.status = static_cast<Status>(status);
  response.message = cur.string();
  response.diagnostics = cur.string();

  RunSummary& r = response.run;
  r.parallel_roots = cur.u64();
  r.sequential_roots = cur.u64();
  r.iterations = cur.u64();
  r.iterations_requested = cur.u64();
  r.dispatch_ops = cur.u64();
  r.wall_ns = cur.u64();
  r.cancelled = cur.u8() != 0;
  r.deadline_expired = cur.u8() != 0;

  const std::uint32_t array_count = cur.u32();
  if (!cur.ok()) return truncated("response header");
  response.arrays.reserve(array_count);
  for (std::uint32_t a = 0; a < array_count; ++a) {
    ArrayResult array;
    array.name = cur.string();
    const std::uint64_t elems = cur.u64();
    if (!cur.ok() || elems > kMaxFrameBytes / sizeof(double)) {
      return truncated("array result");
    }
    array.data.reserve(elems);
    for (std::uint64_t e = 0; e < elems; ++e) array.data.push_back(cur.f64());
    if (!cur.ok()) return truncated("array data");
    response.arrays.push_back(std::move(array));
  }

  ServerCounters& c = response.counters;
  c.accepted = cur.u64();
  c.rejected = cur.u64();
  c.shed = cur.u64();
  c.completed = cur.u64();
  c.connections = cur.u64();
  c.queue_depth = cur.u64();
  c.steals = cur.u64();
  c.mean_imbalance = cur.f64();
  c.steals_p50 = cur.u64();
  c.steals_p99 = cur.u64();
  if (!cur.ok()) return truncated("counters");
  if (!cur.exhausted()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "trailing bytes after response payload");
  }
  return response;
}

bool write_frame(support::Socket& socket,
                 const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return socket.send_all(frame);
}

support::Expected<std::optional<std::vector<std::uint8_t>>> read_frame(
    support::Socket& socket) {
  std::uint8_t prefix[4];
  switch (socket.recv_exact(prefix)) {
    case support::Socket::RecvStatus::kOk:
      break;
    case support::Socket::RecvStatus::kEof:
      return std::optional<std::vector<std::uint8_t>>(std::nullopt);
    case support::Socket::RecvStatus::kTruncated:
      return make_error(ErrorCode::kInvalidArgument,
                        "connection closed mid-length-prefix");
    case support::Socket::RecvStatus::kError:
      return make_error(ErrorCode::kUnavailable, "recv failed");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
  if (len > kMaxFrameBytes) {
    return make_error(ErrorCode::kInvalidArgument,
                      "frame length " + std::to_string(len) +
                          " exceeds the " + std::to_string(kMaxFrameBytes) +
                          "-byte limit");
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0) {
    switch (socket.recv_exact(payload)) {
      case support::Socket::RecvStatus::kOk:
        break;
      case support::Socket::RecvStatus::kEof:
      case support::Socket::RecvStatus::kTruncated:
        return make_error(ErrorCode::kInvalidArgument,
                          "connection closed mid-frame (truncated payload)");
      case support::Socket::RecvStatus::kError:
        return make_error(ErrorCode::kUnavailable, "recv failed");
    }
  }
  return std::optional<std::vector<std::uint8_t>>(std::move(payload));
}

support::Expected<Response> call(support::Socket& socket,
                                 const Request& request) {
  if (!write_frame(socket, encode_request(request))) {
    return make_error(ErrorCode::kUnavailable, "send failed (peer gone?)");
  }
  auto frame = read_frame(socket);
  if (!frame.ok()) return frame.error();
  if (!frame.value().has_value()) {
    return make_error(ErrorCode::kUnavailable,
                      "server closed the connection without replying");
  }
  return decode_response(*frame.value());
}

}  // namespace coalesce::service
