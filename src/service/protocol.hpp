// The coalesced wire protocol: length-prefixed frames over a stream socket.
//
// Every message travels as one frame:
//
//   [u32 payload_len (little-endian)] [payload_len bytes of payload]
//
// payload_len is bounded by kMaxFrameBytes; a longer prefix is a protocol
// error and the server closes the connection. The payload's first byte is
// the MessageType; the rest is that type's fixed-order field encoding
// (little-endian integers, length-prefixed strings — see docs/SERVICE.md
// for the byte-exact layout). There is no version negotiation yet; the
// first payload byte doubles as the version discriminator if one is ever
// needed (type values stay below 0x80 for requests, responses use the
// 0x80 bit).
//
// Requests:
//   kSubmit    a .loop program + execution options (priority, deadline,
//              tenant, want_data)
//   kPing      liveness probe; answered with Status::kOk and no body
//   kStats     server counters snapshot (accepted/rejected/shed/…)
//   kShutdown  graceful stop: the server finishes in-flight programs,
//              acknowledges, and closes its listeners
//
// Responses carry a Status plus, depending on it: the execution summary
// (run stats incl. partial-progress flags), lint diagnostics rendered as
// JSON or SARIF (kRejected), or the counters report (for kStats).
//
// Encode/decode are exact inverses and never throw; decoding untrusted
// bytes returns Expected errors for truncation, trailing garbage, and
// out-of-range discriminators.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/socket.hpp"

namespace coalesce::service {

/// Frames larger than this are refused outright — a garbage length prefix
/// must not make the server try to allocate gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

enum class MessageType : std::uint8_t {
  kSubmit = 0x01,
  kPing = 0x02,
  kStats = 0x03,
  kShutdown = 0x04,
  kResponse = 0x81,
};

enum class Status : std::uint8_t {
  kOk = 0,        ///< program ran; stats (and arrays, if asked) attached
  kRejected = 1,  ///< refused at admission; diagnostics attached
  kShed = 2,      ///< refused by overload control (quota / queue full)
  kError = 3,     ///< transport/protocol/internal failure; message says why
};

/// A kSubmit payload.
struct SubmitRequest {
  std::uint8_t priority = 0;      ///< 0 = normal, 1 = high (engine class)
  bool want_data = false;         ///< return final array contents
  std::uint32_t deadline_ms = 0;  ///< 0 = none; else per-request deadline
  std::string tenant;             ///< quota bucket ("" = anonymous tenant)
  std::string source;             ///< the .loop program text
  /// Per-request schedule override in the support::parse_schedule grammar
  /// ("guided", "chunked:64", "auto", ...). "" = use the server default.
  /// An unparsable spelling is rejected at admission.
  std::string schedule;
};

struct Request {
  MessageType type = MessageType::kPing;
  SubmitRequest submit;  ///< meaningful only when type == kSubmit
};

/// Execution summary for an accepted program — the ProgramStats/ForStats
/// story flattened onto the wire, including partial-progress truth.
struct RunSummary {
  std::uint64_t parallel_roots = 0;
  std::uint64_t sequential_roots = 0;
  std::uint64_t iterations = 0;            ///< executed (partial counts less)
  std::uint64_t iterations_requested = 0;  ///< total the program asked for
  std::uint64_t dispatch_ops = 0;
  std::uint64_t wall_ns = 0;
  bool cancelled = false;
  bool deadline_expired = false;
};

/// One array's final contents (response to want_data).
struct ArrayResult {
  std::string name;
  std::vector<double> data;  ///< row-major, bit-exact from the store
};

/// Server counters snapshot (response to kStats).
struct ServerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;    ///< accepted runs that finished fully
  std::uint64_t connections = 0;  ///< connections served so far
  std::uint64_t queue_depth = 0;  ///< engine queue depth at snapshot time
  /// Inter-cluster range steals summed over every run (nonzero only when
  /// the server runs with locality and the sharded dispatcher engages).
  std::uint64_t steals = 0;
  /// Mean ForStats::imbalance (max/mean iterations per worker) over every
  /// completed parallel root; 0 when nothing has run yet.
  double mean_imbalance = 0.0;
  /// Per-root steal-count distribution, log2-bucket lower bounds.
  std::uint64_t steals_p50 = 0;
  std::uint64_t steals_p99 = 0;
};

struct Response {
  Status status = Status::kOk;
  std::string message;      ///< human-readable summary / failure detail
  std::string diagnostics;  ///< lint findings (JSON or SARIF) when rejected
  RunSummary run;           ///< valid when a submit ran (status kOk)
  std::vector<ArrayResult> arrays;  ///< kOk + want_data only
  ServerCounters counters;          ///< valid for kStats replies
};

// ---- payload encoding -----------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& request);
[[nodiscard]] support::Expected<Request> decode_request(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const Response& response);
[[nodiscard]] support::Expected<Response> decode_response(
    const std::vector<std::uint8_t>& payload);

// ---- frame I/O ------------------------------------------------------------

/// Writes one frame (length prefix + payload). False on a dead peer or a
/// payload exceeding kMaxFrameBytes.
[[nodiscard]] bool write_frame(support::Socket& socket,
                               const std::vector<std::uint8_t>& payload);

/// Reads one frame. std::nullopt = the peer closed cleanly between frames
/// (the normal end of a connection); errors cover truncated frames,
/// oversized prefixes, and transport failures.
[[nodiscard]] support::Expected<std::optional<std::vector<std::uint8_t>>>
read_frame(support::Socket& socket);

/// Convenience round-trip used by clients: send `request`, read the reply,
/// decode it. Every transport/protocol failure is folded into the Expected.
[[nodiscard]] support::Expected<Response> call(support::Socket& socket,
                                               const Request& request);

[[nodiscard]] const char* to_string(Status status) noexcept;

}  // namespace coalesce::service
