#include "service/server.hpp"

#include <unistd.h>

#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "analysis/doall.hpp"
#include "codegen/cost_model.hpp"
#include "ir/eval.hpp"
#include "ir/symbol.hpp"
#include "runtime/ir_executor.hpp"
#include "support/cancel.hpp"
#include "support/parse_schedule.hpp"
#include "trace/recorder.hpp"
#include "transform/coalesce.hpp"

namespace coalesce::service {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t default_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

support::Expected<std::unique_ptr<Server>> Server::create(
    ServerOptions options) {
  if (options.unix_path.empty() && !options.tcp) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        "server needs at least one listener (unix_path or tcp)");
  }
  support::Socket unix_listener;
  if (!options.unix_path.empty()) {
    auto listener = support::listen_unix(options.unix_path);
    if (!listener.ok()) return listener.error();
    unix_listener = std::move(listener).value();
  }
  support::Socket tcp_listener;
  std::uint16_t bound_port = 0;
  if (options.tcp) {
    auto listener = support::listen_tcp(options.tcp_port, &bound_port);
    if (!listener.ok()) return listener.error();
    tcp_listener = std::move(listener).value();
  }
  return std::unique_ptr<Server>(
      new Server(std::move(options), std::move(unix_listener),
                 std::move(tcp_listener), bound_port));
}

Server::Server(ServerOptions options, support::Socket unix_listener,
               support::Socket tcp_listener, std::uint16_t bound_tcp_port)
    : options_(std::move(options)),
      unix_listener_(std::move(unix_listener)),
      tcp_listener_(std::move(tcp_listener)),
      bound_tcp_port_(bound_tcp_port),
      engine_(std::make_unique<runtime::Engine>(
          default_workers(options_.engine_workers), options_.queue_capacity,
          options_.pin_workers)) {}

Server::~Server() { stop(); }

void Server::start() {
  COALESCE_ASSERT_MSG(!started_, "Server::start() called twice");
  started_ = true;
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
  }
}

void Server::request_stop() {
  {
    std::scoped_lock lock(stop_mutex_);
    stop_requested_ = true;
  }
  stopping_.store(true, std::memory_order_relaxed);
  stop_cv_.notify_all();
}

bool Server::wait_for_stop(int timeout_ms) {
  std::unique_lock lock(stop_mutex_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return stop_requested_; });
}

void Server::stop() {
  if (stopped_) return;
  stopped_ = true;
  request_stop();

  // 1. No new connections: half-close the listeners so the accept loops'
  //    blocking accept returns, then join them.
  unix_listener_.shutdown();
  tcp_listener_.shutdown();
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }

  // 2. No new requests: half-close every live connection. A thread parked
  //    in recv returns immediately; one mid-request finishes that request
  //    (the engine is still open) and exits on its next read.
  {
    std::scoped_lock lock(conn_mutex_);
    for (auto& conn : connections_) conn->socket.shutdown();
  }
  // Joining needs the connections_ list stable, and connection threads
  // never mutate the list (only stop() and the accept loops, both done by
  // now), so join outside the lock — a connection thread blocked on a
  // future must not find stop() holding conn_mutex_ forever.
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }

  // 3. Every accepted region retires, every future resolves.
  engine_->drain();

  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.connections = connections_served_.load(std::memory_order_relaxed);
  c.queue_depth = engine_->queue_depth();
  c.steals = steals_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(feedback_mutex_);
    c.mean_imbalance =
        imbalance_count_ > 0 ? imbalance_sum_ / static_cast<double>(
                                                    imbalance_count_)
                             : 0.0;
    c.steals_p50 = steal_hist_.percentile(0.5);
    c.steals_p99 = steal_hist_.percentile(0.99);
  }
  return c;
}

void Server::record_root_stats(const runtime::ForStats& stats) {
  std::scoped_lock lock(feedback_mutex_);
  imbalance_sum_ += stats.imbalance();
  ++imbalance_count_;
  steal_hist_.buckets[trace::Counters::bucket_of(stats.steals)] += 1;
}

void Server::accept_loop(support::Socket* listener) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = support::accept_connection(*listener);
    if (!accepted.ok()) return;             // listener broke: give up
    if (!accepted.value().valid()) return;  // listener shut down: clean exit
    connections_served_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    Connection* raw = conn.get();
    {
      std::scoped_lock lock(conn_mutex_);
      // Late race: stop() may have swept connections_ already. Serve the
      // straggler inline-closed instead of leaking an unjoined thread.
      if (stopping_.load(std::memory_order_relaxed)) {
        conn->socket.shutdown();
        continue;
      }
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void Server::serve_connection(Connection* connection) {
  support::Socket& socket = connection->socket;
  while (true) {
    auto frame = read_frame(socket);
    if (!frame.ok()) {
      // Oversized prefix / truncated frame / transport error: the stream
      // can no longer be re-synchronized. Best-effort error reply, close.
      Response err;
      err.status = Status::kError;
      err.message = frame.error().to_string();
      (void)write_frame(socket, encode_response(err));
      return;
    }
    if (!frame.value().has_value()) return;  // clean EOF between frames

    Response response;
    bool shutdown = false;
    auto request = decode_request(*frame.value());
    if (!request.ok()) {
      // The frame was delimited correctly but its payload is garbage; the
      // stream is still in sync, so report and keep serving.
      response.status = Status::kError;
      response.message = request.error().to_string();
    } else {
      response = handle(request.value(), &shutdown);
    }
    if (!write_frame(socket, encode_response(response))) return;
    if (shutdown) {
      request_stop();
      return;
    }
  }
}

Response Server::handle(const Request& request, bool* shutdown) {
  Response response;
  switch (request.type) {
    case MessageType::kPing:
      response.status = Status::kOk;
      response.message = "pong";
      return response;
    case MessageType::kStats:
      response.status = Status::kOk;
      response.message = "stats";
      response.counters = counters();
      return response;
    case MessageType::kShutdown:
      response.status = Status::kOk;
      response.message = "stopping";
      *shutdown = true;
      return response;
    case MessageType::kSubmit:
      return handle_submit(request.submit);
    case MessageType::kResponse:
      break;
  }
  response.status = Status::kError;
  response.message = "unexpected message type";
  return response;
}

bool Server::acquire_tenant_slot(const std::string& tenant) {
  std::scoped_lock lock(tenant_mutex_);
  std::size_t& inflight = tenant_inflight_[tenant];
  if (inflight >= options_.tenant_quota) return false;
  ++inflight;
  return true;
}

void Server::release_tenant_slot(const std::string& tenant) {
  std::scoped_lock lock(tenant_mutex_);
  auto it = tenant_inflight_.find(tenant);
  COALESCE_ASSERT(it != tenant_inflight_.end() && it->second > 0);
  if (--it->second == 0) tenant_inflight_.erase(it);
}

Response Server::handle_submit(const SubmitRequest& request) {
  Response response;

  // ---- static half: admission --------------------------------------------
  const std::string source_name =
      request.tenant.empty() ? "<request>" : request.tenant;
  AdmissionResult admission =
      admit(request.source, source_name, options_.diagnostics);
  if (!admission.admitted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    trace::count(trace::Counter::kRequestsRejected);
    response.status = Status::kRejected;
    response.message = admission.reject_phase + ": " + admission.message;
    response.diagnostics = std::move(admission.diagnostics);
    return response;
  }

  // The per-request schedule override is part of admission: an unparsable
  // spelling is a client error, rejected before the quota is charged.
  runtime::ScheduleParams schedule =
      options_.auto_schedule
          ? runtime::ScheduleParams{runtime::Schedule::kAuto, 1}
          : options_.schedule;
  if (!request.schedule.empty()) {
    auto parsed = support::parse_schedule(request.schedule);
    if (!parsed.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      trace::count(trace::Counter::kRequestsRejected);
      response.status = Status::kRejected;
      response.message = "schedule: " + parsed.error().to_string();
      return response;
    }
    schedule = parsed.value();
  }

  // ---- overload control: per-tenant in-flight quota ----------------------
  if (!acquire_tenant_slot(request.tenant)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    trace::count(trace::Counter::kRequestsShed);
    response.status = Status::kShed;
    response.message = "tenant quota exhausted (" +
                       std::to_string(options_.tenant_quota) +
                       " in flight); retry with backoff";
    return response;
  }
  struct SlotRelease {
    Server* server;
    const std::string& tenant;
    ~SlotRelease() { server->release_tenant_slot(tenant); }
  } slot_release{this, request.tenant};

  // ---- dynamic half: analyze, coalesce, schedule on the shared engine ----
  ir::Program current{admission.program.symbols, {}};
  for (const auto& root : admission.program.roots) {
    current.roots.push_back(ir::clone(*root));
  }
  if (options_.locality) {
    // Locality stage: reorder each nest so its most contiguous axis runs
    // innermost BEFORE coalescing fixes the dispatch order. Runs ahead of
    // the DOALL marking so parallel flags describe the permuted order.
    ir::Program next{current.symbols, {}};
    for (const auto& root : current.roots) {
      ir::LoopNest nest =
          codegen::permute_for_locality(ir::LoopNest{current.symbols, root});
      next.symbols = std::move(nest.symbols);
      next.roots.push_back(nest.root);
    }
    current = std::move(next);
  }
  {
    ir::Program next{current.symbols, {}};
    for (const auto& root : current.roots) {
      ir::LoopNest nest{current.symbols, root};
      analysis::analyze_and_mark(nest);
      next.symbols = std::move(nest.symbols);
      next.roots.push_back(nest.root);
    }
    current = std::move(next);
  }
  {
    auto result = transform::coalesce_program(current);
    current = ir::Program{std::move(result.program.symbols),
                          std::move(result.program.roots)};
  }

  runtime::LaunchOptions opts;
  opts.schedule = schedule;
  opts.locality = options_.locality;
  if (options_.jit) opts.exec = runtime::ExecMode::kJit;
  opts.priority = request.priority == 1 ? runtime::Priority::kHigh
                                        : runtime::Priority::kNormal;
  if (request.deadline_ms > 0) {
    opts.control.deadline = support::Deadline::after_ms(
        static_cast<std::int64_t>(request.deadline_ms));
  }

  ir::ArrayStore store(current.symbols);
  RunSummary& run = response.run;
  const auto start = Clock::now();
  bool first_parallel = true;
  for (const ir::LoopPtr& root : current.roots) {
    if (run.cancelled || run.deadline_expired) break;
    if (opts.control.deadline.is_set() && opts.control.deadline.expired()) {
      run.deadline_expired = true;
      break;
    }
    const bool parallel =
        root->parallel && ir::constant_trip_count(*root).has_value();
    if (parallel) {
      const ir::LoopNest nest{current.symbols, root};
      runtime::RegionFuture<runtime::ForStats> future;
      if (first_parallel) {
        // The first parallel root is the load-shedding point: a full
        // engine queue refuses the whole request instead of queueing
        // without bound. Later roots submit blocking — the request is
        // already half-run, so finishing it beats fairness.
        auto tried = runtime::try_submit_ir(*engine_, nest, store, opts);
        if (!tried.ok()) {
          response.status = Status::kError;
          response.message = tried.error().to_string();
          return response;
        }
        if (!tried.value().has_value()) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          trace::count(trace::Counter::kRequestsShed);
          response.status = Status::kShed;
          response.message =
              "engine queue full; retry with backoff";
          return response;
        }
        future = std::move(*tried.value());
        first_parallel = false;
      } else {
        auto submitted = runtime::submit_ir(*engine_, nest, store, opts);
        if (!submitted.ok()) {
          response.status = Status::kError;
          response.message = submitted.error().to_string();
          return response;
        }
        future = std::move(submitted).value();
      }
      try {
        const runtime::ForStats stats = future.get();
        run.parallel_roots += 1;
        run.iterations += stats.iterations_done();
        run.iterations_requested += stats.iterations_requested;
        run.dispatch_ops += stats.dispatch_ops;
        steals_.fetch_add(stats.steals, std::memory_order_relaxed);
        record_root_stats(stats);
        run.cancelled |= stats.cancelled;
        run.deadline_expired |= stats.deadline_expired;
      } catch (const std::exception& e) {
        response.status = Status::kError;
        response.message = std::string("execution failed: ") + e.what();
        return response;
      }
    } else {
      // Sequential roots interpret on the connection thread; the engine
      // stays free for parallel work from other requests.
      ir::Evaluator eval(current.symbols, store);
      eval.run(*root);
      run.sequential_roots += 1;
      run.iterations += eval.iterations_executed();
      run.iterations_requested += eval.iterations_executed();
    }
  }
  run.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());

  accepted_.fetch_add(1, std::memory_order_relaxed);
  trace::count(trace::Counter::kRequestsAccepted);
  const bool partial = run.cancelled || run.deadline_expired;
  if (!partial) completed_.fetch_add(1, std::memory_order_relaxed);
  response.status = Status::kOk;
  response.message =
      partial ? "partial: stopped early (see run flags)" : admission.message;

  if (request.want_data) {
    const ir::SymbolTable& symbols = current.symbols;
    for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
      const ir::VarId id{raw};
      if (symbols.kind(id) != ir::SymbolKind::kArray) continue;
      const auto data = store.data(id);
      response.arrays.push_back(ArrayResult{
          symbols.name(id), std::vector<double>(data.begin(), data.end())});
    }
  }
  return response;
}

}  // namespace coalesce::service
