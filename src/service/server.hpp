// The coalesced service: a persistent loop-program server over one shared
// Engine — the "front door" the runtime grew everything else for.
//
//   Server::create({.unix_path = "/run/coalesced.sock"}) -> start() ->
//     accept loop (unix and/or loopback TCP)
//       -> one thread per connection, many framed requests per connection
//         -> admission (parse + IR verify + 11-rule lint; reject with
//            JSON/SARIF diagnostics)                        [static half]
//         -> per-tenant in-flight quota (over quota => Status::kShed)
//         -> analyze + coalesce, then schedule through the ONE shared
//            Engine: first parallel root via try_submit (a full queue is
//            load shedding, not unbounded buffering), per-request
//            priority class and deadline                    [dynamic half]
//         -> reply with the run summary (partial-progress flags included)
//            and, on request, bit-exact final array contents
//
// Fairness comes from three mechanisms working together: admission keeps
// malformed work out entirely, per-tenant quotas stop any one tenant from
// monopolizing the engine's in-flight slots, and the engine's bounded
// two-class queue (Priority::kHigh overtakes, FIFO within a class) orders
// what remains. Saturation therefore degrades by shedding at the edge —
// clients see Status::kShed and retry with backoff — never by growing an
// unbounded queue.
//
// Shutdown: request_stop() (from a kShutdown frame, a signal, or the
// owner) flips the flag; stop() closes listeners, half-closes live
// connections so their reads return, joins every thread, and drains the
// engine — every accepted program still retires. Submissions that race
// the drain fail cleanly (ErrorCode::kUnavailable; see engine_test).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/engine.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"
#include "trace/counters.hpp"

namespace coalesce::service {

struct ServerOptions {
  /// Unix-domain socket path ("" disables; at least one listener must be
  /// enabled). The file is unlinked on construction and on stop().
  std::string unix_path;
  /// Loopback TCP listener; port 0 picks an ephemeral port (read it back
  /// via tcp_port()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  /// Engine sizing. 0 workers = hardware concurrency.
  std::size_t engine_workers = 0;
  std::size_t queue_capacity = 64;
  /// Max in-flight submissions per tenant; one more is shed. 0 sheds every
  /// submission (useful to verify a client's backoff handling).
  std::size_t tenant_quota = 8;
  /// Rendering of admission-rejection diagnostics.
  DiagnosticsFormat diagnostics = DiagnosticsFormat::kJson;
  /// Schedule used for every parallel root the service runs.
  runtime::ScheduleParams schedule{runtime::Schedule::kGuided, 1};
  /// Resolve every root through the adaptive controller instead of the
  /// fixed schedule above (Schedule::kAuto). The controller lives on the
  /// shared Engine, so repeat traffic with the same coalesced shape trains
  /// it across requests and tenants. A per-request schedule string still
  /// wins over this default.
  bool auto_schedule = false;
  /// Locality-aware execution: permute each admitted nest so its most
  /// contiguous axis runs innermost (codegen::permute_for_locality) before
  /// coalescing, and dispatch through the cache-sharded dispatcher
  /// (LaunchOptions::locality).
  bool locality = false;
  /// Pin engine workers to CPUs (best-effort; Linux sched_setaffinity).
  bool pin_workers = false;
  /// Execute parallel roots through the JIT backend (LaunchOptions::exec =
  /// ExecMode::kJit). The in-process compile cache is keyed on normalized
  /// IR, so repeat traffic pays the compile cost once; any compile failure
  /// falls back to the interpreter per root.
  bool jit = false;
};

class Server {
 public:
  /// Binds the listeners and spins up the engine; no connection is
  /// accepted until start(). Fails on bind/listen errors (socket path too
  /// long, port in use, no listener enabled).
  [[nodiscard]] static support::Expected<std::unique_ptr<Server>> create(
      ServerOptions options);

  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the accept loop(s). Call once.
  void start();

  /// Signals shutdown without blocking (safe from connection threads and
  /// the owner alike; idempotent).
  void request_stop();

  /// Waits up to timeout_ms for a stop request; true when one arrived.
  /// The daemon's main loop interleaves this with signal-flag checks.
  [[nodiscard]] bool wait_for_stop(int timeout_ms);

  /// Full graceful shutdown: close listeners, unblock + join every
  /// connection thread, drain the engine. Idempotent; must not be called
  /// from a connection thread (they call request_stop()).
  void stop();

  [[nodiscard]] const std::string& unix_path() const noexcept {
    return options_.unix_path;
  }
  /// Bound TCP port (meaningful when options.tcp; resolves port 0).
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return bound_tcp_port_;
  }
  [[nodiscard]] std::size_t engine_workers() const noexcept {
    return engine_->concurrency();
  }

  /// Snapshot of the counters a kStats request reports.
  [[nodiscard]] ServerCounters counters() const;

 private:
  Server(ServerOptions options, support::Socket unix_listener,
         support::Socket tcp_listener, std::uint16_t bound_tcp_port);

  struct Connection {
    support::Socket socket;
    std::thread thread;
  };

  void accept_loop(support::Socket* listener);
  void serve_connection(Connection* connection);
  [[nodiscard]] Response handle(const Request& request, bool* shutdown);
  [[nodiscard]] Response handle_submit(const SubmitRequest& request);

  /// Quota gate: true (and counts the tenant) when under quota.
  [[nodiscard]] bool acquire_tenant_slot(const std::string& tenant);
  void release_tenant_slot(const std::string& tenant);

  /// Folds one parallel root's ForStats into the load-quality aggregates
  /// (mean imbalance, steal distribution) that kStats reports.
  void record_root_stats(const runtime::ForStats& stats);

  ServerOptions options_;
  support::Socket unix_listener_;
  support::Socket tcp_listener_;
  std::uint16_t bound_tcp_port_ = 0;

  std::unique_ptr<runtime::Engine> engine_;

  std::vector<std::thread> accept_threads_;
  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;  // guarded by conn_mutex_

  std::mutex tenant_mutex_;
  std::unordered_map<std::string, std::size_t> tenant_inflight_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;  // guarded by stop_mutex_
  std::atomic<bool> stopping_{false};  // fast-path mirror for loops
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> connections_served_{0};
  /// Inter-cluster range steals accumulated from every run's ForStats
  /// (nonzero only with locality + the sharded dispatcher).
  std::atomic<std::uint64_t> steals_{0};

  /// Load-quality feedback folded in per parallel root; reported by kStats
  /// as mean_imbalance and the p50/p99 of the per-root steal counts.
  mutable std::mutex feedback_mutex_;
  double imbalance_sum_ = 0.0;         // guarded by feedback_mutex_
  std::uint64_t imbalance_count_ = 0;  // guarded by feedback_mutex_
  trace::HistogramSnapshot steal_hist_;  // guarded by feedback_mutex_
};

}  // namespace coalesce::service
