#include "sim/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "support/assert.hpp"
#include "trace/recorder.hpp"

namespace coalesce::sim {

double SimResult::utilization() const {
  if (completion <= 0 || busy.empty()) return 0.0;
  i64 total_busy = 0;
  for (i64 b : busy) total_busy += b;
  return static_cast<double>(total_busy) /
         (static_cast<double>(completion) * static_cast<double>(busy.size()));
}

double SimResult::speedup(const CostModel& costs) const {
  if (completion <= 0) return 0.0;
  const double serial = static_cast<double>(work_total) +
                        static_cast<double>(iterations) *
                            static_cast<double>(costs.loop_overhead);
  return serial / static_cast<double>(completion);
}

double SimResult::imbalance() const {
  if (busy.empty()) return 1.0;
  i64 max_busy = 0;
  i64 sum = 0;
  for (i64 b : busy) {
    max_busy = std::max(max_busy, b);
    sum += b;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(busy.size());
  return static_cast<double>(max_busy) / mean;
}

const char* to_string(SimSchedule schedule) noexcept {
  switch (schedule) {
    case SimSchedule::kSelf: return "self(1)";
    case SimSchedule::kChunked: return "chunked";
    case SimSchedule::kGuided: return "gss";
    case SimSchedule::kFactoring: return "factoring";
    case SimSchedule::kTrapezoid: return "tss";
  }
  return "?";
}

namespace {

std::unique_ptr<index::ChunkPolicy> make_policy(SimScheduleParams params,
                                                i64 total,
                                                std::size_t processors) {
  switch (params.kind) {
    case SimSchedule::kSelf:
      return std::make_unique<index::UnitPolicy>();
    case SimSchedule::kChunked:
      return std::make_unique<index::FixedChunkPolicy>(params.chunk_size);
    case SimSchedule::kGuided:
      return std::make_unique<index::GuidedPolicy>(
          static_cast<i64>(processors));
    case SimSchedule::kFactoring:
      return std::make_unique<index::FactoringPolicy>(
          static_cast<i64>(processors));
    case SimSchedule::kTrapezoid:
      return std::make_unique<index::TrapezoidPolicy>(
          std::max<i64>(total, 1), static_cast<i64>(processors));
  }
  return nullptr;
}

/// The event engine: processors poll a central dispenser in clock order.
/// `chunk_cost` returns (execution cycles, useful-work cycles) for a chunk;
/// `dispatch_cost` returns (cycles, synchronized ops) for claiming it.
struct ChunkCost {
  i64 cycles;
  i64 useful;
};
struct DispatchCost {
  i64 cycles;
  std::uint64_t ops;
};

SimResult run_dynamic(
    i64 total, std::size_t processors, index::ChunkPolicy& policy,
    const CostModel& costs,
    const std::function<ChunkCost(index::Chunk)>& chunk_cost,
    const std::function<DispatchCost(index::Chunk)>& dispatch_cost) {
  COALESCE_ASSERT(processors >= 1);
  SimResult result;
  result.busy.assign(processors, 0);
  result.fork_joins = 1;

  // (clock, processor id), earliest first; ids break ties deterministically.
  using Entry = std::pair<i64, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t p = 0; p < processors; ++p) {
    ready.emplace(costs.fork, p);
  }

  i64 counter_free = 0;
  i64 cursor = 1;
  i64 remaining = total;
  i64 last_finish = costs.fork;

  while (remaining > 0) {
    auto [t, p] = ready.top();
    ready.pop();

    const i64 take = policy.next_chunk(remaining);
    COALESCE_ASSERT(take >= 1 && take <= remaining);
    const index::Chunk chunk{cursor, cursor + take};
    cursor += take;
    remaining -= take;

    const DispatchCost d = dispatch_cost(chunk);
    if (costs.serialized_dispatch) {
      const i64 start = std::max(t, counter_free);
      t = start + d.cycles;
      counter_free = t;
    } else {
      t += d.cycles;
    }
    result.dispatch_ops += d.ops;
    result.chunks += 1;

    const ChunkCost c = chunk_cost(chunk);
    if (costs.record_trace) {
      result.trace.push_back(ChunkEvent{p, t, t + c.cycles, chunk});
    }
    // Mirror the simulated execution into an installed recorder: simulated
    // processor p becomes a worker timeline, one cycle == one nanosecond.
    if constexpr (trace::kEnabled) {
      if (trace::Recorder* rec = trace::Recorder::current()) {
        rec->record(trace::EventKind::kSimChunk,
                    static_cast<std::uint32_t>(p),
                    static_cast<std::uint64_t>(t),
                    static_cast<std::uint64_t>(t + c.cycles), chunk.first,
                    chunk.size());
        rec->counters().add(p, trace::Counter::kSimChunks);
        rec->counters().observe(p, trace::Hist::kChunkSize,
                                static_cast<std::uint64_t>(chunk.size()));
      }
    }
    t += c.cycles;
    result.busy[p] += c.useful;
    last_finish = std::max(last_finish, t);
    ready.emplace(t, p);
  }

  result.completion = last_finish + costs.barrier;
  return result;
}

/// Execution cycles of a coalesced chunk: full decode at entry, odometer +
/// loop bookkeeping per iteration, body times from the workload.
ChunkCost coalesced_chunk_cost(const index::CoalescedSpace& space,
                               const CostModel& costs, const Workload& work,
                               index::Chunk chunk) {
  const i64 len = chunk.size();
  i64 body = 0;
  for (i64 j = chunk.first; j < chunk.last; ++j) body += work.time(j);
  const i64 decode = static_cast<i64>(space.divisions_per_decode_paper()) *
                     costs.recovery_division;
  i64 cycles = decode + body + len * costs.loop_overhead +
               (len - 1) * costs.recovery_increment;
  if (costs.row_switch > 0) {
    // Row switches: one at chunk entry plus one per innermost-row boundary
    // crossed inside the chunk (row length = innermost extent).
    const i64 row = space.extent(space.depth() - 1);
    const i64 crossings = (chunk.last - 2) / row - (chunk.first - 1) / row;
    cycles += costs.row_switch * (1 + std::max<i64>(crossings, 0));
  }
  return ChunkCost{cycles, body};
}

}  // namespace

SimResult simulate_coalesced_dynamic(const index::CoalescedSpace& space,
                                     std::size_t processors,
                                     SimScheduleParams schedule,
                                     const CostModel& costs,
                                     const Workload& work) {
  COALESCE_ASSERT(work.iterations() == space.total());
  auto policy = make_policy(schedule, space.total(), processors);
  SimResult result = run_dynamic(
      space.total(), processors, *policy, costs,
      [&](index::Chunk chunk) {
        return coalesced_chunk_cost(space, costs, work, chunk);
      },
      [&](index::Chunk) {
        return DispatchCost{costs.dispatch, 1};
      });
  result.work_total = work.total_time();
  result.iterations = space.total();
  return result;
}

SimResult simulate_coalesced_static(const index::CoalescedSpace& space,
                                    std::size_t processors,
                                    const CostModel& costs,
                                    const Workload& work) {
  COALESCE_ASSERT(work.iterations() == space.total());
  SimResult result;
  result.busy.assign(processors, 0);
  result.fork_joins = 1;
  result.work_total = work.total_time();
  result.iterations = space.total();

  i64 last_finish = costs.fork;
  const auto blocks =
      index::static_blocks(space.total(), static_cast<i64>(processors));
  for (std::size_t p = 0; p < processors; ++p) {
    if (blocks[p].empty()) continue;
    const ChunkCost c = coalesced_chunk_cost(space, costs, work, blocks[p]);
    result.busy[p] = c.useful;
    result.chunks += 1;
    if constexpr (trace::kEnabled) {
      if (trace::Recorder* rec = trace::Recorder::current()) {
        rec->record(trace::EventKind::kSimChunk,
                    static_cast<std::uint32_t>(p),
                    static_cast<std::uint64_t>(costs.fork),
                    static_cast<std::uint64_t>(costs.fork + c.cycles),
                    blocks[p].first, blocks[p].size());
        rec->counters().add(p, trace::Counter::kSimChunks);
      }
    }
    last_finish = std::max(last_finish, costs.fork + c.cycles);
  }
  result.completion = last_finish + costs.barrier;
  return result;
}

SimResult simulate_nested_multicounter(const index::CoalescedSpace& space,
                                       std::size_t processors,
                                       const CostModel& costs,
                                       const Workload& work) {
  COALESCE_ASSERT(work.iterations() == space.total());
  const std::size_t depth = space.depth();
  std::vector<i64> digits(depth);

  // Self-scheduling each level separately: iteration j touches the
  // innermost counter, plus one outer counter per leading digit that just
  // wrapped (trailing run of 1s in the normalized index vector).
  auto counters_touched = [&](i64 j) -> std::uint64_t {
    space.decode_mixed_radix(j, digits);
    std::size_t trailing_ones = 0;
    for (std::size_t k = depth; k-- > 0;) {
      if (digits[k] != 1) break;
      ++trailing_ones;
    }
    return 1 + std::min(trailing_ones, depth - 1);
  };

  index::UnitPolicy unit;  // level counters hand out single iterations
  SimResult result = run_dynamic(
      space.total(), processors, unit, costs,
      [&](index::Chunk chunk) {
        // No recovery arithmetic: the nest keeps its original indices.
        const i64 body = work.time(chunk.first);
        return ChunkCost{body + costs.loop_overhead, body};
      },
      [&](index::Chunk chunk) {
        const std::uint64_t ops = counters_touched(chunk.first);
        return DispatchCost{static_cast<i64>(ops) * costs.dispatch, ops};
      });
  result.work_total = work.total_time();
  result.iterations = space.total();
  return result;
}

SimResult simulate_nested_forkjoin(const index::CoalescedSpace& space,
                                   std::size_t processors,
                                   SimScheduleParams schedule,
                                   const CostModel& costs,
                                   const Workload& work) {
  COALESCE_ASSERT(work.iterations() == space.total());
  COALESCE_ASSERT(space.depth() >= 1);
  const i64 inner = space.extent(space.depth() - 1);
  const i64 instances = space.total() / inner;

  SimResult result;
  result.busy.assign(processors, 0);
  result.work_total = work.total_time();
  result.iterations = space.total();

  i64 clock = 0;
  for (i64 inst = 0; inst < instances; ++inst) {
    const i64 base = inst * inner;  // flat offset of this inner instance
    auto policy = make_policy(schedule, inner, processors);
    const SimResult one = run_dynamic(
        inner, processors, *policy, costs,
        [&](index::Chunk chunk) {
          i64 body = 0;
          for (i64 j = chunk.first; j < chunk.last; ++j)
            body += work.time(base + j);
          return ChunkCost{body + chunk.size() * costs.loop_overhead, body};
        },
        [&](index::Chunk) {
          return DispatchCost{costs.dispatch, 1};
        });
    // The instance runs fork..barrier; outer sweep adds its own bookkeeping.
    clock += one.completion + costs.loop_overhead;
    result.dispatch_ops += one.dispatch_ops;
    result.chunks += one.chunks;
    result.fork_joins += 1;
    for (std::size_t p = 0; p < processors; ++p) {
      result.busy[p] += one.busy[p];
    }
  }
  result.completion = clock;
  return result;
}

SimResult simulate_nested_static_outer(const index::CoalescedSpace& space,
                                       std::size_t processors,
                                       const CostModel& costs,
                                       const Workload& work) {
  COALESCE_ASSERT(work.iterations() == space.total());
  const i64 outer = space.extent(0);
  const i64 stride = space.total() / outer;  // flat iterations per outer iter

  SimResult result;
  result.busy.assign(processors, 0);
  result.fork_joins = 1;
  result.work_total = work.total_time();
  result.iterations = space.total();

  const auto blocks = index::static_blocks(outer, static_cast<i64>(processors));
  i64 last_finish = costs.fork;
  for (std::size_t p = 0; p < processors; ++p) {
    if (blocks[p].empty()) continue;
    i64 body = 0;
    for (i64 i = blocks[p].first; i < blocks[p].last; ++i) {
      for (i64 r = 1; r <= stride; ++r) {
        body += work.time((i - 1) * stride + r);
      }
    }
    const i64 iters = blocks[p].size() * stride;
    result.busy[p] = body;
    result.chunks += 1;
    last_finish =
        std::max(last_finish, costs.fork + body + iters * costs.loop_overhead);
  }
  result.completion = last_finish + costs.barrier;
  return result;
}

i64 serial_time(const Workload& work, const CostModel& costs) {
  return work.total_time() + work.iterations() * costs.loop_overhead;
}

std::string render_gantt(const SimResult& result, i64 cycles_per_char) {
  COALESCE_ASSERT(cycles_per_char >= 1);
  const std::size_t procs = result.busy.size();
  const std::size_t width = static_cast<std::size_t>(
      (result.completion + cycles_per_char - 1) / cycles_per_char);
  std::vector<std::string> rows(procs, std::string(width, '.'));
  for (const ChunkEvent& event : result.trace) {
    const auto from = static_cast<std::size_t>(event.start / cycles_per_char);
    auto to = static_cast<std::size_t>(
        (event.end + cycles_per_char - 1) / cycles_per_char);
    if (to > width) to = width;
    for (std::size_t col = from; col < to; ++col) {
      rows[event.proc][col] = '#';
    }
  }
  std::string out;
  for (std::size_t p = 0; p < procs; ++p) {
    char label[16];
    std::snprintf(label, sizeof label, "P%-3zu |", p);
    out += label;
    out += rows[p];
    out += "|\n";
  }
  return out;
}

}  // namespace coalesce::sim
