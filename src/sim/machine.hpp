// Deterministic discrete-event model of a P-processor shared-memory machine
// executing a parallel loop — the reproduction's substitute for the paper's
// evaluation hardware (see DESIGN.md, "Hardware substitution").
//
// Every cost is in abstract "cycles". A simulation is a pure function of its
// inputs, so experiment tables are exactly reproducible. The execution
// disciplines mirror the runtime module one-for-one:
//
//  * coalesced dynamic — one shared counter, chunks by any policy, index
//    recovery paid per chunk (full decode) + per iteration (odometer);
//  * coalesced static  — block or cyclic pre-partition, no dispatch ops;
//  * nested multi-counter — self-scheduling each level of the original
//    nest: iteration j pays one dispatch per loop level whose counter is
//    touched (1 + number of odometer carries), the traffic coalescing
//    collapses to a single counter;
//  * nested fork-join  — every instance of the innermost parallel loop is a
//    separate fork + dynamic loop + barrier (prod of outer extents
//    instances), the shape nested DOALLs have without coalescing;
//  * nested static-outer — the outer level is block-partitioned, inner
//    levels sequential: the P ∤ N1 utilization victim of experiment E2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>
#include <string>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "sim/workload.hpp"

namespace coalesce::sim {

struct CostModel {
  i64 dispatch = 5;        ///< sigma: one synchronized allocation (fetch&add)
  i64 fork = 100;          ///< initiating a parallel loop instance
  i64 barrier = 50;        ///< joining a parallel loop instance
  i64 loop_overhead = 2;   ///< per-iteration bookkeeping (the classic 2 instr)
  i64 recovery_division = 3;  ///< one div/mod of index recovery
  i64 recovery_increment = 1; ///< one odometer advance (strength-reduced)
  bool serialized_dispatch = false;  ///< no combining network: counter is a
                                     ///< serial resource (dispatches queue)
  bool record_trace = false;  ///< record per-chunk events into SimResult::trace
  /// Locality model: cost charged whenever execution moves to a different
  /// innermost row — once at each chunk start and once per odometer carry
  /// inside a chunk. Models the cache-line/page switch of leaving a row;
  /// 0 disables the model. Large contiguous chunks amortize it (E15).
  i64 row_switch = 0;
};

/// One chunk execution in a simulation trace: processor `proc` was busy on
/// coalesced iterations [chunk.first, chunk.last) during [start, end).
struct ChunkEvent {
  std::size_t proc = 0;
  i64 start = 0;
  i64 end = 0;
  index::Chunk chunk;
};

struct SimResult {
  i64 completion = 0;             ///< cycles from fork to after final barrier
  std::uint64_t dispatch_ops = 0; ///< synchronized allocation operations
  std::uint64_t chunks = 0;
  std::uint64_t fork_joins = 0;   ///< parallel-loop instances executed
  /// Per-chunk execution trace, recorded when CostModel::record_trace is
  /// set. Empty otherwise.
  std::vector<ChunkEvent> trace;
  std::vector<i64> busy;          ///< per-processor useful-work cycles
  i64 work_total = 0;             ///< sum of body times (useful work)
  i64 iterations = 0;             ///< iterations executed

  /// Fraction of processor-cycles spent on useful body work.
  [[nodiscard]] double utilization() const;
  /// Serial time / completion, serial time = work + loop overhead per iter.
  [[nodiscard]] double speedup(const CostModel& costs) const;
  /// max(busy) / mean(busy); 1.0 = perfectly balanced useful work.
  [[nodiscard]] double imbalance() const;
};

/// Which schedule drives a dynamic simulation.
enum class SimSchedule : std::uint8_t {
  kSelf,       ///< unit chunks
  kChunked,    ///< fixed chunk size
  kGuided,     ///< GSS
  kFactoring,  ///< factoring (batched halving)
  kTrapezoid,  ///< TSS
};
[[nodiscard]] const char* to_string(SimSchedule schedule) noexcept;

struct SimScheduleParams {
  SimSchedule kind = SimSchedule::kSelf;
  i64 chunk_size = 1;
};

// ---- coalesced executions ---------------------------------------------------

/// Dynamic self-scheduled execution of the coalesced loop over `space`.
[[nodiscard]] SimResult simulate_coalesced_dynamic(
    const index::CoalescedSpace& space, std::size_t processors,
    SimScheduleParams schedule, const CostModel& costs,
    const Workload& work);

/// Static block execution of the coalesced loop (one contiguous chunk per
/// processor; sizes differ by at most one iteration).
[[nodiscard]] SimResult simulate_coalesced_static(
    const index::CoalescedSpace& space, std::size_t processors,
    const CostModel& costs, const Workload& work);

// ---- nested (uncoalesced) executions ---------------------------------------

/// Self-scheduling every level of the original nest with one counter per
/// level: iteration j costs (1 + carries(j)) dispatches.
[[nodiscard]] SimResult simulate_nested_multicounter(
    const index::CoalescedSpace& space, std::size_t processors,
    const CostModel& costs, const Workload& work);

/// Fork-join per innermost-loop instance: outer levels swept sequentially,
/// each inner instance is fork + dynamic loop + barrier.
[[nodiscard]] SimResult simulate_nested_forkjoin(
    const index::CoalescedSpace& space, std::size_t processors,
    SimScheduleParams schedule, const CostModel& costs,
    const Workload& work);

/// Outer level block-partitioned across processors; inner levels sequential
/// inside each outer iteration. One fork-join, no dispatch ops.
[[nodiscard]] SimResult simulate_nested_static_outer(
    const index::CoalescedSpace& space, std::size_t processors,
    const CostModel& costs, const Workload& work);

/// Serial execution time of the whole space (baseline for speedups).
[[nodiscard]] i64 serial_time(const Workload& work, const CostModel& costs);

/// ASCII Gantt chart of a recorded trace: one row per processor, '#' for
/// busy spans, '.' for idle, one character per `cycles_per_char` cycles.
[[nodiscard]] std::string render_gantt(const SimResult& result,
                                       i64 cycles_per_char);

}  // namespace coalesce::sim
