#include "sim/workload.hpp"

#include "support/assert.hpp"

namespace coalesce::sim {

Workload Workload::constant(i64 iterations, i64 cost) {
  COALESCE_ASSERT(iterations >= 0);
  COALESCE_ASSERT(cost >= 0);
  return Workload(std::vector<i64>(static_cast<std::size_t>(iterations), cost));
}

Workload Workload::from_model(support::WorkModel model, i64 iterations, i64 a,
                              i64 b, std::uint64_t seed) {
  COALESCE_ASSERT(iterations >= 0);
  support::Rng rng(seed);
  return Workload(support::synthesize_work(
      model, static_cast<std::size_t>(iterations), a, b, rng));
}

Workload Workload::triangular(i64 n1, i64 n2, i64 base) {
  COALESCE_ASSERT(n1 >= 1 && n2 >= 1 && base >= 1);
  std::vector<i64> times;
  times.reserve(static_cast<std::size_t>(n1 * n2));
  for (i64 i = 1; i <= n1; ++i) {
    for (i64 j = 1; j <= n2; ++j) {
      times.push_back(j <= i ? base : 1);
    }
  }
  return Workload(std::move(times));
}

Workload::Workload(std::vector<i64> times) : times_(std::move(times)) {
  for (i64 t : times_) {
    COALESCE_ASSERT(t >= 0);
    total_ += t;
  }
}

i64 Workload::time(i64 j) const {
  COALESCE_ASSERT(j >= 1 && j <= iterations());
  return times_[static_cast<std::size_t>(j - 1)];
}

}  // namespace coalesce::sim
