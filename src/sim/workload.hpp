// Synthetic workloads for the machine simulator: a per-iteration body-time
// table over the flattened (row-major) iteration space of a nest.
#pragma once

#include <cstdint>
#include <vector>

#include "support/int_math.hpp"
#include "support/rng.hpp"

namespace coalesce::sim {

using support::i64;

class Workload {
 public:
  /// Every iteration costs `cost` units.
  static Workload constant(i64 iterations, i64 cost);

  /// Per-iteration costs drawn from a work model (deterministic given seed).
  static Workload from_model(support::WorkModel model, i64 iterations, i64 a,
                             i64 b, std::uint64_t seed);

  /// Triangular-nest profile over an n1 x n2 space: iteration (i, j) costs
  /// `base` when j <= i and `0` handling is avoided by costing 1 otherwise —
  /// models guarded bodies (`if (j <= i) ...`), the classic imbalance case.
  static Workload triangular(i64 n1, i64 n2, i64 base);

  /// Explicit table.
  explicit Workload(std::vector<i64> times);

  [[nodiscard]] i64 iterations() const noexcept {
    return static_cast<i64>(times_.size());
  }
  /// Body time of 1-based flattened iteration j.
  [[nodiscard]] i64 time(i64 j) const;
  [[nodiscard]] i64 total_time() const noexcept { return total_; }

 private:
  std::vector<i64> times_;
  i64 total_ = 0;
};

}  // namespace coalesce::sim
