// Lightweight always-on assertion for invariants that guard correctness of
// the transformation and schedulers. Unlike <cassert> these fire in release
// builds too: a violated invariant in a compiler transformation silently
// produces wrong code, which is strictly worse than aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace coalesce::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "coalesce: invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace coalesce::support

#define COALESCE_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                           \
          : ::coalesce::support::assert_fail(#expr, __FILE__, __LINE__,    \
                                             nullptr))

#define COALESCE_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                           \
          : ::coalesce::support::assert_fail(#expr, __FILE__, __LINE__,    \
                                             (msg)))
