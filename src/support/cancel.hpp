// Cooperative cancellation and deadlines for long-running parallel work.
//
// The runtime's scheduling model makes bounded-latency cancellation cheap:
// a coalesced nest has exactly ONE shared counter handing out chunks, so a
// cancel needs to do exactly one thing — stop that counter — and every
// worker observes it at its next chunk grant. These types are the caller's
// half of that contract:
//
//  * CancellationSource owns the shared cancel flag and requests the stop;
//  * CancellationToken is the cheap copyable view the runtime polls
//    (one relaxed atomic load per chunk grant, nothing when default-
//    constructed);
//  * Deadline is an absolute steady-clock cutoff the runtime checks at the
//    same granularity.
//
// Both are observed at chunk-grant granularity only: a worker always
// finishes the chunk it already owns, so cancel latency is bounded by one
// chunk per worker and the wait-free dispatch path stays wait-free (the
// runtime "poisons" the shared counter past N instead of adding any check
// to the fetch&add itself).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace coalesce::support {

/// Copyable, thread-safe view of a cancellation flag. Default-constructed
/// tokens are inert: valid() is false and cancelled() is always false, so
/// "no cancellation support" costs one branch.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token is connected to a CancellationSource.
  [[nodiscard]] bool valid() const noexcept { return flag_ != nullptr; }

  /// True once the connected source requested cancellation. Relaxed load:
  /// the runtime re-checks at every chunk grant, so no ordering is needed
  /// beyond eventual visibility.
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag) noexcept
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owner of a cancellation flag. Copyable (copies share the flag); safe to
/// signal from any thread, including after every token holder returned —
/// the flag is shared_ptr-backed, so no lifetime coupling to the runtime.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  [[nodiscard]] CancellationToken token() const noexcept {
    return CancellationToken(flag_);
  }

  /// Idempotent; wakes nothing (cancellation is polled, never signalled).
  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Absolute steady-clock cutoff. Default-constructed deadlines never
/// expire; is_set() gates the clock read so an unset deadline costs one
/// branch per chunk grant, no syscall.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< never expires

  [[nodiscard]] static Deadline never() noexcept { return Deadline{}; }

  /// Expires `d` from now (negative or zero durations are already expired).
  [[nodiscard]] static Deadline after(Clock::duration d) noexcept {
    return Deadline(Clock::now() + d);
  }

  [[nodiscard]] static Deadline after_ms(std::int64_t ms) noexcept {
    return after(std::chrono::milliseconds(ms));
  }

  [[nodiscard]] static Deadline at(Clock::time_point when) noexcept {
    return Deadline(when);
  }

  [[nodiscard]] bool is_set() const noexcept { return set_; }

  /// True once now >= the cutoff. Always false for an unset deadline.
  [[nodiscard]] bool expired() const noexcept {
    return set_ && Clock::now() >= when_;
  }

  /// Time left before expiry; zero once expired, Clock::duration::max()
  /// when unset.
  [[nodiscard]] Clock::duration remaining() const noexcept {
    if (!set_) return Clock::duration::max();
    const auto now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

 private:
  explicit Deadline(Clock::time_point when) noexcept
      : when_(when), set_(true) {}

  Clock::time_point when_{};
  bool set_ = false;
};

}  // namespace coalesce::support
