#include "support/error.hpp"

namespace coalesce::support {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kIllegalTransform:
      return "illegal_transform";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kOverflow:
      return "overflow";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kVerifyFailed:
      return "verify_failed";
    case ErrorCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = support::to_string(code);
  out += ": ";
  out += message;
  return out;
}

}  // namespace coalesce::support
