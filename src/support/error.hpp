// Expected-style error handling for operations that can fail for reasons the
// caller must handle (illegal transformation requests, malformed IR). We avoid
// exceptions across module boundaries; internal invariant violations use
// COALESCE_ASSERT instead.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/assert.hpp"

namespace coalesce::support {

/// Why an operation was rejected. Codes are coarse; `message` carries detail.
enum class ErrorCode {
  kInvalidArgument,   ///< caller passed a value outside the documented domain
  kIllegalTransform,  ///< transformation legality check failed
  kUnsupported,       ///< construct recognized but intentionally not handled
  kOverflow,          ///< 64-bit arithmetic would overflow
  kNotFound,          ///< named entity missing from a symbol table
  kVerifyFailed,      ///< post-pass IR verification or oracle check failed
  kUnavailable,       ///< resource closed or unreachable (engine, socket)
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

struct Error {
  ErrorCode code;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

/// Minimal expected<T, Error>. Intentionally tiny: value-or-error plus the
/// few accessors the codebase needs, no monadic machinery.
template <typename T>
class Expected {
 public:
  Expected(T value) : payload_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : payload_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    COALESCE_ASSERT_MSG(ok(), "Expected accessed without a value");
    return std::get<T>(payload_);
  }
  [[nodiscard]] const T& value() const& {
    COALESCE_ASSERT_MSG(ok(), "Expected accessed without a value");
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    COALESCE_ASSERT_MSG(ok(), "Expected accessed without a value");
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] const Error& error() const& {
    COALESCE_ASSERT_MSG(!ok(), "Expected::error() on a value");
    return std::get<Error>(payload_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> payload_;
};

}  // namespace coalesce::support
