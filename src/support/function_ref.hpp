// support::function_ref — a non-owning, trivially-copyable callable
// reference (two words: object pointer + trampoline).
//
// The runtime's fork-join region passes a callable to every worker and
// blocks until all of them return, so the callable always outlives the
// call. std::function would pay type erasure with a possible heap
// allocation per region; function_ref pays a single indirect call and
// nothing else, which is what the paper's "one fetch&add per dispatch"
// cost model assumes region entry looks like.
//
// Lifetime rule: a function_ref must not outlive the callable it was bound
// to. Bind only to callables that live across the call (locals in the
// calling frame are fine for blocking calls like ThreadPool::run_region).
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace coalesce::support {

template <typename Signature>
class function_ref;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Test with operator bool.
  constexpr function_ref() noexcept = default;

  /// Binds to any callable invocable as R(Args...). Non-owning.
  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                    std::is_invocable_r_v<R, F&, Args...>,
                int> = 0>
  function_ref(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return std::invoke(
              *static_cast<std::remove_reference_t<F>*>(obj),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return call_ != nullptr;
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace coalesce::support
