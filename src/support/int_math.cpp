#include "support/int_math.hpp"

#include <limits>

#include "support/assert.hpp"

namespace coalesce::support {

i64 floor_div(i64 a, i64 b) noexcept {
  COALESCE_ASSERT(b != 0);
  i64 q = a / b;
  i64 r = a % b;
  // Truncation rounded toward zero; fix up when remainder and divisor
  // disagree in sign (the mathematical floor is one less).
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

i64 ceil_div(i64 a, i64 b) noexcept {
  COALESCE_ASSERT(b != 0);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

i64 mod_floor(i64 a, i64 b) noexcept {
  COALESCE_ASSERT(b != 0);
  i64 r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

i64 gcd(i64 a, i64 b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

i64 lcm(i64 a, i64 b) noexcept {
  if (a == 0 || b == 0) return 0;
  i64 g = gcd(a, b);
  auto prod = checked_mul(a / g, b);
  COALESCE_ASSERT_MSG(prod.has_value(), "lcm overflow");
  i64 r = *prod;
  return r < 0 ? -r : r;
}

std::optional<i64> checked_mul(i64 a, i64 b) noexcept {
  i64 out = 0;
  if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<i64> checked_add(i64 a, i64 b) noexcept {
  i64 out = 0;
  if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<i64> checked_sub(i64 a, i64 b) noexcept {
  i64 out = 0;
  if (__builtin_sub_overflow(a, b, &out)) return std::nullopt;
  return out;
}

std::optional<i64> checked_product(std::span<const i64> xs) noexcept {
  i64 acc = 1;
  for (i64 x : xs) {
    COALESCE_ASSERT(x >= 0);
    auto next = checked_mul(acc, x);
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

ExtGcd ext_gcd(i64 a, i64 b) noexcept {
  // Iterative extended Euclid keeping Bezout coefficients.
  i64 old_r = a, r = b;
  i64 old_s = 1, s = 0;
  i64 old_t = 0, t = 1;
  while (r != 0) {
    i64 q = old_r / r;
    i64 tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  if (old_r < 0) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  return ExtGcd{old_r, old_s, old_t};
}

i64 trip_count(i64 lo, i64 hi, i64 step) noexcept {
  COALESCE_ASSERT(step > 0);
  if (hi < lo) return 0;
  return (hi - lo) / step + 1;
}

void mixed_radix_decode(i64 value, std::span<const i64> radices,
                        std::span<i64> digits_out) noexcept {
  COALESCE_ASSERT(radices.size() == digits_out.size());
  COALESCE_ASSERT(value >= 0);
  // Peel digits from least significant (innermost radix) upward.
  for (std::size_t k = radices.size(); k-- > 0;) {
    i64 radix = radices[k];
    COALESCE_ASSERT(radix >= 1);
    digits_out[k] = value % radix;
    value /= radix;
  }
  COALESCE_ASSERT_MSG(value == 0, "value out of range for radices");
}

i64 mixed_radix_encode(std::span<const i64> digits,
                       std::span<const i64> radices) noexcept {
  COALESCE_ASSERT(digits.size() == radices.size());
  i64 acc = 0;
  for (std::size_t k = 0; k < digits.size(); ++k) {
    COALESCE_ASSERT(radices[k] >= 1);
    COALESCE_ASSERT(digits[k] >= 0 && digits[k] < radices[k]);
    acc = acc * radices[k] + digits[k];
  }
  return acc;
}

std::vector<i64> suffix_products(std::span<const i64> radices) {
  std::vector<i64> out(radices.size() + 1, 1);
  for (std::size_t k = radices.size(); k-- > 0;) {
    auto prod = checked_mul(out[k + 1], radices[k]);
    COALESCE_ASSERT_MSG(prod.has_value(), "suffix product overflow");
    out[k] = *prod;
  }
  return out;
}

}  // namespace coalesce::support
