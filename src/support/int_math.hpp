// Exact integer arithmetic used throughout the coalescing index maps.
//
// C++ integer division truncates toward zero; the paper's index-recovery
// formulas are stated with mathematical floor/ceiling division. These helpers
// implement the mathematical operations for all sign combinations so the
// transformation remains correct for loops with negative bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace coalesce::support {

using i64 = std::int64_t;
using u64 = std::uint64_t;

/// Mathematical floor division: largest q with q*b <= a. Requires b != 0.
[[nodiscard]] i64 floor_div(i64 a, i64 b) noexcept;

/// Mathematical ceiling division: smallest q with q*b >= a. Requires b != 0.
[[nodiscard]] i64 ceil_div(i64 a, i64 b) noexcept;

/// Mathematical (Euclidean-style) modulus paired with floor_div:
/// a == floor_div(a, b) * b + mod_floor(a, b), result has the sign of b.
[[nodiscard]] i64 mod_floor(i64 a, i64 b) noexcept;

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
[[nodiscard]] i64 gcd(i64 a, i64 b) noexcept;

/// Least common multiple; returns 0 when either argument is 0.
/// Aborts on overflow (COALESCE_ASSERT) since callers use it for small radices.
[[nodiscard]] i64 lcm(i64 a, i64 b) noexcept;

/// a*b with overflow detection. nullopt on overflow.
[[nodiscard]] std::optional<i64> checked_mul(i64 a, i64 b) noexcept;

/// a+b with overflow detection. nullopt on overflow.
[[nodiscard]] std::optional<i64> checked_add(i64 a, i64 b) noexcept;

/// a-b with overflow detection. nullopt on overflow.
[[nodiscard]] std::optional<i64> checked_sub(i64 a, i64 b) noexcept;

/// Product of a span of non-negative extents with overflow detection.
/// Empty product is 1.
[[nodiscard]] std::optional<i64> checked_product(std::span<const i64> xs) noexcept;

/// Extended Euclid: returns (g, x, y) with a*x + b*y == g == gcd(a, b).
struct ExtGcd {
  i64 g;
  i64 x;
  i64 y;
};
[[nodiscard]] ExtGcd ext_gcd(i64 a, i64 b) noexcept;

/// Number of iterations of a normalized-for loop `for (v = lo; v <= hi; v += step)`
/// with step > 0; zero when the range is empty.
[[nodiscard]] i64 trip_count(i64 lo, i64 hi, i64 step) noexcept;

/// Decompose `value` (0-based) into mixed-radix digits for the given radices,
/// most-significant digit first; i.e. value = sum_k digit[k] * prod_{j>k} radix[j].
/// Requires 0 <= value < prod(radices) and every radix >= 1.
void mixed_radix_decode(i64 value, std::span<const i64> radices,
                        std::span<i64> digits_out) noexcept;

/// Inverse of mixed_radix_decode.
[[nodiscard]] i64 mixed_radix_encode(std::span<const i64> digits,
                                     std::span<const i64> radices) noexcept;

/// Suffix products: out[k] = radices[k] * radices[k+1] * ... * radices[m-1],
/// plus a final sentinel out[m] = 1. (These are the paper's `P_k` terms.)
[[nodiscard]] std::vector<i64> suffix_products(std::span<const i64> radices);

}  // namespace coalesce::support
