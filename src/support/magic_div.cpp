#include "support/magic_div.hpp"

namespace coalesce::support {

MagicDiv::MagicDiv(i64 divisor) : divisor_(divisor) {
  COALESCE_ASSERT_MSG(divisor >= 1, "MagicDiv divisor must be positive");
  const u64 d = static_cast<u64>(divisor);
  unsigned ell = 0;  // ceil(log2 d); d <= 2^63 - 1 keeps ell <= 63
  while ((u64{1} << ell) < d) ++ell;
  shift_ = 63 + ell;
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 p = static_cast<unsigned __int128>(1) << shift_;
  magic_ = static_cast<u64>((p + d - 1) / d);  // ceil(2^shift / d)
#else
  magic_ = 0;  // divide() falls back to the hardware divider
#endif
}

}  // namespace coalesce::support
