// support::MagicDiv — division by a runtime-invariant divisor via one
// multiply and one shift (Granlund & Montgomery, "Division by Invariant
// Integers using Multiplication", PLDI 1994).
//
// The coalesced index maps divide by the suffix products P_k on every full
// decode and every seek; the P_k are fixed for the lifetime of a
// CoalescedSpace, so the ~20-40 cycle hardware divide can be strength-
// reduced to a widening multiply plus shift the same way E7 strength-
// reduces the per-iteration decode to an odometer. This is the
// non-contiguous-chunk counterpart: GSS/factoring hand workers chunks that
// are NOT adjacent, so each chunk still needs one full decode, and that
// decode is where the divisions live.
//
// Scheme (round-up method, specialised to dividends < 2^63): for divisor
// d >= 1 let L = ceil(log2 d) and p = 63 + L. Then
//
//     m = ceil(2^p / d)   satisfies   floor(n*m / 2^p) == floor(n / d)
//
// for every 0 <= n < 2^63. Proof of the bound: write m*d = 2^p + e with
// 0 <= e < d <= 2^L; for n = q*d + r, n*m/2^p = q + (r*2^p + n*e)/(d*2^p),
// and the fraction is < 1 because n*e < 2^63 * 2^L = 2^p. m itself fits in
// 64 bits because d > 2^(L-1) implies m < 2^(63+L)/2^(L-1) = 2^64 (and for
// d a power of two, m = 2^63 exactly). All dividends in the decode paths
// are coalesced indices minus one, i.e. in [0, total) with total < 2^63,
// so the precondition always holds.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace coalesce::support {

using i64 = std::int64_t;
using u64 = std::uint64_t;

class MagicDiv {
 public:
  /// Precomputes the magic pair for `divisor` (>= 1).
  explicit MagicDiv(i64 divisor);

  [[nodiscard]] i64 divisor() const noexcept { return divisor_; }

  /// floor(n / divisor) without a hardware divide. Requires n < 2^63.
  [[nodiscard]] u64 divide(u64 n) const noexcept {
#if defined(__SIZEOF_INT128__)
    return static_cast<u64>(
        (static_cast<unsigned __int128>(n) * magic_) >> shift_);
#else
    return n / static_cast<u64>(divisor_);
#endif
  }

  /// n mod divisor, via the quotient (still division-free).
  [[nodiscard]] u64 remainder(u64 n) const noexcept {
    return n - divide(n) * static_cast<u64>(divisor_);
  }

  /// The precomputed multiplier and shift (exposed for tests/benchmarks).
  [[nodiscard]] u64 magic() const noexcept { return magic_; }
  [[nodiscard]] unsigned shift() const noexcept { return shift_; }

 private:
  u64 magic_ = 0;
  unsigned shift_ = 0;
  i64 divisor_ = 1;
};

}  // namespace coalesce::support
