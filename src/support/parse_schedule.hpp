// One parser for every user-facing schedule spelling.
//
// coalescec --schedule=, coalesced --schedule=, coalesce-client
// --schedule=, the wire protocol's per-request override, and the bench
// harness all accept the same grammar through this function, so a
// schedule that works on one surface works on all of them — and the
// error message enumerates the menu exactly once, in one place.
//
// Header-only in support/ but aware of runtime/dispatcher.hpp: an
// accepted include-order inversion — the parser produces ScheduleParams
// and nothing in runtime/ depends back on it.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>

#include "runtime/dispatcher.hpp"
#include "support/error.hpp"

namespace coalesce::support {

/// Parses a schedule spelling into ScheduleParams. Grammar (case-sensitive):
///
///   static-block | block      kStaticBlock
///   static-cyclic | cyclic    kStaticCyclic
///   self                      kSelf (fetch&add, chunk 1)
///   chunked:N | chunk:N       kChunked with chunk size N >= 1
///   guided                    kGuided (GSS)
///   factoring                 kFactoring
///   trapezoid | tss           kTrapezoid (TSS)
///   auto                      kAuto (adaptive controller resolves at launch)
///
/// serialized/sharded are launch-surface knobs (--locality etc.), not part
/// of the spelling; they default to false here.
[[nodiscard]] inline Expected<runtime::ScheduleParams> parse_schedule(
    std::string_view text) {
  runtime::ScheduleParams params;
  if (text == "static-block" || text == "block") {
    params.kind = runtime::Schedule::kStaticBlock;
    return params;
  }
  if (text == "static-cyclic" || text == "cyclic") {
    params.kind = runtime::Schedule::kStaticCyclic;
    return params;
  }
  if (text == "self") {
    params.kind = runtime::Schedule::kSelf;
    return params;
  }
  if (text == "guided") {
    params.kind = runtime::Schedule::kGuided;
    return params;
  }
  if (text == "factoring") {
    params.kind = runtime::Schedule::kFactoring;
    return params;
  }
  if (text == "trapezoid" || text == "tss") {
    params.kind = runtime::Schedule::kTrapezoid;
    return params;
  }
  if (text == "auto") {
    params.kind = runtime::Schedule::kAuto;
    return params;
  }
  constexpr std::string_view kChunkedPrefix = "chunked:";
  constexpr std::string_view kChunkPrefix = "chunk:";
  std::string_view size_text;
  if (text.rfind(kChunkedPrefix, 0) == 0) {
    size_text = text.substr(kChunkedPrefix.size());
  } else if (text.rfind(kChunkPrefix, 0) == 0) {
    size_text = text.substr(kChunkPrefix.size());
  }
  if (!size_text.empty()) {
    const std::string digits(size_text);
    char* end = nullptr;
    const long long n = std::strtoll(digits.c_str(), &end, 10);
    if (end != digits.c_str() && *end == '\0' && n >= 1) {
      params.kind = runtime::Schedule::kChunked;
      params.chunk_size = static_cast<i64>(n);
      return params;
    }
  }
  return make_error(
      ErrorCode::kInvalidArgument,
      "unknown schedule '" + std::string(text) +
          "'; valid kinds: static-block, static-cyclic, self, chunked:N, "
          "guided, factoring, trapezoid, auto");
}

}  // namespace coalesce::support
