#include "support/rng.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace coalesce::support {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero xoshiro state even for seed 0.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  COALESCE_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) noexcept {
  COALESCE_ASSERT(mean > 0.0);
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Polar method; loop terminates with probability 1.
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * factor;
}

Rng Rng::split() noexcept {
  return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL);
}

std::vector<std::int64_t> synthesize_work(WorkModel model, std::size_t n,
                                          std::int64_t a, std::int64_t b,
                                          Rng& rng) {
  std::vector<std::int64_t> work(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t t = 1;
    switch (model) {
      case WorkModel::kUniformConstant:
        t = a;
        break;
      case WorkModel::kUniformRange:
        t = rng.uniform_int(a, b);
        break;
      case WorkModel::kDecreasing: {
        // First iteration costs a, last costs b (a >= b typical).
        const double frac =
            n <= 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
        t = a + static_cast<std::int64_t>(
                    std::llround(frac * static_cast<double>(b - a)));
        break;
      }
      case WorkModel::kIncreasing: {
        // Linear from a to b; callers pass a < b for increasing work.
        const double frac =
            n <= 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
        t = a + static_cast<std::int64_t>(
                    std::llround(frac * static_cast<double>(b - a)));
        break;
      }
      case WorkModel::kBimodal:
        t = rng.uniform01() < 0.9 ? a : b;
        break;
      case WorkModel::kExponential:
        t = static_cast<std::int64_t>(
            std::llround(rng.exponential(static_cast<double>(a))));
        break;
    }
    work[i] = t < 1 ? 1 : t;
  }
  return work;
}

const char* to_string(WorkModel model) noexcept {
  switch (model) {
    case WorkModel::kUniformConstant:
      return "constant";
    case WorkModel::kUniformRange:
      return "uniform";
    case WorkModel::kDecreasing:
      return "decreasing";
    case WorkModel::kIncreasing:
      return "increasing";
    case WorkModel::kBimodal:
      return "bimodal";
    case WorkModel::kExponential:
      return "exponential";
  }
  return "unknown";
}

}  // namespace coalesce::support
