// Deterministic pseudo-random generation for workload synthesis.
//
// Benchmarks and property tests must be reproducible across runs and
// machines, so we implement a fixed algorithm (splitmix64 seeding a
// xoshiro256**) rather than relying on implementation-defined std::
// distributions. All distribution mappings here are exact-specified.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace coalesce::support {

/// xoshiro256** seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via polar Box-Muller (no cached spare; deterministic).
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> xs) noexcept {
    for (std::size_t i = xs.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

  /// A fresh generator whose stream is independent of this one.
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

/// Generates n values from the given per-iteration work-time model. Used by
/// the simulator's workload synthesis; kept here so tests can reuse it.
enum class WorkModel {
  kUniformConstant,  ///< every iteration costs `a`
  kUniformRange,     ///< uniform integer in [a, b]
  kDecreasing,       ///< linearly decreasing from a to b (triangular loops)
  kIncreasing,       ///< linearly increasing from a to b
  kBimodal,          ///< a with prob 0.9, b with prob 0.1 (stragglers)
  kExponential,      ///< exponential with mean a, clamped to >= 1
};

[[nodiscard]] std::vector<std::int64_t> synthesize_work(WorkModel model,
                                                        std::size_t n,
                                                        std::int64_t a,
                                                        std::int64_t b,
                                                        Rng& rng);

[[nodiscard]] const char* to_string(WorkModel model) noexcept;

}  // namespace coalesce::support
