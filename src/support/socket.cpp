#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coalesce::support {

namespace {

Error errno_error(const char* what) {
  return make_error(ErrorCode::kUnavailable,
                    std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

bool Socket::send_all(std::span<const std::uint8_t> bytes) noexcept {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Socket::RecvStatus Socket::recv_exact(std::span<std::uint8_t> bytes) noexcept {
  if (fd_ < 0) return RecvStatus::kError;
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n =
        ::recv(fd_, bytes.data() + got, bytes.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (n == 0) {
      return got == 0 ? RecvStatus::kEof : RecvStatus::kTruncated;
    }
    got += static_cast<std::size_t>(n);
  }
  return RecvStatus::kOk;
}

Expected<Socket> listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unix socket path empty or longer than " +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_error("socket");
  ::unlink(path.c_str());  // a stale socket file from a previous run
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return errno_error(("bind " + path).c_str());
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return errno_error("listen");
  }
  return sock;
}

Expected<Socket> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unix socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_error("socket");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return errno_error(("connect " + path).c_str());
  }
  return sock;
}

Expected<Socket> listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
                            int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_error("socket");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return errno_error("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return errno_error("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return errno_error("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Expected<Socket> connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorCode::kInvalidArgument,
                      "connect_tcp wants a dotted-quad address, got " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_error("socket");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return errno_error("connect");
  }
  return sock;
}

Expected<Socket> accept_connection(Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // shutdown() on the listener surfaces as EINVAL (or ECONNABORTED on
    // some kernels); report it as the clean no-more-connections signal.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF) {
      return Socket();
    }
    return errno_error("accept");
  }
}

int poll_readable(const Socket& socket, int timeout_ms) {
  pollfd pfd{socket.fd(), POLLIN, 0};
  while (true) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    return r < 0 ? -1 : r;
  }
}

}  // namespace coalesce::support
