// Thin RAII layer over POSIX stream sockets — the transport under the
// coalesced service (src/service). Unix-domain sockets are the default
// (same-host clients, filesystem permissions); loopback TCP is optional.
//
// Scope is deliberately narrow: blocking stream sockets, whole-buffer
// send/recv (the framing layer above never wants partial I/O), EINTR
// retried, SIGPIPE suppressed per-send. Anything fancier (non-blocking,
// TLS, multiplexing) belongs to a future revision; the protocol layer
// (service/protocol.hpp) only depends on the surface here.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "support/error.hpp"

namespace coalesce::support {

/// Movable owner of one socket file descriptor. Default-constructed (or
/// moved-from) sockets are invalid; every operation on an invalid socket
/// fails cleanly rather than asserting, because peers close connections
/// whenever they like.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  void close() noexcept;

  /// Half-closes both directions without releasing the fd. A thread blocked
  /// in recv_exact()/accept_connection() on this socket returns promptly —
  /// the server's shutdown path uses exactly this to unblock connection
  /// threads it does not own.
  void shutdown() noexcept;

  /// Writes the entire span, retrying short writes and EINTR. SIGPIPE is
  /// suppressed (MSG_NOSIGNAL); a dead peer surfaces as `false`.
  [[nodiscard]] bool send_all(std::span<const std::uint8_t> bytes) noexcept;

  enum class RecvStatus : std::uint8_t {
    kOk,         ///< buffer completely filled
    kEof,        ///< peer closed cleanly before the first byte
    kTruncated,  ///< peer closed mid-buffer (a cut-off frame)
    kError,      ///< transport error
  };

  /// Reads exactly bytes.size() bytes (retrying short reads and EINTR).
  [[nodiscard]] RecvStatus recv_exact(std::span<std::uint8_t> bytes) noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens on a Unix-domain socket at `path`, unlinking any stale
/// socket file first. Fails when the path exceeds sockaddr_un capacity.
[[nodiscard]] Expected<Socket> listen_unix(const std::string& path,
                                           int backlog = 128);
[[nodiscard]] Expected<Socket> connect_unix(const std::string& path);

/// Binds + listens on loopback TCP. `port` 0 picks an ephemeral port; the
/// bound port is written to *bound_port when non-null.
[[nodiscard]] Expected<Socket> listen_tcp(std::uint16_t port,
                                          std::uint16_t* bound_port = nullptr,
                                          int backlog = 128);
[[nodiscard]] Expected<Socket> connect_tcp(const std::string& host,
                                           std::uint16_t port);

/// Blocking accept. An invalid returned socket (with ok() true) means the
/// listener was shut down — the accept loop's clean exit signal.
[[nodiscard]] Expected<Socket> accept_connection(Socket& listener);

/// poll(2) for readability: 1 ready, 0 timed out, -1 error. The daemon's
/// accept loop uses the timeout to interleave signal-flag checks.
[[nodiscard]] int poll_readable(const Socket& socket, int timeout_ms);

}  // namespace coalesce::support
