#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace coalesce::support {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::min() const noexcept {
  COALESCE_ASSERT(count_ > 0);
  return min_;
}

double Accumulator::max() const noexcept {
  COALESCE_ASSERT(count_ > 0);
  return max_;
}

double Accumulator::mean() const noexcept {
  COALESCE_ASSERT(count_ > 0);
  return mean_;
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double p) {
  COALESCE_ASSERT(!xs.empty());
  COALESCE_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: smallest value with at least p% of the data at or below it.
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

double coefficient_of_variation(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  if (acc.count() == 0 || acc.mean() == 0.0) return 0.0;
  return acc.stddev() / acc.mean();
}

double imbalance_ratio(std::span<const double> xs) {
  COALESCE_ASSERT(!xs.empty());
  Accumulator acc;
  for (double x : xs) acc.add(x);
  COALESCE_ASSERT(acc.mean() > 0.0);
  return acc.max() / acc.mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  COALESCE_ASSERT(hi > lo);
  COALESCE_ASSERT(bins > 0);
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor(frac * static_cast<double>(counts_.size())));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<std::ptrdiff_t>(counts_.size()))
    idx = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(idx)];
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double bin_lo = lo_ + bin_width * static_cast<double>(i);
    char label[64];
    std::snprintf(label, sizeof label, "%10.2f | ", bin_lo);
    out += label;
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) /
                        static_cast<double>(peak) * static_cast<double>(width));
    out.append(bar, '#');
    out += " ";
    out += std::to_string(counts_[i]);
    out += '\n';
  }
  return out;
}

}  // namespace coalesce::support
