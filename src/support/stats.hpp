// Summary statistics for benchmark reporting (completion times, dispatch
// counts, utilization). Small, allocation-light, and exact where possible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace coalesce::support {

/// Streaming accumulator: count/min/max/mean/variance (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile by nearest-rank on a copy of the data. p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Coefficient of variation (stddev / mean); 0 when mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Load-imbalance metric used by the experiments: max(xs) / mean(xs).
/// 1.0 is perfectly balanced. Requires non-empty xs with positive mean.
[[nodiscard]] double imbalance_ratio(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range clamp to the boundary buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace coalesce::support
