#include "support/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace coalesce::support {

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string index_name(std::size_t level) {
  return "i" + std::to_string(level);
}

std::string repeat(std::string_view piece, std::size_t n) {
  std::string out;
  out.reserve(piece.size() * n);
  for (std::size_t i = 0; i < n; ++i) out += piece;
  return out;
}

std::string indent(std::string_view body, std::size_t spaces) {
  const std::string pad(spaces, ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t nl = body.find('\n', start);
    const std::string_view line =
        body.substr(start, nl == std::string_view::npos ? body.size() - start
                                                        : nl - start);
    if (!line.empty()) out += pad;
    out += line;
    if (nl == std::string_view::npos) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace coalesce::support
