// Small string-formatting helpers shared by the IR printer, the code
// generator, and the benchmark tables.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace coalesce::support {

/// Join the elements with a separator: join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string join(std::span<const std::string> parts,
                               std::string_view sep);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "i0", "i1", ... canonical induction-variable names.
[[nodiscard]] std::string index_name(std::size_t level);

/// Repeat a string n times.
[[nodiscard]] std::string repeat(std::string_view piece, std::size_t n);

/// Indent every line of `body` by `spaces` spaces.
[[nodiscard]] std::string indent(std::string_view body, std::size_t spaces);

/// Split on a single-character separator; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace coalesce::support
