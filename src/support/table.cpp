#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace coalesce::support {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  COALESCE_ASSERT_MSG(pending_.empty(),
                      "row() while a builder row is in progress");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::cell(std::string text) {
  pending_.push_back(std::move(text));
  return *this;
}

Table& Table::cell(std::int64_t v) {
  return cell(std::to_string(v));
}

Table& Table::cell(std::uint64_t v) {
  return cell(std::to_string(v));
}

Table& Table::cell(double v, int precision) {
  return cell(format("%.*f", precision, v));
}

Table& Table::end_row() {
  rows_.push_back(std::move(pending_));
  pending_.clear();
  return *this;
}

std::string Table::render() const {
  // Compute column widths over header + rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&](const std::vector<std::string>& r) {
    std::string line = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      line += " ";
      line += cell;
      line.append(width[c] - cell.size(), ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < cols; ++c) {
    rule.append(width[c] + 2, '-');
    rule += "+";
  }
  rule += "\n";

  std::string out;
  out += "== " + title_ + " ==\n";
  out += rule;
  if (!header_.empty()) {
    out += render_row(header_);
    out += rule;
  }
  for (const auto& r : rows_) out += render_row(r);
  out += rule;
  return out;
}

void Table::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace coalesce::support
