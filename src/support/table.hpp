// ASCII table rendering for the benchmark harnesses. Every experiment binary
// prints tables in the same format so EXPERIMENTS.md can quote them directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coalesce::support {

/// Column-aligned text table with a title, a header row, and data rows.
/// Cells are strings; numeric helpers format consistently (fixed precision).
class Table {
 public:
  explicit Table(std::string title);

  Table& header(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  /// Append a cell to the row under construction (builder style).
  Table& cell(std::string text);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(double v, int precision = 2);
  /// Finish the row under construction.
  Table& end_row();

  [[nodiscard]] std::string render() const;
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace coalesce::support
