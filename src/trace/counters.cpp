#include "trace/counters.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "support/assert.hpp"

namespace coalesce::trace {

const char* to_string(Counter counter) noexcept {
  switch (counter) {
    case Counter::kRegions: return "regions";
    case Counter::kDispatchOps: return "dispatch_ops";
    case Counter::kChunksExecuted: return "chunks_executed";
    case Counter::kIterations: return "iterations";
    case Counter::kRecoveryDecodes: return "recovery_decodes";
    case Counter::kRecoverySteps: return "recovery_steps";
    case Counter::kSimChunks: return "sim_chunks";
    case Counter::kCancels: return "cancels";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kRegionsEnqueued: return "regions_enqueued";
    case Counter::kRegionsRetired: return "regions_retired";
    case Counter::kRequestsAccepted: return "requests_accepted";
    case Counter::kRequestsRejected: return "requests_rejected";
    case Counter::kRequestsShed: return "requests_shed";
    case Counter::kSteals: return "steals";
    case Counter::kJitCompiles: return "jit_compiles";
    case Counter::kJitCacheHits: return "jit_cache_hits";
    case Counter::kJitFallbacks: return "jit_fallbacks";
    case Counter::kAdaptiveRetunes: return "adaptive_retunes";
    case Counter::kAdaptiveHits: return "adaptive_hits";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* to_string(Hist hist) noexcept {
  switch (hist) {
    case Hist::kDispatchLatencyNs: return "dispatch_latency_ns";
    case Hist::kChunkSize: return "chunk_size";
    case Hist::kWorkerBusyNs: return "worker_busy_ns";
    case Hist::kRegionQueueDepth: return "region_queue_depth";
    case Hist::kJitCompileNs: return "jit_compile_ns";
    case Hist::kCount_: break;
  }
  return "?";
}

std::uint64_t HistogramSnapshot::total() const noexcept {
  std::uint64_t n = 0;
  for (auto b : buckets) n += b;
  return n;
}

double HistogramSnapshot::approx_mean() const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] == 0) continue;
    // Geometric midpoint of [2^b, 2^(b+1)).
    sum += static_cast<double>(buckets[b]) *
           std::exp2(static_cast<double>(b) + 0.5);
  }
  return sum / static_cast<double>(n);
}

std::uint64_t HistogramSnapshot::percentile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based, ceiling — p100 is the last
  // sample, p0 the first.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return b == 0 ? 0 : (std::uint64_t{1} << b);
    }
  }
  return std::uint64_t{1} << (kHistBuckets - 1);
}

std::string HistogramSnapshot::render(std::size_t width) const {
  std::uint64_t peak = 0;
  std::size_t top = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] > 0) top = b;
    peak = std::max(peak, buckets[b]);
  }
  std::string out;
  if (peak == 0) return out;
  for (std::size_t b = 0; b <= top; ++b) {
    char label[32];
    std::snprintf(label, sizeof label, "2^%-2zu |", b);
    out += label;
    const auto bar = static_cast<std::size_t>(
        (buckets[b] * width + peak - 1) / peak);
    out.append(bar, '#');
    out += " ";
    out += std::to_string(buckets[b]);
    out += "\n";
  }
  return out;
}

Counters::Counters(std::size_t workers)
    : capacity_(std::bit_ceil(std::max<std::size_t>(workers, 1))),
      shards_(capacity_) {}

std::uint64_t Counters::total(Counter counter) const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.counters[static_cast<std::size_t>(counter)];
  }
  return sum;
}

std::uint64_t Counters::of_worker(std::size_t worker,
                                  Counter counter) const noexcept {
  return shards_[worker & (capacity_ - 1)]
      .counters[static_cast<std::size_t>(counter)];
}

HistogramSnapshot Counters::snapshot(Hist hist) const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    const auto& h = shard.hist[static_cast<std::size_t>(hist)];
    for (std::size_t b = 0; b < kHistBuckets; ++b) snap.buckets[b] += h[b];
  }
  return snap;
}

}  // namespace coalesce::trace
