// Named monotonic counters and log-scale histograms, sharded per worker.
//
// Each worker owns a shard and bumps it with plain (non-atomic) stores —
// single-writer per shard, merged on the read side after the region joins
// (the pool join provides the happens-before edge). Increments on the hot
// path are one array store; no locks, no allocation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace coalesce::trace {

/// The fixed counter registry. Counters are monotonic event tallies.
enum class Counter : std::uint8_t {
  kRegions,          ///< parallel regions (fork/join pairs) entered
  kDispatchOps,      ///< synchronized chunk-allocation operations
  kChunksExecuted,   ///< chunks run to completion
  kIterations,       ///< loop-body iterations executed
  kRecoveryDecodes,  ///< full index decodes (one per chunk entry)
  kRecoverySteps,    ///< strength-reduced odometer advances
  kSimChunks,        ///< simulated chunk executions
  kCancels,          ///< early stops observed (token, deadline, exception)
  kFaultsInjected,   ///< faults fired by the injection harness
  kRegionsEnqueued,  ///< regions accepted into an engine's queue
  kRegionsRetired,   ///< engine regions finalized (future fulfilled)
  kRequestsAccepted,  ///< service submissions past admission + quota
  kRequestsRejected,  ///< service submissions refused at admission
  kRequestsShed,      ///< service submissions shed (quota / queue full)
  kSteals,            ///< inter-cluster range steals (ShardedDispatcher)
  kJitCompiles,       ///< JIT kernels compiled to native code
  kJitCacheHits,      ///< JIT lookups served from the compile cache
  kJitFallbacks,      ///< JIT requests that fell back to the interpreter
  kAdaptiveRetunes,   ///< settled adaptive keys sent back to exploration
  kAdaptiveHits,      ///< kAuto resolves served from a settled key
  kCount_            ///< sentinel
};

/// Log2-bucketed histogram registry.
enum class Hist : std::uint8_t {
  kDispatchLatencyNs,  ///< wall time of one dispatcher->next() call
  kChunkSize,          ///< iterations per dispatched chunk
  kWorkerBusyNs,       ///< per-region busy span of one worker
  kRegionQueueDepth,   ///< engine queue depth sampled at each enqueue/pop
  kJitCompileNs,       ///< wall time of one JIT compile (emit + cc + dlopen)
  kCount_              ///< sentinel
};

[[nodiscard]] const char* to_string(Counter counter) noexcept;
[[nodiscard]] const char* to_string(Hist hist) noexcept;

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount_);
inline constexpr std::size_t kHistCount =
    static_cast<std::size_t>(Hist::kCount_);
inline constexpr std::size_t kHistBuckets = 64;  ///< bucket b: [2^b, 2^(b+1))

/// Merged view of one histogram: counts per power-of-two bucket.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};

  [[nodiscard]] std::uint64_t total() const noexcept;
  /// Geometric midpoint estimate of the mean, 0 when empty.
  [[nodiscard]] double approx_mean() const noexcept;
  /// Lower bound (2^bucket) of the bucket holding quantile q in [0, 1];
  /// 0 when empty. Log2 resolution — good enough for p50/p99 reporting.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;
  [[nodiscard]] std::string render(std::size_t width = 40) const;
};

class Counters {
 public:
  explicit Counters(std::size_t workers);

  /// Hot path: bump `counter` on worker `worker`'s shard. Plain store.
  void add(std::size_t worker, Counter counter,
           std::uint64_t delta = 1) noexcept {
    shards_[worker & (capacity_ - 1)]
        .counters[static_cast<std::size_t>(counter)] += delta;
  }

  /// Hot path: record `value` into the log2 histogram on `worker`'s shard.
  void observe(std::size_t worker, Hist hist, std::uint64_t value) noexcept {
    shards_[worker & (capacity_ - 1)]
        .hist[static_cast<std::size_t>(hist)][bucket_of(value)] += 1;
  }

  /// Read side (call after workers joined): sum across all shards.
  [[nodiscard]] std::uint64_t total(Counter counter) const noexcept;
  /// Read side: one worker's tally.
  [[nodiscard]] std::uint64_t of_worker(std::size_t worker,
                                        Counter counter) const noexcept;
  [[nodiscard]] HistogramSnapshot snapshot(Hist hist) const;

  [[nodiscard]] std::size_t worker_capacity() const noexcept {
    return capacity_;
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    if (value <= 1) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(value) - 1);
  }

 private:
  struct alignas(64) Shard {
    std::array<std::uint64_t, kCounterCount> counters{};
    std::array<std::array<std::uint64_t, kHistBuckets>, kHistCount> hist{};
  };
  std::size_t capacity_;  // power of two >= workers
  std::vector<Shard> shards_;
};

}  // namespace coalesce::trace
