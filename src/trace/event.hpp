// Event taxonomy of the runtime observability subsystem.
//
// An Event is one timestamped span (or instant, when begin == end) on one
// worker's timeline. Timestamps are nanoseconds since the owning Recorder
// was constructed; the simulator records abstract cycles in the same field
// (one cycle == one nanosecond for export purposes), so both real and
// simulated executions share one exporter.
#pragma once

#include <cstdint>

#include "support/int_math.hpp"

namespace coalesce::trace {

using support::i64;

enum class EventKind : std::uint8_t {
  kRegion,        ///< fork..join of one parallel region (emitted by worker 0)
  kWorkerRun,     ///< one worker's span inside a region (unpark..done)
  kWorkerPark,    ///< span a pool worker spent parked between regions
  kChunkDispatch, ///< span claiming a chunk from the dispatcher; arg0 = size
  kChunkExec,     ///< span executing a chunk; arg0 = chunk.first, arg1 = size
  kIndexRecovery, ///< full index decode at chunk entry; arg0 = coalesced j
  kSimChunk,      ///< simulated chunk execution; timestamps are sim cycles
  kMark,          ///< instantaneous marker; arg0/arg1 free-form
  kCancel,        ///< instant: a worker observed a stop; arg0 = CancelCause
  kFaultInject,   ///< instant: fault harness fired; arg0 = fault kind
  kRegionEnqueue, ///< instant: engine accepted a region; arg0 = region id,
                  ///< arg1 = queue depth after the enqueue
  kRegionStart,   ///< instant: first worker granted a chunk of the region;
                  ///< arg0 = region id
  kRegionRetire,  ///< span start..retire of one engine region; arg0 = region
                  ///< id, arg1 = 1 if the region ran to completion
  kSteal,         ///< span of one inter-cluster range steal (ShardedDispatcher);
                  ///< arg0 = first stolen iteration, arg1 = range size
};

/// Why a region stopped early (Event::arg0 of kCancel).
enum class CancelCause : std::uint8_t {
  kToken,      ///< caller's CancellationToken was cancelled
  kDeadline,   ///< the Deadline expired
  kException,  ///< a worker body threw; siblings drained via the cancel path
  kInjected,   ///< the fault harness requested a cancel
};

[[nodiscard]] const char* to_string(CancelCause cause) noexcept;

/// Stable display name (used as the Chrome trace-event "name" field).
[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct Event {
  EventKind kind = EventKind::kMark;
  std::uint32_t worker = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  i64 arg0 = 0;
  i64 arg1 = 0;
};

}  // namespace coalesce::trace
