#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace coalesce::trace {

namespace {

/// Chrome trace-event timestamps are microseconds; we keep nanosecond
/// precision by emitting fractional microseconds.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_counter_block(std::string& out, const Counters& counters) {
  out += "\"counters\":{";
  bool first = true;
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const auto counter = static_cast<Counter>(c);
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += to_string(counter);
    out += "\":";
    out += std::to_string(counters.total(counter));
  }
  out += "},\"histograms\":{";
  first = true;
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const auto hist = static_cast<Hist>(h);
    const HistogramSnapshot snap = counters.snapshot(hist);
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += to_string(hist);
    out += "\":{\"total\":";
    out += std::to_string(snap.total());
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.1f", snap.approx_mean());
    out += ",\"approx_mean\":";
    out += mean;
    out += ",\"buckets\":[";
    std::size_t top = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (snap.buckets[b] > 0) top = b;
    }
    for (std::size_t b = 0; b <= top; ++b) {
      if (b > 0) out += ",";
      out += std::to_string(snap.buckets[b]);
    }
    out += "]}";
  }
  out += "}";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string chrome_trace_json(const Recorder& recorder) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";

  bool first = true;
  for (const std::uint32_t w : recorder.active_workers()) {
    // Thread-name metadata row so chrome://tracing labels the timeline.
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(w);
    out += ",\"args\":{\"name\":\"worker ";
    out += std::to_string(w);
    out += "\"}}";

    for (const Event& event : recorder.events(w)) {
      out += ",{\"name\":\"";
      out += to_string(event.kind);
      out += "\",\"cat\":\"";
      out += event.kind == EventKind::kSimChunk ? "sim" : "runtime";
      out += "\",\"ph\":\"";
      // Zero-duration events (kMark, kCancel, region enqueue/start, ...)
      // render as instants so Chrome draws a tick, not an invisible slice.
      const bool instant = event.begin_ns == event.end_ns;
      out += instant ? "i" : "X";
      out += "\",\"ts\":";
      append_us(out, event.begin_ns);
      if (!instant) {
        out += ",\"dur\":";
        append_us(out, event.end_ns - event.begin_ns);
      } else {
        out += ",\"s\":\"t\"";
      }
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(event.worker);
      out += ",\"args\":{\"arg0\":";
      out += std::to_string(event.arg0);
      out += ",\"arg1\":";
      out += std::to_string(event.arg1);
      out += "}}";
    }
  }

  out += "],\"otherData\":{";
  append_counter_block(out, recorder.counters());
  out += ",\"dropped_events\":";
  out += std::to_string(recorder.dropped());
  out += "}}";
  return out;
}

void write_chrome_trace(const Recorder& recorder, std::ostream& out) {
  out << chrome_trace_json(recorder);
}

std::string worker_summary(const Recorder& recorder, std::size_t width) {
  const auto workers = recorder.active_workers();
  std::string out;
  if (workers.empty() || width == 0) return "(empty trace)\n";

  auto is_busy = [](EventKind kind) {
    return kind == EventKind::kChunkExec || kind == EventKind::kSimChunk;
  };

  std::uint64_t horizon = 0;
  for (const std::uint32_t w : workers) {
    for (const Event& event : recorder.events(w)) {
      horizon = std::max(horizon, event.end_ns);
    }
  }
  if (horizon == 0) horizon = 1;
  const std::uint64_t ns_per_col = (horizon + width - 1) / width;

  std::ostringstream text;
  text << "per-worker timeline (1 col = " << ns_per_col << " ns, '"
       << "#' busy, '.' idle)\n";
  for (const std::uint32_t w : workers) {
    std::string row(width, '.');
    std::uint64_t busy_ns = 0;
    std::uint64_t chunks = 0;
    for (const Event& event : recorder.events(w)) {
      if (!is_busy(event.kind)) continue;
      busy_ns += event.end_ns - event.begin_ns;
      ++chunks;
      const auto from = static_cast<std::size_t>(event.begin_ns / ns_per_col);
      auto to = static_cast<std::size_t>(
          (event.end_ns + ns_per_col - 1) / ns_per_col);
      to = std::min(to, width);
      for (std::size_t col = from; col < std::max(to, from + 1); ++col) {
        if (col < width) row[col] = '#';
      }
    }
    char label[64];
    std::snprintf(label, sizeof label, "W%-3u |", w);
    text << label << row << "| chunks=" << chunks << " busy="
         << busy_ns / 1000 << "us iters="
         << recorder.counters().of_worker(w, Counter::kIterations) << "\n";
  }

  const Counters& counters = recorder.counters();
  text << "totals:";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const auto counter = static_cast<Counter>(c);
    text << " " << to_string(counter) << "=" << counters.total(counter);
  }
  text << " dropped=" << recorder.dropped() << "\n";

  const HistogramSnapshot chunk_sizes = counters.snapshot(Hist::kChunkSize);
  if (chunk_sizes.total() > 0) {
    text << "chunk-size distribution (log2 buckets):\n"
         << chunk_sizes.render();
  }
  out += text.str();
  return out;
}

}  // namespace coalesce::trace
