// Exporters for a collected trace.
//
//  * Chrome trace-event JSON — load in chrome://tracing (or Perfetto's
//    legacy importer): one "X" (complete) event per recorded span, one
//    timeline row per worker, counter totals and histogram summaries under
//    the top-level "otherData" object.
//  * Plain-text per-worker Gantt — busy/idle bars on a fixed-width grid,
//    one row per worker, for terminals and test logs.
//
// Both read the recorder after the traced region has joined; call them from
// the thread that owns the recorder, never concurrently with recording.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/recorder.hpp"

namespace coalesce::trace {

/// Writes the whole recorder state as Chrome trace-event JSON.
void write_chrome_trace(const Recorder& recorder, std::ostream& out);

/// write_chrome_trace into a string.
[[nodiscard]] std::string chrome_trace_json(const Recorder& recorder);

/// Renders per-worker busy bars ('#' = inside a chunk_exec/sim_chunk span,
/// '.' = idle) plus per-worker event/iteration tallies and the merged
/// counter block. `width` is the number of grid columns.
[[nodiscard]] std::string worker_summary(const Recorder& recorder,
                                         std::size_t width = 64);

/// Escapes a string for embedding in a JSON string literal (shared with
/// the bench harness; exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace coalesce::trace
