#include "trace/recorder.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"

namespace coalesce::trace {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRegion: return "region";
    case EventKind::kWorkerRun: return "worker_run";
    case EventKind::kWorkerPark: return "worker_park";
    case EventKind::kChunkDispatch: return "chunk_dispatch";
    case EventKind::kChunkExec: return "chunk_exec";
    case EventKind::kIndexRecovery: return "index_recovery";
    case EventKind::kSimChunk: return "sim_chunk";
    case EventKind::kMark: return "mark";
    case EventKind::kCancel: return "cancel";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kRegionEnqueue: return "region_enqueue";
    case EventKind::kRegionStart: return "region_start";
    case EventKind::kRegionRetire: return "region_retire";
    case EventKind::kSteal: return "steal";
  }
  return "?";
}

const char* to_string(CancelCause cause) noexcept {
  switch (cause) {
    case CancelCause::kToken: return "token";
    case CancelCause::kDeadline: return "deadline";
    case CancelCause::kException: return "exception";
    case CancelCause::kInjected: return "injected";
  }
  return "?";
}

std::atomic<Recorder*> Recorder::current_{nullptr};

/// Single-writer ring: the owning worker appends with plain stores; the
/// read side runs strictly after the writer has joined.
struct Recorder::Ring {
  explicit Ring(std::size_t capacity) : events(capacity) {}
  std::vector<Event> events;
  std::uint64_t appended = 0;  ///< total records; ring holds the last N
};

Recorder::Recorder(std::size_t capacity_per_worker)
    : capacity_(std::bit_ceil(std::max<std::size_t>(capacity_per_worker, 2))),
      epoch_(std::chrono::steady_clock::now()) {}

Recorder::~Recorder() {
  uninstall();
  for (auto& slot : slots_) delete slot.load(std::memory_order_acquire);
}

void Recorder::install() noexcept {
  Recorder* expected = nullptr;
  const bool installed = current_.compare_exchange_strong(
      expected, this, std::memory_order_release);
  COALESCE_ASSERT_MSG(installed || expected == this,
                      "another trace::Recorder is already installed");
}

void Recorder::uninstall() noexcept {
  Recorder* expected = this;
  current_.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_release);
}

Recorder::Ring* Recorder::ring_for(std::uint32_t worker) noexcept {
  const std::size_t slot = worker % kMaxWorkers;
  Ring* ring = slots_[slot].load(std::memory_order_acquire);
  if (ring == nullptr) {
    auto fresh = std::make_unique<Ring>(capacity_);
    Ring* expected = nullptr;
    if (slots_[slot].compare_exchange_strong(expected, fresh.get(),
                                             std::memory_order_acq_rel)) {
      ring = fresh.release();
    } else {
      ring = expected;  // another thread won the race for this slot
    }
  }
  return ring;
}

void Recorder::record(EventKind kind, std::uint32_t worker,
                      std::uint64_t begin_ns, std::uint64_t end_ns, i64 arg0,
                      i64 arg1) noexcept {
  Ring* ring = ring_for(worker);
  if (ring->appended >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring->events[ring->appended & (capacity_ - 1)] =
      Event{kind, worker, begin_ns, end_ns, arg0, arg1};
  ++ring->appended;
}

std::vector<Event> Recorder::events(std::uint32_t worker) const {
  const Ring* ring =
      slots_[worker % kMaxWorkers].load(std::memory_order_acquire);
  if (ring == nullptr) return {};
  std::vector<Event> out;
  const std::uint64_t kept = std::min<std::uint64_t>(ring->appended, capacity_);
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t k = ring->appended - kept; k < ring->appended; ++k) {
    out.push_back(ring->events[k & (capacity_ - 1)]);
  }
  return out;
}

std::vector<Event> Recorder::all_events() const {
  std::vector<Event> out;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    const auto worker_events = events(static_cast<std::uint32_t>(w));
    out.insert(out.end(), worker_events.begin(), worker_events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     if (a.begin_ns != b.begin_ns) {
                       return a.begin_ns < b.begin_ns;
                     }
                     return a.worker < b.worker;
                   });
  return out;
}

std::vector<std::uint32_t> Recorder::active_workers() const {
  std::vector<std::uint32_t> out;
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    const Ring* ring = slots_[w].load(std::memory_order_acquire);
    if (ring != nullptr && ring->appended > 0) {
      out.push_back(static_cast<std::uint32_t>(w));
    }
  }
  return out;
}

// ---- per-thread worker identity ---------------------------------------------

namespace {
thread_local std::uint32_t t_worker = 0;
}  // namespace

void set_thread_worker(std::uint32_t worker) noexcept { t_worker = worker; }

std::uint32_t thread_worker() noexcept { return t_worker; }

}  // namespace coalesce::trace
