// trace::Recorder — the collection point of the observability subsystem.
//
// One Recorder owns a lock-free single-writer ring buffer of Events per
// worker plus the sharded Counters. Instrumentation sites reach it through
// a process-wide installed pointer (one relaxed atomic load); when no
// recorder is installed — the default — every emit helper is a
// load-compare-branch and nothing else: no locks, no allocation, no
// timestamp read. Defining COALESCE_TRACE_DISABLED at build time
// (-DCOALESCE_ENABLE_TRACE=OFF in CMake) compiles the helpers out entirely.
//
// Writing an event is wait-free: each worker appends to its own
// preallocated ring (plain stores; the ring keeps the most recent
// `capacity` events and counts overwrites as drops). The read side —
// exporters, tests — runs after the region has joined, so the pool's join
// provides the happens-before edge; no event is read while it is written.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/counters.hpp"
#include "trace/event.hpp"

namespace coalesce::trace {

class Recorder {
 public:
  /// Upper bound on distinct worker timelines (real threads or simulated
  /// processors). Events from higher ids fold onto id % kMaxWorkers.
  static constexpr std::size_t kMaxWorkers = 256;

  /// `capacity_per_worker` is rounded up to a power of two; each worker's
  /// ring keeps the most recent `capacity` events (older ones are dropped
  /// and tallied in dropped()).
  explicit Recorder(std::size_t capacity_per_worker = std::size_t{1} << 14);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // ---- installation ---------------------------------------------------------

  /// The process-wide recorder instrumentation sites emit through, or
  /// nullptr (tracing disabled). Relaxed load: this is the fast-path check.
  [[nodiscard]] static Recorder* current() noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  /// Makes this recorder the process-wide sink. Only one may be installed;
  /// installing while another is installed asserts.
  void install() noexcept;
  /// Removes this recorder as the sink (no-op if not installed).
  void uninstall() noexcept;

  // ---- write side (hot) -----------------------------------------------------

  /// Nanoseconds since this recorder was constructed.
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Appends a span to `worker`'s timeline. Wait-free, allocation-free
  /// after the worker's first event (the ring is created on first use).
  void record(EventKind kind, std::uint32_t worker, std::uint64_t begin_ns,
              std::uint64_t end_ns, i64 arg0 = 0, i64 arg1 = 0) noexcept;

  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  // ---- read side (after join) -----------------------------------------------

  /// Events of one worker, oldest first (post-drop window).
  [[nodiscard]] std::vector<Event> events(std::uint32_t worker) const;
  /// All events, sorted by (begin_ns, worker).
  [[nodiscard]] std::vector<Event> all_events() const;
  /// Worker ids that recorded at least one event, ascending.
  [[nodiscard]] std::vector<std::uint32_t> active_workers() const;
  /// Events overwritten because a ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t ring_capacity() const noexcept {
    return capacity_;
  }

 private:
  struct Ring;

  Ring* ring_for(std::uint32_t worker) noexcept;

  static std::atomic<Recorder*> current_;

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  Counters counters_{kMaxWorkers};
  std::atomic<Ring*> slots_[kMaxWorkers] = {};
  std::atomic<std::uint64_t> dropped_{0};
};

// ---- per-thread worker identity ---------------------------------------------

/// The worker id instrumentation on this thread attributes events to. The
/// ThreadPool sets it for the span of a region; the main thread defaults
/// to 0. Cheap thread-local read/write.
void set_thread_worker(std::uint32_t worker) noexcept;
[[nodiscard]] std::uint32_t thread_worker() noexcept;

// ---- emit helpers (the instrumentation API) ---------------------------------

#if defined(COALESCE_TRACE_DISABLED)

class ScopedSpan {
 public:
  explicit ScopedSpan(EventKind, i64 = 0, i64 = 0) noexcept {}
  ScopedSpan(EventKind, Hist, i64 = 0, i64 = 0) noexcept {}
  void set_args(i64, i64 = 0) noexcept {}
};
inline void mark(EventKind, i64 = 0, i64 = 0) noexcept {}
inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void observe(Hist, std::uint64_t) noexcept {}
inline std::uint64_t span_begin() noexcept { return 0; }
inline void span_end(EventKind, std::uint64_t, i64 = 0, i64 = 0) noexcept {}
inline constexpr bool kEnabled = false;

#else

/// RAII span: captures a begin timestamp if a recorder is installed and
/// records [begin, now] on destruction. Near-zero cost when none is.
class ScopedSpan {
 public:
  explicit ScopedSpan(EventKind kind, i64 arg0 = 0, i64 arg1 = 0) noexcept
      : rec_(Recorder::current()), kind_(kind), arg0_(arg0), arg1_(arg1) {
    if (rec_ != nullptr) begin_ = rec_->now_ns();
  }
  /// Span that additionally records its duration into `hist` on close.
  ScopedSpan(EventKind kind, Hist hist, i64 arg0 = 0, i64 arg1 = 0) noexcept
      : ScopedSpan(kind, arg0, arg1) {
    hist_ = hist;
  }
  ~ScopedSpan() {
    if (rec_ != nullptr) {
      const std::uint64_t end = rec_->now_ns();
      const std::uint32_t worker = thread_worker();
      rec_->record(kind_, worker, begin_, end, arg0_, arg1_);
      if (hist_ != Hist::kCount_) {
        rec_->counters().observe(worker, hist_, end - begin_);
      }
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Updates the args recorded at destruction (e.g. once the size is known).
  void set_args(i64 arg0, i64 arg1 = 0) noexcept {
    arg0_ = arg0;
    arg1_ = arg1;
  }

 private:
  Recorder* rec_;
  EventKind kind_;
  Hist hist_ = Hist::kCount_;
  std::uint64_t begin_ = 0;
  i64 arg0_;
  i64 arg1_;
};

/// Records an instantaneous event on the current thread's worker timeline.
inline void mark(EventKind kind, i64 arg0 = 0, i64 arg1 = 0) noexcept {
  if (Recorder* rec = Recorder::current()) {
    const std::uint64_t t = rec->now_ns();
    rec->record(kind, thread_worker(), t, t, arg0, arg1);
  }
}

/// Bumps a counter on the current thread's worker shard.
inline void count(Counter counter, std::uint64_t delta = 1) noexcept {
  if (Recorder* rec = Recorder::current()) {
    rec->counters().add(thread_worker(), counter, delta);
  }
}

/// Records a histogram observation on the current thread's worker shard.
inline void observe(Hist hist, std::uint64_t value) noexcept {
  if (Recorder* rec = Recorder::current()) {
    rec->counters().observe(thread_worker(), hist, value);
  }
}

/// Non-RAII span pair for hot paths where a scoped object is awkward:
/// `span_begin()` captures the current timestamp (0 when tracing is off)
/// and `span_end(kind, t0, ...)` records [t0, now]. Both ends must run on
/// the same thread with the same recorder installed.
[[nodiscard]] inline std::uint64_t span_begin() noexcept {
  if (Recorder* rec = Recorder::current()) return rec->now_ns();
  return 0;
}
inline void span_end(EventKind kind, std::uint64_t begin_ns, i64 arg0 = 0,
                     i64 arg1 = 0) noexcept {
  if (Recorder* rec = Recorder::current()) {
    rec->record(kind, thread_worker(), begin_ns, rec->now_ns(), arg0, arg1);
  }
}

inline constexpr bool kEnabled = true;

#endif  // COALESCE_TRACE_DISABLED

}  // namespace coalesce::trace
