#include "transform/coalesce.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;
using ir::VarId;
using support::i64;

ExprRef recovery_expression(const index::CoalescedSpace& space, std::size_t k,
                            VarId coalesced, RecoveryStyle style) {
  COALESCE_ASSERT(k < space.depth());
  const ExprRef j = ir::var_ref(coalesced);
  const i64 nk = space.extent(k);
  const i64 p_k = space.suffix_product(k);
  const i64 p_k1 = space.suffix_product(k + 1);

  ExprRef normalized;  // value in [1, N_k]
  switch (style) {
    case RecoveryStyle::kPaperClosedForm:
      // v = ceil(j / P_{k+1}) - N_k * floor((j - 1) / P_k)
      normalized = ir::sub(
          ir::ceil_div(j, ir::int_const(p_k1)),
          ir::mul(ir::int_const(nk),
                  ir::floor_div(ir::sub(j, ir::int_const(1)),
                                ir::int_const(p_k))));
      break;
    case RecoveryStyle::kMixedRadix:
      // v = ((j - 1) / P_{k+1}) mod N_k + 1
      normalized = ir::add(
          ir::mod(ir::floor_div(ir::sub(j, ir::int_const(1)),
                                ir::int_const(p_k1)),
                  ir::int_const(nk)),
          ir::int_const(1));
      break;
  }

  // Original value: lower + step * (v - 1) == (lower - step) + step * v.
  const auto& geom = space.level(k);
  ExprRef original = ir::add(
      ir::int_const(geom.lower - geom.step),
      ir::mul(ir::int_const(geom.step), std::move(normalized)));
  return ir::simplify(original);
}

namespace {

/// Everything needed to splice a coalesced band into a tree.
struct BandPlan {
  std::vector<const Loop*> band;  ///< the loops being fused, outermost first
  std::vector<index::LevelGeometry> geometry;
};

/// Structural legality; fills `why` with the first violated precondition.
std::optional<BandPlan> plan_band(const Loop& root,
                                  const CoalesceOptions& options,
                                  std::string* why) {
  const std::vector<const Loop*> parallel = ir::parallel_band(root);
  std::size_t k = options.levels == 0 ? parallel.size() : options.levels;

  if (k < 2) {
    *why = "coalescing needs a parallel band of depth >= 2 at the root";
    return std::nullopt;
  }
  if (k > parallel.size()) {
    *why = support::format(
        "requested %zu levels but the perfect parallel band has depth %zu",
        k, parallel.size());
    return std::nullopt;
  }

  BandPlan plan;
  plan.band.assign(parallel.begin(),
                   parallel.begin() + static_cast<std::ptrdiff_t>(k));

  for (std::size_t level = 0; level < k; ++level) {
    const Loop* loop = plan.band[level];
    const auto lo = ir::as_constant(loop->lower);
    const auto hi = ir::as_constant(loop->upper);
    if (!lo || !hi) {
      *why = support::format(
          "band level %zu has non-constant bounds; rectangular constant "
          "bounds are required (fold parameters first)", level);
      return std::nullopt;
    }
    if (*hi < *lo) {
      *why = support::format("band level %zu is empty", level);
      return std::nullopt;
    }
    const i64 trips = (*hi - *lo) / loop->step + 1;
    plan.geometry.push_back(index::LevelGeometry{*lo, trips, loop->step});
  }

  // The innermost coalesced loop's body must not assign any band variable:
  // the recovery statements would be clobbered.
  const std::vector<VarId> written = ir::scalars_written(*plan.band.back());
  for (const Loop* loop : plan.band) {
    if (std::find(written.begin(), written.end(), loop->var) !=
        written.end()) {
      *why = support::format(
          "loop body assigns induction variable of a coalesced level");
      return std::nullopt;
    }
  }
  return plan;
}

struct BuiltBand {
  LoopPtr loop;
  index::CoalescedSpace space;
  VarId coalesced;
  std::vector<VarId> recovered;
  std::size_t levels;
};

/// Materializes the coalesced loop for a validated plan. `symbols` gains the
/// fresh coalesced induction variable.
support::Expected<BuiltBand> build_band(ir::SymbolTable& symbols,
                                        const BandPlan& plan,
                                        const CoalesceOptions& options) {
  auto space = index::CoalescedSpace::create(plan.geometry);
  if (!space.ok()) return space.error();

  VarId j;
  if (!symbols.lookup(options.coalesced_name).has_value()) {
    j = symbols.declare(options.coalesced_name, ir::SymbolKind::kInduction);
  } else {
    j = symbols.fresh_induction(options.coalesced_name);
  }

  auto coalesced = std::make_shared<Loop>();
  coalesced->var = j;
  coalesced->lower = ir::int_const(1);
  coalesced->upper = ir::int_const(space.value().total());
  coalesced->step = 1;
  coalesced->parallel = true;

  std::vector<VarId> recovered;
  for (std::size_t level = 0; level < plan.band.size(); ++level) {
    const VarId original_var = plan.band[level]->var;
    recovered.push_back(original_var);
    coalesced->body.push_back(ir::AssignStmt{
        original_var,
        recovery_expression(space.value(), level, j, options.recovery)});
  }
  for (const ir::Stmt& s : plan.band.back()->body) {
    coalesced->body.push_back(ir::clone(s));
  }

  return BuiltBand{std::move(coalesced), std::move(space).value(), j,
                   std::move(recovered), plan.band.size()};
}

}  // namespace

support::Expected<CoalesceResult> coalesce_nest(
    const LoopNest& nest, const CoalesceOptions& options) {
  COALESCE_ASSERT(nest.root != nullptr);
  std::string why;
  auto plan = plan_band(*nest.root, options, &why);
  if (!plan) {
    return support::make_error(support::ErrorCode::kIllegalTransform, why);
  }

  ir::SymbolTable symbols = nest.symbols;  // value copy
  auto built = build_band(symbols, *plan, options);
  if (!built.ok()) return built.error();

  BuiltBand band = std::move(built).value();
  CoalesceResult result{
      LoopNest{std::move(symbols), std::move(band.loop)},
      std::move(band.space), band.coalesced, std::move(band.recovered),
      band.levels};
  if (auto checked = postcheck("coalesce", nest, result.nest); !checked.ok()) {
    return checked.error();
  }
  return result;
}

namespace {

LoopPtr rewrite_tree(ir::SymbolTable& symbols, const Loop& loop,
                     const CoalesceOptions& options, std::size_t* count);

/// Rewrites each statement, descending into loops.
std::vector<ir::Stmt> rewrite_body(ir::SymbolTable& symbols,
                                   const std::vector<ir::Stmt>& body,
                                   const CoalesceOptions& options,
                                   std::size_t* count) {
  std::vector<ir::Stmt> out;
  out.reserve(body.size());
  for (const ir::Stmt& s : body) {
    if (const auto* inner = std::get_if<LoopPtr>(&s)) {
      out.push_back(rewrite_tree(symbols, **inner, options, count));
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      auto rebuilt = std::make_shared<ir::IfStmt>();
      rebuilt->condition = (*guard)->condition;
      rebuilt->then_body =
          rewrite_body(symbols, (*guard)->then_body, options, count);
      out.push_back(std::move(rebuilt));
    } else {
      out.push_back(ir::clone(s));
    }
  }
  return out;
}

LoopPtr rewrite_tree(ir::SymbolTable& symbols, const Loop& loop,
                     const CoalesceOptions& options, std::size_t* count) {
  std::string why;
  // options.levels == 0 fuses the maximal band at each point; a nonzero
  // request (collapse(k)) is honored per band and bands shallower than k
  // are left unchanged.
  if (auto plan = plan_band(loop, options, &why)) {
    auto built = build_band(symbols, *plan, options);
    if (built.ok()) {
      ++*count;
      BuiltBand band = std::move(built).value();
      // The fused body may itself contain deeper loops (e.g. a sequential
      // reduction); rewrite those too. Recovery assignments stay in place.
      band.loop->body = rewrite_body(symbols, band.loop->body, options, count);
      return band.loop;
    }
  }
  // Not coalescible here: keep this loop, rewrite its children.
  auto kept = std::make_shared<Loop>();
  kept->var = loop.var;
  kept->lower = loop.lower;
  kept->upper = loop.upper;
  kept->step = loop.step;
  kept->parallel = loop.parallel;
  kept->body = rewrite_body(symbols, loop.body, options, count);
  return kept;
}

}  // namespace

CoalesceAllResult coalesce_all(const LoopNest& nest,
                               const CoalesceOptions& options) {
  COALESCE_ASSERT(nest.root != nullptr);
  ir::SymbolTable symbols = nest.symbols;
  std::size_t count = 0;
  LoopPtr root = rewrite_tree(symbols, *nest.root, options, &count);
  CoalesceAllResult result{LoopNest{std::move(symbols), std::move(root)},
                           count};
  // This entry point cannot report errors, so a postcheck failure is an
  // internal compiler bug: fail hard.
  auto checked = postcheck("coalesce-all", nest, result.nest);
  COALESCE_ASSERT_MSG(checked.ok(), "coalesce_all failed post-pass checks");
  return result;
}

CoalesceProgramResult coalesce_program(const ir::Program& program,
                                       const CoalesceOptions& options) {
  ir::SymbolTable symbols = program.symbols;
  std::size_t count = 0;
  std::vector<LoopPtr> roots;
  roots.reserve(program.roots.size());
  for (const LoopPtr& root : program.roots) {
    COALESCE_ASSERT(root != nullptr);
    roots.push_back(rewrite_tree(symbols, *root, options, &count));
  }
  CoalesceProgramResult result{ir::Program{std::move(symbols), std::move(roots)},
                               count};
  auto checked = postcheck("coalesce-program", program, result.program);
  COALESCE_ASSERT_MSG(checked.ok(), "coalesce_program failed post-pass checks");
  return result;
}

}  // namespace coalesce::transform
