// Loop coalescing — the paper's transformation.
//
// Input: a nest whose outermost loops form a perfect band of k >= 2
// rectangular DOALL loops with constant bounds. Output: an equivalent nest
// whose outermost loop is a single DOALL over j = 1..N (N the product of the
// band's trip counts) that recovers the original induction values at the top
// of its body:
//
//   doall i = 1, 4 {               doall j = 1, 12 {
//     doall k = 1, 3 {      ==>      i = cdiv(j, 3) - 4 * fdiv(j - 1, 12);
//       B(i, k);                     k = j - 3 * fdiv(j - 1, 3);
//     }                              B(i, k);
//   }                              }
//
// Legality is checked structurally here (perfect, rectangular, constant
// bounds, DOALL flags); proving the DOALL flags themselves is the
// analysis module's job (analyze_and_mark).
#pragma once

#include <cstdint>
#include <vector>

#include "index/coalesced_space.hpp"
#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// How the transformed code recovers original indices from the coalesced j.
enum class RecoveryStyle : std::uint8_t {
  kPaperClosedForm,  ///< ceil/floor form from the paper (default)
  kMixedRadix,       ///< (j-1)/P mod N + 1 digit extraction
};

struct CoalesceOptions {
  /// Number of outer band levels to coalesce; 0 means "the whole maximal
  /// parallel band". Values >= 2 request partial coalescing of exactly that
  /// many levels (the collapse(k) view).
  std::size_t levels = 0;
  RecoveryStyle recovery = RecoveryStyle::kPaperClosedForm;
  /// Name for the coalesced induction variable (uniquified if taken).
  const char* coalesced_name = "j";
};

struct CoalesceResult {
  ir::LoopNest nest;                  ///< the transformed program
  index::CoalescedSpace space;        ///< geometry of the coalesced band
  ir::VarId coalesced_var;            ///< the new induction variable
  std::vector<ir::VarId> recovered;   ///< original band vars, outermost first
  std::size_t levels = 0;             ///< band depth actually coalesced
};

/// Coalesces the band rooted at the nest's outermost loop. Fails with
/// kIllegalTransform / kUnsupported when preconditions don't hold; the
/// input nest is never modified.
[[nodiscard]] support::Expected<CoalesceResult> coalesce_nest(
    const ir::LoopNest& nest, const CoalesceOptions& options = {});

/// Coalesces every maximal parallel band of depth >= 2 found anywhere in the
/// tree (hybrid nests: serial loops are kept and their parallel sub-bands
/// coalesced in place). Loops that cannot be coalesced are left unchanged.
/// Returns the rewritten nest and how many bands were coalesced.
struct CoalesceAllResult {
  ir::LoopNest nest;
  std::size_t bands_coalesced = 0;
};
[[nodiscard]] CoalesceAllResult coalesce_all(const ir::LoopNest& nest,
                                             const CoalesceOptions& options = {});

/// coalesce_all over every root of a multi-loop program (the output of loop
/// distribution / make_perfect): the distribute-then-coalesce pipeline.
struct CoalesceProgramResult {
  ir::Program program;
  std::size_t bands_coalesced = 0;
};
[[nodiscard]] CoalesceProgramResult coalesce_program(
    const ir::Program& program, const CoalesceOptions& options = {});

/// Builds the index-recovery expression for band level `k` (0-based,
/// outermost first) in terms of the coalesced variable. Exposed for the
/// codegen cost experiments (E7).
[[nodiscard]] ir::ExprRef recovery_expression(
    const index::CoalescedSpace& space, std::size_t k, ir::VarId coalesced,
    RecoveryStyle style);

}  // namespace coalesce::transform
