#include "transform/distribute.hpp"

#include <algorithm>

#include "analysis/dependence.hpp"
#include "analysis/subscript.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;
using ir::VarId;

namespace {

/// Scalar variables read / written by a statement subtree (any non-array
/// lvalue counts as written; reads from expressions and bounds).
struct ScalarUse {
  std::vector<VarId> reads;
  std::vector<VarId> writes;
};

void push_unique(std::vector<VarId>& xs, VarId v) {
  if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
}

void scalar_reads_in(const ir::ExprRef& e, const ir::SymbolTable& symbols,
                     std::vector<VarId>& out) {
  for (VarId v : ir::referenced_vars(e)) {
    const ir::SymbolKind kind = symbols.kind(v);
    if (kind == ir::SymbolKind::kScalar) push_unique(out, v);
  }
}

void scalar_use_stmt(const ir::Stmt& stmt, const ir::SymbolTable& symbols,
                     ScalarUse& out) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    scalar_reads_in(assign->rhs, symbols, out.reads);
    if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
      for (const auto& sub : access->subscripts) {
        scalar_reads_in(sub, symbols, out.reads);
      }
    } else {
      const VarId target = std::get<VarId>(assign->lhs);
      if (symbols.kind(target) == ir::SymbolKind::kScalar) {
        push_unique(out.writes, target);
      }
    }
  } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    scalar_reads_in((*guard)->condition, symbols, out.reads);
    for (const ir::Stmt& s : (*guard)->then_body) {
      scalar_use_stmt(s, symbols, out);
    }
  } else {
    const Loop& loop = *std::get<LoopPtr>(stmt);
    scalar_reads_in(loop.lower, symbols, out.reads);
    scalar_reads_in(loop.upper, symbols, out.reads);
    for (const ir::Stmt& s : loop.body) scalar_use_stmt(s, symbols, out);
  }
}

bool intersects(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  for (VarId v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) return true;
  }
  return false;
}

/// Tarjan SCC over a small adjacency matrix. Emits components in reverse
/// topological order of the condensation.
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<bool>>& adj)
      : adj_(adj), n_(adj.size()), index_(n_, -1), low_(n_, 0),
        on_stack_(n_, false) {
    for (std::size_t v = 0; v < n_; ++v) {
      if (index_[v] < 0) strongconnect(v);
    }
  }

  [[nodiscard]] const std::vector<std::vector<std::size_t>>& components()
      const noexcept {
    return components_;
  }

 private:
  void strongconnect(std::size_t v) {
    index_[v] = low_[v] = counter_++;
    stack_.push_back(v);
    on_stack_[v] = true;
    for (std::size_t w = 0; w < n_; ++w) {
      if (!adj_[v][w]) continue;
      if (index_[w] < 0) {
        strongconnect(w);
        low_[v] = std::min(low_[v], low_[w]);
      } else if (on_stack_[w]) {
        low_[v] = std::min(low_[v], index_[w]);
      }
    }
    if (low_[v] == index_[v]) {
      std::vector<std::size_t> comp;
      while (true) {
        const std::size_t w = stack_.back();
        stack_.pop_back();
        on_stack_[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end());  // original textual order
      components_.push_back(std::move(comp));
    }
  }

  const std::vector<std::vector<bool>>& adj_;
  std::size_t n_;
  std::vector<int> index_;
  std::vector<int> low_;
  std::vector<bool> on_stack_;
  std::vector<std::size_t> stack_;
  int counter_ = 0;
  std::vector<std::vector<std::size_t>> components_;
};

/// Which way(s) must statement a stay ordered relative to statement b?
struct EdgeSet {
  bool a_before_b = false;
  bool b_before_a = false;
};

/// Classify one dependence-test result for distribution of the loop at
/// chain position `pos` (0-based within the common prefix).
void classify(const analysis::PairTest& t, std::size_t pos, EdgeSet& edges) {
  if (t.answer == analysis::DepAnswer::kIndependent) return;

  // Entries before `pos` belong to loops enclosing the distributed one: a
  // known nonzero distance there means the dependence crosses outer
  // iterations and is preserved by any intra-iteration ordering.
  for (std::size_t l = 0; l < pos && l < t.distance.size(); ++l) {
    if (!t.distance[l].has_value()) {
      edges.a_before_b = edges.b_before_a = true;  // direction unknowable
      return;
    }
    if (*t.distance[l] != 0) return;  // carried by an outer loop
  }

  if (pos >= t.distance.size()) {
    // No common entry at the distributed level (shouldn't happen for
    // sibling statements, but stay conservative).
    edges.a_before_b = edges.b_before_a = true;
    return;
  }
  const auto& d = t.distance[pos];
  if (!d.has_value()) {
    edges.a_before_b = edges.b_before_a = true;
  } else if (*d >= 0) {
    edges.a_before_b = true;  // loop-independent or carried forward
  } else {
    edges.b_before_a = true;  // the real dependence runs b -> a
  }
}

}  // namespace

support::Expected<std::vector<LoopPtr>> distribute_loop(
    ir::SymbolTable& symbols, const Loop& loop,
    const std::vector<const Loop*>& enclosing) {
  const std::size_t m = loop.body.size();
  if (m <= 1) {
    return std::vector<LoopPtr>{ir::clone(loop)};
  }

  std::vector<const Loop*> chain = enclosing;
  chain.push_back(&loop);
  const std::size_t pos = chain.size() - 1;

  // Per-statement reference and scalar-use summaries.
  std::vector<std::vector<analysis::ArrayRef>> refs(m);
  std::vector<ScalarUse> scalars(m);
  for (std::size_t t = 0; t < m; ++t) {
    refs[t] = analysis::collect_array_refs_of_stmt(loop.body[t], chain);
    scalar_use_stmt(loop.body[t], symbols, scalars[t]);
  }

  // Statement dependence graph.
  std::vector<std::vector<bool>> adj(m, std::vector<bool>(m, false));
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      EdgeSet edges;
      for (const auto& ra : refs[a]) {
        for (const auto& rb : refs[b]) {
          if (ra.array != rb.array) continue;
          if (ra.kind == analysis::RefKind::kRead &&
              rb.kind == analysis::RefKind::kRead)
            continue;
          std::size_t common = 0;
          while (common < ra.enclosing.size() &&
                 common < rb.enclosing.size() &&
                 ra.enclosing[common] == rb.enclosing[common]) {
            ++common;
          }
          classify(analysis::test_pair(ra, rb, common), pos, edges);
          if (edges.a_before_b && edges.b_before_a) break;
        }
        if (edges.a_before_b && edges.b_before_a) break;
      }
      // Scalar conflicts: any shared scalar with at least one writer welds
      // the statements together (order cannot be proven either way).
      if (intersects(scalars[a].writes, scalars[b].writes) ||
          intersects(scalars[a].writes, scalars[b].reads) ||
          intersects(scalars[a].reads, scalars[b].writes)) {
        edges.a_before_b = edges.b_before_a = true;
      }
      if (edges.a_before_b) adj[a][b] = true;
      if (edges.b_before_a) adj[b][a] = true;
    }
  }

  Tarjan tarjan(adj);
  // Reverse emission order == topological order of the condensation.
  std::vector<std::vector<std::size_t>> order(tarjan.components().rbegin(),
                                              tarjan.components().rend());

  std::vector<LoopPtr> out;
  out.reserve(order.size());
  for (std::size_t c = 0; c < order.size(); ++c) {
    auto piece = std::make_shared<Loop>();
    piece->lower = loop.lower;
    piece->upper = loop.upper;
    piece->step = loop.step;
    piece->parallel = loop.parallel;
    if (c == 0) {
      piece->var = loop.var;
      for (std::size_t idx : order[c]) {
        piece->body.push_back(ir::clone(loop.body[idx]));
      }
    } else {
      // Fresh induction variable: sibling loops must not share ids or the
      // dependence tester would treat two independent instances as one.
      piece->var = symbols.fresh_induction(symbols.name(loop.var) + "_d");
      const ir::ExprRef replacement = ir::var_ref(piece->var);
      for (std::size_t idx : order[c]) {
        piece->body.push_back(
            ir::substitute(loop.body[idx], loop.var, replacement));
      }
    }
    out.push_back(std::move(piece));
  }
  return out;
}

support::Expected<Program> distribute_root(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  ir::SymbolTable symbols = nest.symbols;
  auto pieces = distribute_loop(symbols, *nest.root, {});
  if (!pieces.ok()) return pieces.error();
  Program out{std::move(symbols), std::move(pieces).value()};
  if (auto checked = postcheck("distribute", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

namespace {

/// Rebuilds a loop with every child loop recursively made perfect and
/// spliced in place, then distributes the rebuilt loop itself.
support::Expected<std::vector<LoopPtr>> make_perfect_loop(
    ir::SymbolTable& symbols, const Loop& loop,
    std::vector<const Loop*>& enclosing) {
  auto rebuilt = std::make_shared<Loop>();
  rebuilt->var = loop.var;
  rebuilt->lower = loop.lower;
  rebuilt->upper = loop.upper;
  rebuilt->step = loop.step;
  rebuilt->parallel = loop.parallel;

  enclosing.push_back(&loop);
  for (const ir::Stmt& s : loop.body) {
    if (const auto* inner = std::get_if<LoopPtr>(&s)) {
      auto pieces = make_perfect_loop(symbols, **inner, enclosing);
      if (!pieces.ok()) {
        enclosing.pop_back();
        return pieces.error();
      }
      for (LoopPtr& piece : pieces.value()) {
        rebuilt->body.push_back(std::move(piece));
      }
    } else {
      rebuilt->body.push_back(ir::clone(s));
    }
  }
  enclosing.pop_back();

  return distribute_loop(symbols, *rebuilt, enclosing);
}

}  // namespace

support::Expected<Program> make_perfect(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  ir::SymbolTable symbols = nest.symbols;
  std::vector<const Loop*> enclosing;
  auto roots = make_perfect_loop(symbols, *nest.root, enclosing);
  if (!roots.ok()) return roots.error();
  Program out{std::move(symbols), std::move(roots).value()};
  if (auto checked = postcheck("make-perfect", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

std::size_t total_parallel_band_depth(const Program& program) {
  std::size_t total = 0;
  for (const LoopPtr& root : program.roots) {
    total += ir::parallel_band(*root).size();
  }
  return total;
}

}  // namespace coalesce::transform
