// Loop distribution (fission) — the enabling transformation for coalescing.
//
// Coalescing requires a *perfect* band, but real nests carry initialization
// statements or multiple inner loops in one body (matmul's `C = 0` next to
// its reduction loop). Distribution splits
//
//   do i { S1; S2 }   ==>   do i { S1 }  ;  do i { S2 }
//
// whenever the statement-level dependence graph allows it: statements in a
// dependence cycle stay in one loop (one strongly connected component each),
// and the resulting loops are emitted in a topological order of the
// condensation. Unknown dependence directions conservatively glue statements
// together.
//
// Distributing a loop can turn one root into several, so results are a
// `Program`: an ordered list of top-level loops over one symbol table.
#pragma once

#include <string_view>
#include <vector>

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

using Program = ir::Program;

/// Distributes the statements of `loop` into a maximal sequence of loops,
/// one per dependence SCC, in legal order. The first piece keeps the
/// original induction variable; each further piece gets a fresh one
/// (declared in `symbols`) so induction variables stay globally unique —
/// the dependence tester relies on that invariant. Returns a single-element
/// vector when nothing can be split. `enclosing` is the loop chain above
/// `loop` (outermost first); pass {} for a root loop.
[[nodiscard]] support::Expected<std::vector<ir::LoopPtr>> distribute_loop(
    ir::SymbolTable& symbols, const ir::Loop& loop,
    const std::vector<const ir::Loop*>& enclosing);

/// Distributes the nest's root loop.
[[nodiscard]] support::Expected<Program> distribute_root(
    const ir::LoopNest& nest);

/// Fixpoint: distributes every loop in the tree, outermost first, until no
/// loop body mixes statements that could be split — maximizing the perfect
/// bands available to coalescing. The paper's "make the nest perfect" step.
[[nodiscard]] support::Expected<Program> make_perfect(const ir::LoopNest& nest);

/// Depth of the maximal perfect parallel band summed over program roots —
/// the quantity make_perfect improves (diagnostics for tests and benches).
[[nodiscard]] std::size_t total_parallel_band_depth(const Program& program);

}  // namespace coalesce::transform
