#include "transform/fusion.hpp"

#include <algorithm>
#include <functional>

#include "analysis/dependence.hpp"
#include "analysis/subscript.hpp"
#include "support/assert.hpp"
#include "transform/postcheck.hpp"
#include "support/strings.hpp"

namespace coalesce::transform {

using ir::Loop;
using ir::LoopPtr;
using ir::VarId;

namespace {

/// Scalars read or written anywhere in a statement list.
void scalar_conflict_set(const std::vector<ir::Stmt>& body,
                         const ir::SymbolTable& symbols,
                         std::vector<VarId>& reads,
                         std::vector<VarId>& writes) {
  auto add_reads = [&](const ir::ExprRef& e) {
    for (VarId v : ir::referenced_vars(e)) {
      if (symbols.kind(v) == ir::SymbolKind::kScalar &&
          std::find(reads.begin(), reads.end(), v) == reads.end()) {
        reads.push_back(v);
      }
    }
  };
  std::function<void(const ir::Stmt&)> walk = [&](const ir::Stmt& stmt) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
      add_reads(assign->rhs);
      if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
        for (const auto& sub : access->subscripts) add_reads(sub);
      } else {
        const VarId target = std::get<VarId>(assign->lhs);
        if (symbols.kind(target) == ir::SymbolKind::kScalar &&
            std::find(writes.begin(), writes.end(), target) == writes.end()) {
          writes.push_back(target);
        }
      }
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
      add_reads((*guard)->condition);
      for (const ir::Stmt& s : (*guard)->then_body) walk(s);
    } else {
      const Loop& loop = *std::get<LoopPtr>(stmt);
      add_reads(loop.lower);
      add_reads(loop.upper);
      for (const ir::Stmt& s : loop.body) walk(s);
    }
  };
  for (const ir::Stmt& s : body) walk(s);
}

bool intersects(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  return std::any_of(a.begin(), a.end(), [&](VarId v) {
    return std::find(b.begin(), b.end(), v) != b.end();
  });
}

}  // namespace

support::Expected<LoopPtr> fuse_loops(
    const ir::SymbolTable& symbols, const Loop& first, const Loop& second,
    const std::vector<const Loop*>& enclosing) {
  // Headers must match exactly (after simplification).
  if (!ir::equal(ir::simplify(first.lower), ir::simplify(second.lower)) ||
      !ir::equal(ir::simplify(first.upper), ir::simplify(second.upper)) ||
      first.step != second.step) {
    return support::make_error(support::ErrorCode::kIllegalTransform,
                               "fusion requires identical loop headers");
  }

  // Candidate fused loop: first's header, second's body renamed to the
  // first's induction variable.
  auto fused = std::make_shared<Loop>();
  fused->var = first.var;
  fused->lower = first.lower;
  fused->upper = first.upper;
  fused->step = first.step;
  std::vector<ir::Stmt> body_a;
  for (const ir::Stmt& s : first.body) body_a.push_back(ir::clone(s));
  std::vector<ir::Stmt> body_b;
  const ir::ExprRef replacement = ir::var_ref(first.var);
  for (const ir::Stmt& s : second.body) {
    body_b.push_back(ir::substitute(s, second.var, replacement));
  }

  // Scalar conflicts between the bodies: conservatively fusion-preventing
  // when any shared scalar is written by either side.
  {
    std::vector<VarId> reads_a, writes_a, reads_b, writes_b;
    scalar_conflict_set(body_a, symbols, reads_a, writes_a);
    scalar_conflict_set(body_b, symbols, reads_b, writes_b);
    if (intersects(writes_a, writes_b) || intersects(writes_a, reads_b) ||
        intersects(reads_a, writes_b)) {
      return support::make_error(
          support::ErrorCode::kIllegalTransform,
          "a shared scalar couples the bodies; expand it first");
    }
  }

  fused->body = body_a;
  for (ir::Stmt& s : body_b) fused->body.push_back(std::move(s));

  // Cross-body dependences, evaluated over the fused chain.
  std::vector<const Loop*> chain = enclosing;
  chain.push_back(fused.get());
  const std::size_t pos = chain.size() - 1;

  std::vector<analysis::ArrayRef> refs_a, refs_b;
  for (std::size_t t = 0; t < body_a.size(); ++t) {
    auto refs = analysis::collect_array_refs_of_stmt(fused->body[t], chain);
    refs_a.insert(refs_a.end(), refs.begin(), refs.end());
  }
  for (std::size_t t = body_a.size(); t < fused->body.size(); ++t) {
    auto refs = analysis::collect_array_refs_of_stmt(fused->body[t], chain);
    refs_b.insert(refs_b.end(), refs.begin(), refs.end());
  }

  bool all_cross_independent_or_zero = true;
  for (const auto& ra : refs_a) {
    for (const auto& rb : refs_b) {
      if (ra.array != rb.array) continue;
      if (ra.kind == analysis::RefKind::kRead &&
          rb.kind == analysis::RefKind::kRead)
        continue;
      std::size_t common = 0;
      while (common < ra.enclosing.size() && common < rb.enclosing.size() &&
             ra.enclosing[common] == rb.enclosing[common]) {
        ++common;
      }
      const analysis::PairTest t = analysis::test_pair(ra, rb, common);
      if (t.answer == analysis::DepAnswer::kIndependent) continue;
      // Outer-carried dependences are unaffected by fusion order.
      bool outer_carried = false;
      bool outer_unknown = false;
      for (std::size_t l = 0; l < pos && l < t.distance.size(); ++l) {
        if (!t.distance[l].has_value()) {
          outer_unknown = true;
          break;
        }
        if (*t.distance[l] != 0) {
          outer_carried = true;
          break;
        }
      }
      if (outer_carried) continue;
      const auto& d =
          pos < t.distance.size() ? t.distance[pos] : std::optional<std::int64_t>{};
      if (outer_unknown || !d.has_value()) {
        return support::make_error(
            support::ErrorCode::kIllegalTransform,
            "a cross-body dependence has unknown distance");
      }
      // Distance is dst - src where src is an A-ref (executed first in the
      // original): fusion preserves it only when >= 0.
      if (*d < 0) {
        return support::make_error(
            support::ErrorCode::kIllegalTransform,
            support::format("fusion would reverse a dependence (distance "
                            "%lld at the fused level)",
                            static_cast<long long>(*d)));
      }
      if (*d != 0) all_cross_independent_or_zero = false;
    }
  }

  // DOALL survives only when both inputs were DOALL and no cross-body
  // dependence became carried.
  fused->parallel =
      first.parallel && second.parallel && all_cross_independent_or_zero;
  return fused;
}

support::Expected<ir::Program> fuse_roots(const ir::Program& program,
                                          std::size_t index) {
  if (index + 1 >= program.roots.size()) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "fuse_roots index out of range");
  }
  auto fused = fuse_loops(program.symbols, *program.roots[index],
                          *program.roots[index + 1], {});
  if (!fused.ok()) return fused.error();

  ir::Program out;
  out.symbols = program.symbols;
  for (std::size_t r = 0; r < program.roots.size(); ++r) {
    if (r == index) {
      out.roots.push_back(std::move(fused).value());
    } else if (r == index + 1) {
      continue;
    } else {
      out.roots.push_back(ir::clone(*program.roots[r]));
    }
  }
  if (auto checked = postcheck("fuse-roots", program, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

FuseAllResult fuse_adjacent_roots(const ir::Program& program) {
  ir::Program current;
  current.symbols = program.symbols;
  for (const LoopPtr& root : program.roots) {
    current.roots.push_back(ir::clone(*root));
  }
  std::size_t fused = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t r = 0; r + 1 < current.roots.size(); ++r) {
      auto attempt = fuse_roots(current, r);
      if (attempt.ok()) {
        current = std::move(attempt).value();
        ++fused;
        progressed = true;
        break;
      }
    }
  }
  return FuseAllResult{std::move(current), fused};
}

}  // namespace coalesce::transform
