// Loop fusion — the inverse of distribution.
//
//   do i { S1 }  ;  do i { S2 }   ==>   do i { S1; S2 }
//
// Legal when no dependence between the two bodies becomes backward-carried:
// originally every S1 instance runs before every S2 instance, so a
// dependence from S1 at iteration v1 to S2 at iteration v2 is only
// preserved by fusion when v2 >= v1 (non-negative distance at the fused
// level). Unknown distances are conservatively fusion-preventing.
//
// The fused loop keeps the DOALL flag only when both inputs were DOALL and
// every cross-body dependence is loop-independent (distance exactly 0);
// otherwise fusion may create a carried dependence and the result is
// marked sequential.
#pragma once

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Fuses two sibling loops (same constant header: bounds and step).
/// `enclosing` is the shared loop chain above both (outermost first).
/// The second loop's induction variable is renamed to the first's.
[[nodiscard]] support::Expected<ir::LoopPtr> fuse_loops(
    const ir::SymbolTable& symbols, const ir::Loop& first,
    const ir::Loop& second, const std::vector<const ir::Loop*>& enclosing);

/// Fuses program roots `index` and `index + 1`, splicing the result back.
[[nodiscard]] support::Expected<ir::Program> fuse_roots(
    const ir::Program& program, std::size_t index);

/// Greedy pass: repeatedly fuses adjacent fusable roots until none remain.
/// Returns the result and the number of fusions performed.
struct FuseAllResult {
  ir::Program program;
  std::size_t fused = 0;
};
[[nodiscard]] FuseAllResult fuse_adjacent_roots(const ir::Program& program);

}  // namespace coalesce::transform
